#include "dse/explorer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

#include "adg/subgraph.h"
#include "base/fault.h"
#include "base/hashing.h"
#include "base/logging.h"
#include "dse/cache_store.h"
#include "dse/checkpoint.h"
#include "dse/worker_pool.h"
#include "mapper/landmarks.h"
#include "model/host_model.h"
#include "model/perf_model.h"
#include "model/regression.h"
#include "sim/jit/jit_runtime.h"
#include "sim/sim_batch.h"

namespace dsa::dse {

using adg::Adg;
using adg::AdgNode;
using adg::NodeId;
using adg::NodeKind;
using adg::Scheduling;
using adg::Sharing;
using adg::SyncDir;

namespace {

/** Copy pool counters (and its first transport error) into a result. */
void
mergeWorkerStats(const WorkerPoolStats &ws, DseResult &r)
{
    r.workerStats.spawned = ws.spawned;
    r.workerStats.dispatched = ws.dispatched;
    r.workerStats.redispatched = ws.redispatched;
    r.workerStats.restarts = ws.restarts;
    r.workerStats.degraded = ws.degraded;
    r.workerStats.deaths = ws.deaths;
    r.workerStats.timeouts = ws.timeouts;
    if (r.status.ok() && !ws.firstError.ok())
        r.status = ws.firstError;
}

} // namespace

Explorer::Explorer(std::vector<const workloads::Workload *> wls,
                   DseOptions opts)
    : workloads_(std::move(wls)), opts_(opts)
{
    DSA_ASSERT(!workloads_.empty(), "DSE needs at least one workload");
    for (const auto *w : workloads_) {
        auto golden = workloads::runGolden(*w);
        hostCycles_.push_back(model::estimateHostCycles(golden.stats));
    }
    // Warm the process-wide singletons (area/power fit, workload
    // registry) serially so pool workers only ever read them.
    model::AreaPowerModel::instance();
    jitStatsBase_ = sim::jit::JitRuntime::instance().stats();
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
    if (opts_.schedChains > 1)
        chainPool_ = std::make_unique<ThreadPool>(
            std::min(opts_.schedChains, ThreadPool::hardwareThreads()));
    if (opts_.compileCache)
        compileCache_ = std::make_unique<compiler::CompileCache>();

    // Everything evaluateDesign reads besides (design, repair cache,
    // repair flag). Two Explorers with different workloads or shaping
    // options must never share eval-cache entries.
    uint64_t sig = 0x6473652d63747874ull; // "dse-ctxt"
    sig = hashCombine(sig, static_cast<uint64_t>(workloads_.size()));
    for (const auto *w : workloads_)
        sig = hashCombine(sig, w->name);
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.unrollFactors.size()));
    for (int u : opts_.unrollFactors)
        sig = hashCombine(sig, static_cast<uint64_t>(u));
    sig = hashCombine(sig, opts_.seed);
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.schedIters));
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.initSchedIters));
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.useRepair));
    // Chains change which schedule wins, so runs with different chain
    // counts must never share cached evaluations.
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.schedChains));
    sig = hashCombine(sig, static_cast<uint64_t>(opts_.candidateTimeMs));
    // The power weight shapes the memoized objective, so caches from
    // runs with different weights must never share entries.
    sig = hashCombine(sig, std::bit_cast<uint64_t>(opts_.powerObjectiveWeight));
    workloadSig_ = sig;

    // The shared store only changes how often evaluations recompute,
    // never what they produce — so an unopenable store degrades to a
    // warning, not a failed exploration.
    if (!opts_.cacheStoreDir.empty()) {
        cacheStore_ = std::make_unique<CacheStore>(opts_.cacheStoreDir);
        Status s = cacheStore_->open();
        if (!s.ok()) {
            DSA_WARN("eval-cache store '", opts_.cacheStoreDir,
                     "' unavailable, continuing without it: ", s.toString());
            cacheStore_.reset();
        }
    }
}

Explorer::~Explorer() = default;

EvalKey
Explorer::makeEvalKey(const Adg &adg, const ScheduleCache &scheds,
                      bool repair) const
{
    adg::AdgKey k = adg::canonicalKey(adg);
    uint64_t ctx = workloadSig_;
    ctx = hashCombine(ctx, hashScheduleCache(scheds));
    ctx = hashCombine(ctx, static_cast<uint64_t>(repair));
    return {k.structural, k.labeling, ctx};
}

model::ComponentCost
Explorer::priceFabric(const Adg &adg, bool tryIncremental)
{
    const auto &model = model::AreaPowerModel::instance();
    model::ComponentCost cost;
    if (!opts_.costMemo)
        cost = model.fabric(adg);
    else if (tryIncremental && pricer_.bound())
        cost = pricer_.price(adg);
    else
        cost = model::fabricMemo(model, adg, costMemo_);
    if (opts_.checkCostOracle && opts_.costMemo) {
        model::ComponentCost oracle = model.fabric(adg);
        DSA_ASSERT(cost.areaMm2 == oracle.areaMm2 &&
                       cost.powerMw == oracle.powerMw,
                   "memoized fabric cost diverged from the oracle: (",
                   cost.areaMm2, ", ", cost.powerMw, ") vs (", oracle.areaMm2,
                   ", ", oracle.powerMw, ")");
    }
    return cost;
}

bool
Explorer::isDegenerateFabric(const Adg &adg)
{
    return adg.aliveNodes(NodeKind::Pe).empty();
}

double
Explorer::scalarObjective(double perf,
                          const model::ComponentCost &cost) const
{
    double obj = perf * perf / std::max(1e-6, cost.areaMm2);
    // Weight 0 skips the factor entirely (not "multiplies by 1"): the
    // legacy objective stays bit-identical, pow() rounding included.
    if (opts_.powerObjectiveWeight != 0.0)
        obj /= std::pow(std::max(1e-6, cost.powerMw) / 1000.0,
                        opts_.powerObjectiveWeight);
    return obj;
}

void
Explorer::recordCacheStats(DseRunState &st)
{
    DseCacheStats cs;
    if (st.evalCache) {
        EvalCacheStats s = st.evalCache->stats();
        cs.evalHits = s.hits;
        cs.evalMisses = s.misses;
        cs.evalInserts = s.inserts;
        cs.evalEntries = st.evalCache->size();
    }
    if (compileCache_) {
        compiler::CompileCacheStats s = compileCache_->stats();
        cs.placementHits = s.placementHits;
        cs.placementMisses = s.placementMisses;
        cs.lowerHits = s.lowerHits;
        cs.lowerMisses = s.lowerMisses;
    }
    model::CostMemoStats ms = costMemo_.stats();
    cs.costHits = ms.hits;
    cs.costMisses = ms.misses;
    cs.dedupCollapsed = dedupCollapsed_;
    if (cacheStore_) {
        CacheStoreStats ss = cacheStore_->stats();
        cs.storeLoaded = ss.recordsLoaded;
        cs.storeQuarantined = ss.recordsQuarantined;
        cs.storeAppends = ss.appends;
        cs.storeSegments = ss.segmentsLoaded;
    }
    st.result.cacheStats = cs;
}

void
Explorer::finalizeResult(DseRunState &st)
{
    st.result.front.clear();
    for (const ParetoPoint &p : st.front.points())
        st.result.front.push_back(
            {p.perf, p.areaMm2, p.powerMw, p.objective, p.iter});
    st.result.frontHypervolume = st.front.hypervolume();
    if (workerPool_)
        mergeWorkerStats(workerPool_->stats(), st.result);
    if (cacheStore_) {
        cacheStore_->flush();
        cacheStore_->maybeCompact();
    }
    st.result.jitStats =
        sim::jit::JitRuntime::instance().stats() - jitStatsBase_;
    {
        std::lock_guard<std::mutex> lk(schedStatsMu_);
        st.result.schedStats = schedStats_;
    }
    recordCacheStats(st);
}

std::vector<std::string>
Explorer::workloadNames() const
{
    std::vector<std::string> names;
    names.reserve(workloads_.size());
    for (const auto *w : workloads_)
        names.push_back(w->name);
    return names;
}

void
Explorer::replayEvalEntry(const EvalCacheEntry &entry,
                          ScheduleCache &scheds) const
{
    // Task t is (kernel t / |unrolls|, unroll t % |unrolls|) — the
    // exact flattening evaluateDesign builds its task list with. The
    // reduction mirrors the live path: an illegal attempt leaves any
    // previous legal schedule in place as the repair seed.
    size_t nu = opts_.unrollFactors.size();
    for (size_t t = 0; t < entry.tasks.size(); ++t) {
        const EvalTaskOutcome &out = entry.tasks[t];
        if (!out.lowered)
            continue;
        int k = static_cast<int>(t / nu);
        int u = opts_.unrollFactors[t % nu];
        auto &e = scheds[{k, u}];
        if (out.legal) {
            e.sched = out.sched;
            e.hasLegal = true;
        }
    }
}

void
Explorer::warmFromStore(EvalCache &cache)
{
    if (!cacheStore_)
        return;
    Status s = cacheStore_->loadInto(cache);
    if (!s.ok())
        DSA_WARN("eval-cache store '", opts_.cacheStoreDir,
                 "' load failed, continuing cold: ", s.toString());
}

double
Explorer::evaluateDesign(const Adg &adg, ScheduleCache &scheds,
                         bool repair, double *perfOut,
                         model::ComponentCost *costOut, Status *statusOut,
                         EvalCache *cache,
                         const model::ComponentCost *knownCost)
{
    // The (kernel, unroll) grid as a flat, order-independent task
    // list. Each task compiles, schedules, and estimates on its own;
    // the repair cache is read-only during the fan-out and updated in
    // task order afterwards, so any thread count produces the same
    // result as serial execution.
    struct Task
    {
        int k = 0;
        int u = 1;
    };
    struct TaskOut
    {
        bool lowered = false;
        bool legal = false;
        double cycles = 1e30;
        mapper::Schedule sched;
        Status status;
        mapper::SchedStats schedStats;
    };
    std::vector<Task> tasks;
    for (size_t k = 0; k < workloads_.size(); ++k)
        for (int u : opts_.unrollFactors)
            tasks.push_back({static_cast<int>(k), u});

    // Memo lookup before any compile work. A hit replays the stored
    // per-task outcomes through the same reduction the live path runs
    // below, so the caller's repair cache ends up in the exact state a
    // recomputation would leave it in. Entries exist only for
    // fault-free evaluations, so a hit is unconditionally OK.
    EvalKey key;
    if (cache) {
        key = makeEvalKey(adg, scheds, repair);
        if (auto hit = cache->find(key)) {
            DSA_ASSERT(hit->tasks.size() == tasks.size(),
                       "eval-cache entry has the wrong task count");
            replayEvalEntry(*hit, scheds);
            if (statusOut)
                *statusOut = Status();
            if (perfOut)
                *perfOut = hit->perf;
            if (costOut)
                *costOut = hit->cost;
            return hit->objective;
        }
    }

    auto features = compiler::HwFeatures::fromAdg(adg);
    compiler::CompileOptions copts;
    copts.unrollFactors = opts_.unrollFactors;
    uint64_t featuresFp = compiler::fingerprintFeatures(features);
    uint64_t coptsFp = compiler::fingerprintOptions(copts);

    // Placements depend only on (kernel, features): compute once per
    // kernel per design — not once per (kernel, unroll) task — and
    // share across candidates through the compile cache when enabled.
    std::vector<std::shared_ptr<const compiler::Placement>> placements(
        workloads_.size());
    for (size_t k = 0; k < workloads_.size(); ++k) {
        const auto &w = *workloads_[k];
        placements[k] = compileCache_
            ? compileCache_->placementFor(w.name, w.kernel, features,
                                          featuresFp)
            : std::make_shared<const compiler::Placement>(
                  compiler::Placement::autoLayout(w.kernel, features));
    }

    std::vector<TaskOut> outs(tasks.size());

    // One wall-clock cap for this whole design evaluation (unlimited
    // when candidateTimeMs is 0, so polling stays free). Once expired,
    // every remaining scheduler run cuts out immediately, so one
    // pathological candidate costs at most the cap.
    Deadline candDeadline = opts_.candidateTimeMs > 0
        ? Deadline::afterMs(opts_.candidateTimeMs)
        : Deadline::never();

    // One landmark-cache lookup per design instead of one per task:
    // every task schedules onto the same fabric, so hoisting the
    // shared table keeps pool workers off the cache mutex (and off
    // the per-construction fingerprint hash).
    std::shared_ptr<const mapper::LandmarkTable> sharedLandmarks;
    {
        mapper::SchedOptions defaults;
        if (defaults.routeFastPath)
            sharedLandmarks = mapper::landmarksFor(
                adg, defaults.routeBaseCost, defaults.routePePassCost);
    }

    pool_->parallelFor(tasks.size(), [&](size_t t) {
        const Task &task = tasks[t];
        TaskOut &out = outs[t];
        // Workers convert everything — fault-hook throws, compiler
        // StatusExceptions, scheduler timeouts — into out.status so
        // exceptions never tear down the pool or the exploration.
        try {
            if (opts_.evalFaultHook)
                opts_.evalFaultHook(task.k, task.u);
            const auto &w = *workloads_[static_cast<size_t>(task.k)];
            const compiler::Placement &placement =
                *placements[static_cast<size_t>(task.k)];
            // Lowering depends on the graph only through HwFeatures,
            // so candidates sharing features reuse lowered programs
            // (shared immutable values, keyed by features + options).
            std::shared_ptr<const compiler::LowerResult> lowered =
                compileCache_
                    ? compileCache_->lowerFor(w.name, w.kernel, placement,
                                              features, copts, task.u,
                                              featuresFp, coptsFp)
                    : std::make_shared<const compiler::LowerResult>(
                          compiler::lowerKernel(w.kernel, placement,
                                                features, copts, task.u));
            if (!lowered->ok)
                return;
            auto key = std::make_pair(task.k, task.u);
            auto prev = scheds.find(key);
            mapper::SchedOptions so;
            // First-ever mapping gets the full budget; afterwards the
            // per-step budget applies (repairing or re-discovering).
            so.maxIters = prev == scheds.end() ? opts_.initSchedIters
                                               : opts_.schedIters;
            so.convergeIters = std::max(8, so.maxIters / 5);
            // Hash, don't add: additive seeds collide across (k, u) pairs
            // and correlate the per-kernel scheduler streams.
            so.seed = mixSeed(opts_.seed, static_cast<uint64_t>(task.k),
                              static_cast<uint64_t>(task.u));
            so.deadline = candDeadline;
            so.chains = opts_.schedChains;
            so.chainPool = chainPool_.get();
            so.landmarks = sharedLandmarks;
            mapper::SpatialScheduler scheduler(lowered->version.program,
                                               adg, so);
            const mapper::Schedule *seedSched =
                (repair && prev != scheds.end() && prev->second.hasLegal)
                    ? &prev->second.sched
                    : nullptr;
            out.sched = scheduler.run(seedSched);
            out.schedStats = scheduler.stats();
            if (!scheduler.lastRunStatus().ok()) {
                // Timed out: the schedule is best-effort garbage; report
                // the timeout and contribute nothing to the cache.
                out.status = scheduler.lastRunStatus();
                return;
            }
            auto est = model::estimatePerformance(lowered->version.program,
                                                  out.sched, adg);
            out.lowered = true;
            out.legal = est.legal;
            out.cycles = est.cycles;
        } catch (...) {
            out.status = Status::fromCurrentException();
            out.lowered = false;
        }
    });

    // Deterministic serial reduction, in task order.
    Status evalStatus;
    std::vector<double> bestCycles(workloads_.size(), 1e30);
    std::vector<EvalTaskOutcome> recorded;
    if (cache)
        recorded.resize(tasks.size());
    for (size_t t = 0; t < tasks.size(); ++t) {
        TaskOut &out = outs[t];
        {
            std::lock_guard<std::mutex> lk(schedStatsMu_);
            schedStats_.merge(out.schedStats);
        }
        if (evalStatus.ok() && !out.status.ok())
            evalStatus = out.status;
        if (!out.lowered)
            continue;
        if (cache) {
            // Snapshot before the move below; the memoized outcome
            // must replay this exact reduction on a future hit.
            recorded[t].lowered = true;
            recorded[t].legal = out.legal;
            recorded[t].cycles = out.cycles;
            if (out.legal)
                recorded[t].sched = out.sched;
        }
        auto key = std::make_pair(tasks[t].k, tasks[t].u);
        auto &entry = scheds[key];
        if (out.legal) {
            entry.sched = std::move(out.sched);
            entry.hasLegal = true;
            auto &best = bestCycles[static_cast<size_t>(tasks[t].k)];
            best = std::min(best, out.cycles);
        }
        // An illegal result only marks the version as attempted; the
        // previous legal schedule (if any) stays as the repair seed so
        // one bad step cannot poison later repairs.
    }
    if (statusOut)
        *statusOut = evalStatus;

    double logSum = 0;
    for (size_t k = 0; k < workloads_.size(); ++k) {
        // A kernel that cannot map falls back to host execution
        // (speedup 1x) — offload is simply declined.
        double speedup = bestCycles[k] < 1e29
            ? hostCycles_[k] / bestCycles[k] : 1.0;
        speedup = std::max(speedup, 0.01);
        logSum += std::log(speedup);
    }
    double perf = std::exp(logSum / static_cast<double>(workloads_.size()));
    auto cost = knownCost ? *knownCost : priceFabric(adg, false);
    // Degenerate (PE-less) fabrics score 0, never a clamp-inflated
    // perf^2/1e-6 — the exploration loop rejects them before costing,
    // this is the backstop for direct callers.
    double objective =
        isDegenerateFabric(adg) ? 0.0 : scalarObjective(perf, cost);

    // Memoize fault-free evaluations only: a timed-out or faulted
    // sweep is not a function of the key and must be retried live.
    if (cache && evalStatus.ok()) {
        auto entry = std::make_shared<EvalCacheEntry>();
        entry->objective = objective;
        entry->perf = perf;
        entry->cost = cost;
        entry->tasks = std::move(recorded);
        // Fresh evaluations also go to the shared store, so other
        // processes (and future runs) never re-pay this one. Append
        // failures only cost warmth; a warning is all they get.
        if (cacheStore_) {
            Status as = cacheStore_->append(key, *entry);
            if (!as.ok())
                DSA_WARN("eval-cache store append failed: ", as.toString());
        }
        cache->insert(key, std::move(entry));
    }

    if (perfOut)
        *perfOut = perf;
    if (costOut)
        *costOut = cost;
    return objective;
}

void
Explorer::pruneUnused(Adg &adg) const
{
    // Which opcodes/features can any kernel version possibly use?
    auto features = compiler::HwFeatures::fromAdg(adg);
    compiler::CompileOptions copts;
    copts.unrollFactors = opts_.unrollFactors;
    uint64_t featuresFp = compiler::fingerprintFeatures(features);
    uint64_t coptsFp = compiler::fingerprintOptions(copts);
    OpSet used;
    bool needsJoin = false, needsIndirect = false, needsAtomic = false;
    for (const auto *w : workloads_) {
        std::shared_ptr<const compiler::Placement> placement =
            compileCache_
                ? compileCache_->placementFor(w->name, w->kernel, features,
                                              featuresFp)
                : std::make_shared<const compiler::Placement>(
                      compiler::Placement::autoLayout(w->kernel, features));
        for (int u : opts_.unrollFactors) {
            std::shared_ptr<const compiler::LowerResult> lowered =
                compileCache_
                    ? compileCache_->lowerFor(w->name, w->kernel,
                                              *placement, features, copts,
                                              u, featuresFp, coptsFp)
                    : std::make_shared<const compiler::LowerResult>(
                          compiler::lowerKernel(w->kernel, *placement,
                                                features, copts, u));
            if (!lowered->ok)
                continue;
            for (const auto &reg : lowered->version.program.regions) {
                for (const auto &vx : reg.dfg.vertices()) {
                    if (vx.kind != dfg::VertexKind::Instruction)
                        continue;
                    used.insert(vx.op);
                    needsJoin |= vx.ctrl.active();
                }
                for (const auto &st : reg.streams) {
                    needsIndirect |= st.needsIndirect();
                    needsAtomic |= st.needsAtomic();
                }
            }
        }
    }
    for (NodeId id : adg.aliveNodes(NodeKind::Pe)) {
        auto &pe = adg.node(id).pe();
        pe.ops = pe.ops & used;
        if (pe.ops.empty())
            pe.ops.insert(OpCode::Pass);
        if (!needsJoin)
            pe.streamJoin = false;
    }
    for (NodeId id : adg.aliveNodes(NodeKind::Memory)) {
        auto &mem = adg.node(id).mem();
        if (!needsIndirect)
            mem.indirect = false;
        if (!needsAtomic)
            mem.atomicUpdate = false;
    }
}

std::string
Explorer::mutate(Adg &adg, Rng &rng) const
{
    auto pes = adg.aliveNodes(NodeKind::Pe);
    auto switches = adg.aliveNodes(NodeKind::Switch);
    auto syncs = adg.aliveNodes(NodeKind::Sync);
    auto mems = adg.aliveNodes(NodeKind::Memory);

    // Cases 0-13 are flat parameter tweaks; 14-16 are SET-style
    // structured subgraph moves (grow/shrink a tile, clone a region,
    // rewire a sub-fabric), enabled by DseOptions::structuredMoves.
    switch (rng.uniformInt(0, opts_.structuredMoves ? 16 : 13)) {
      case 0: {  // add a PE near random switches
        if (switches.size() < 2)
            return "noop";
        adg::PeProps props = adg.node(rng.pick(pes)).pe();
        NodeId pe = adg.addPe(props);
        int fan = 2 + static_cast<int>(rng.uniformInt(0, 2));
        for (int i = 0; i < fan; ++i)
            adg.connect(rng.pick(switches), pe);
        adg.connect(pe, rng.pick(switches));
        return "add pe";
      }
      case 1: {  // remove a PE
        if (pes.size() <= 2)
            return "noop";
        adg.removeNode(rng.pick(pes));
        return "remove pe";
      }
      case 2: {  // add a switch stitched into the network
        if (switches.size() < 2)
            return "noop";
        adg::SwitchProps props = adg.node(rng.pick(switches)).sw();
        NodeId sw = adg.addSwitch(props);
        for (int i = 0; i < 2; ++i) {
            adg.connect(rng.pick(switches), sw);
            adg.connect(sw, rng.pick(switches));
        }
        return "add switch";
      }
      case 3: {  // remove a switch
        if (switches.size() <= 4)
            return "noop";
        adg.removeNode(rng.pick(switches));
        return "remove switch";
      }
      case 4: {  // add an edge (irregular connectivity)
        std::vector<NodeId> srcs = switches;
        for (NodeId p : pes)
            srcs.push_back(p);
        for (NodeId s : syncs)
            if (adg.node(s).sync().dir == SyncDir::Input)
                srcs.push_back(s);
        std::vector<NodeId> dsts = switches;
        for (NodeId p : pes)
            dsts.push_back(p);
        for (NodeId s : syncs)
            if (adg.node(s).sync().dir == SyncDir::Output)
                dsts.push_back(s);
        NodeId a = rng.pick(srcs), b = rng.pick(dsts);
        if (a == b || adg.findEdge(a, b) != adg::kInvalidEdge)
            return "noop";
        adg.connect(a, b);
        return "add edge";
      }
      case 5: {  // remove an edge (not touching memories)
        auto edges = adg.aliveEdges();
        for (int tries = 0; tries < 8; ++tries) {
            adg::EdgeId e = rng.pick(edges);
            const auto &edge = adg.edge(e);
            if (adg.node(edge.src).kind == NodeKind::Memory ||
                adg.node(edge.dst).kind == NodeKind::Memory)
                continue;
            adg.removeEdge(e);
            return "remove edge";
        }
        return "noop";
      }
      case 6: {  // toggle PE scheduling model
        auto &pe = adg.node(rng.pick(pes)).pe();
        if (pe.sched == Scheduling::Static) {
            pe.sched = Scheduling::Dynamic;
        } else {
            pe.sched = Scheduling::Static;
            pe.streamJoin = false;
        }
        return "toggle pe sched";
      }
      case 7: {  // toggle dedicated/shared
        auto &pe = adg.node(rng.pick(pes)).pe();
        if (pe.sharing == Sharing::Dedicated) {
            pe.sharing = Sharing::Shared;
            pe.maxInsts = 8;
        } else {
            pe.sharing = Sharing::Dedicated;
            pe.maxInsts = 1;
        }
        return "toggle pe sharing";
      }
      case 8: {  // grow/shrink a PE's FU repertoire by one class
        auto &pe = adg.node(rng.pick(pes)).pe();
        auto cls = static_cast<FuClass>(
            rng.uniformInt(0, kNumFuClasses - 1));
        bool add = rng.chance(0.5);
        for (int i = 0; i < kNumOpCodes; ++i) {
            auto op = static_cast<OpCode>(i);
            if (opInfo(op).fuClass != cls)
                continue;
            if (add)
                pe.ops.insert(op);
            else if (op != OpCode::Pass)
                pe.ops.erase(op);
        }
        if (pe.ops.empty())
            pe.ops.insert(OpCode::Pass);
        return add ? "add fu class" : "remove fu class";
      }
      case 9: {  // delay-fifo depth
        auto &pe = adg.node(rng.pick(pes)).pe();
        pe.delayFifoDepth = rng.chance(0.5)
            ? std::min(32, pe.delayFifoDepth * 2)
            : std::max(2, pe.delayFifoDepth / 2);
        return "resize delay fifo";
      }
      case 10: {  // sync element parameters
        auto &sy = adg.node(rng.pick(syncs)).sync();
        if (rng.chance(0.5))
            sy.lanes = static_cast<int>(rng.uniformInt(1, 4)) * 4;
        else
            sy.depth = rng.chance(0.5) ? std::min(64, sy.depth * 2)
                                       : std::max(2, sy.depth / 2);
        return "resize sync";
      }
      case 11: {  // scratchpad parameters (explored per §V-D)
        for (NodeId m : mems) {
            auto &mem = adg.node(m).mem();
            if (mem.kind != adg::MemKind::Scratchpad)
                continue;
            switch (rng.uniformInt(0, 3)) {
              case 0:
                mem.widthBytes = rng.chance(0.5)
                    ? std::min(256, mem.widthBytes * 2)
                    : std::max(16, mem.widthBytes / 2);
                break;
              case 1:
                mem.numBanks = rng.chance(0.5)
                    ? std::min(16, mem.numBanks * 2)
                    : std::max(1, mem.numBanks / 2);
                break;
              case 2:
                mem.capacityBytes = rng.chance(0.5)
                    ? std::min<int64_t>(1 << 18, mem.capacityBytes * 2)
                    : std::max<int64_t>(1 << 12, mem.capacityBytes / 2);
                break;
              default:
                mem.numStreamEngines = rng.chance(0.5)
                    ? std::min(24, mem.numStreamEngines + 2)
                    : std::max(2, mem.numStreamEngines - 2);
            }
            return "tune scratchpad";
        }
        return "noop";
      }
      case 12: {  // insert or remove a delay element
        auto delays = adg.aliveNodes(NodeKind::Delay);
        if (!delays.empty() && rng.chance(0.5)) {
            adg.removeNode(rng.pick(delays));
            return "remove delay";
        }
        if (switches.size() < 2)
            return "noop";
        adg::DelayProps props;
        props.depth = 4 << rng.uniformInt(0, 2);
        NodeId d = adg.addDelay(props);
        adg.connect(rng.pick(switches), d);
        adg.connect(d, rng.pick(switches));
        return "add delay";
      }
      case 13: {  // main-memory interface width (bandwidth share)
        for (NodeId m : mems) {
            auto &mem = adg.node(m).mem();
            if (mem.kind != adg::MemKind::Main)
                continue;
            mem.widthBytes = rng.chance(0.5)
                ? std::min(128, mem.widthBytes * 2)
                : std::max(16, mem.widthBytes / 2);
            return "tune main width";
        }
        return "noop";
      }
      case 14: {  // structured: grow or shrink a tile
        if (switches.size() < 2)
            return "noop";
        if (rng.chance(0.5)) {
            // Grow: clone a switch with up to two of its attached PEs
            // (their mutual links come along), then stitch the cloned
            // switch into the network — a proven tile replicated as
            // one move instead of rediscovered tweak by tweak.
            NodeId sw = rng.pick(switches);
            std::vector<NodeId> tile{sw};
            for (NodeId pe : adg::attachedPes(adg, sw)) {
                if (tile.size() >= 3)
                    break;
                tile.push_back(pe);
            }
            auto clone = adg::cloneSubgraph(adg, tile);
            NodeId swClone = clone.nodeMap.at(sw);
            adg.connect(rng.pick(switches), swClone);
            adg.connect(swClone, rng.pick(switches));
            return "grow tile";
        }
        // Shrink: retire a switch and up to two of its PEs together.
        if (switches.size() <= 4 || pes.size() <= 3)
            return "noop";
        NodeId sw = rng.pick(switches);
        int removed = 0;
        for (NodeId pe : adg::attachedPes(adg, sw)) {
            if (removed >= 2 ||
                static_cast<int>(pes.size()) - removed <= 2)
                break;
            adg.removeNode(pe);
            ++removed;
        }
        adg.removeNode(sw);
        return "shrink tile";
      }
      case 15: {  // structured: clone a region subgraph
        if (switches.size() < 2)
            return "noop";
        NodeId seed = rng.pick(switches);
        auto region = adg::fabricNeighborhood(adg, seed, /*radius=*/1,
                                              /*maxNodes=*/6);
        if (region.size() < 2)
            return "noop";
        auto clone = adg::cloneSubgraph(adg, region);
        // The seed is a switch, so the clone always has one to stitch
        // through: two feeds in, one drain out keeps it routable.
        std::vector<NodeId> clonedSw;
        for (const auto &[orig, copy] : clone.nodeMap)
            if (adg.node(copy).kind == NodeKind::Switch)
                clonedSw.push_back(copy);
        adg.connect(rng.pick(switches), rng.pick(clonedSw));
        adg.connect(rng.pick(switches), rng.pick(clonedSw));
        adg.connect(rng.pick(clonedSw), rng.pick(switches));
        return "clone region";
      }
      default: {  // structured: rewire a sub-fabric
        if (switches.size() < 3)
            return "noop";
        NodeId sw = rng.pick(switches);
        std::vector<adg::EdgeId> swOuts;
        for (adg::EdgeId e : adg.outEdges(sw))
            if (adg.node(adg.edge(e).dst).kind == NodeKind::Switch)
                swOuts.push_back(e);
        if (swOuts.empty())
            return "noop";
        // Retarget one or two of the switch's inter-switch links:
        // local topology change bigger than one edge, smaller than a
        // region clone.
        int n = swOuts.size() > 1 && rng.chance(0.5) ? 2 : 1;
        bool changed = false;
        for (int i = 0; i < n; ++i) {
            adg::EdgeId e = rng.pick(swOuts);
            NodeId dst = rng.pick(switches);
            if (!adg.edgeAlive(e) || dst == sw ||
                dst == adg.edge(e).dst ||
                adg.findEdge(sw, dst) != adg::kInvalidEdge)
                continue;
            adg.removeEdge(e);
            adg.connect(sw, dst);
            changed = true;
        }
        return changed ? "rewire fabric" : "noop";
      }
    }
}

DseResult
Explorer::run(const Adg &initial, std::shared_ptr<EvalCache> warmCache)
{
    DseRunState st;
    st.rng = Rng(opts_.seed);
    st.current = initial;
    if (opts_.evalCache)
        st.evalCache =
            warmCache ? std::move(warmCache) : std::make_shared<EvalCache>();
    // Warm before the very first evaluation: entries other processes
    // banked in the shared store are work this run never redoes
    // (insert-once, so the caller's warmCache entries win).
    if (st.evalCache)
        warmFromStore(*st.evalCache);
    if (opts_.pareto)
        st.front = ParetoFront(opts_.areaBudgetMm2, opts_.powerBudgetMw,
                               std::max(2, opts_.paretoFrontSize));

    // Everything from here on reports errors as DseResult::status: a
    // worker exception, a corrupt workload, a compiler fault — none of
    // them may tear down an hours-long exploration process.
    try {
        // Iteration 0-1: map onto the initial hardware, then trim
        // features known to be unneeded (§VIII-B).
        double perf = 0;
        model::ComponentCost cost;
        Status evalStatus;
        DseResult &result = st.result;
        result.initialObjective = evaluateDesign(
            st.current, st.schedules, false, &perf, &cost, &evalStatus,
            st.evalCache.get());
        if (!evalStatus.ok()) {
            // The initial design must evaluate; without it there is no
            // baseline to explore from.
            result.status = evalStatus;
            result.stopReason = "error";
            finalizeResult(st);
            return result;
        }
        result.initialCost = cost;
        if (opts_.pareto && !isDegenerateFabric(st.current))
            st.front.add({st.current, perf, cost.areaMm2, cost.powerMw,
                          result.initialObjective, 0, 0});
        result.history.push_back(
            {0, cost.areaMm2, cost.powerMw, perf, result.initialObjective,
             true, st.front.hypervolume()});

        pruneUnused(st.current);
        st.curObj = evaluateDesign(st.current, st.schedules,
                                   opts_.useRepair, &perf, &cost,
                                   &evalStatus, st.evalCache.get());
        if (!evalStatus.ok()) {
            result.status = evalStatus;
            result.stopReason = "error";
            finalizeResult(st);
            return result;
        }
        if (opts_.pareto && !isDegenerateFabric(st.current))
            st.front.add({st.current, perf, cost.areaMm2, cost.powerMw,
                          st.curObj, 1, 0});
        result.history.push_back(
            {1, cost.areaMm2, cost.powerMw, perf, st.curObj, true,
             st.front.hypervolume()});

        result.best = st.current;
        result.bestObjective = st.curObj;
        result.bestPerf = perf;
        result.bestCost = cost;

        return runLoop(st);
    } catch (...) {
        st.result.status = Status::fromCurrentException();
        st.result.stopReason = "error";
        finalizeResult(st);
        return st.result;
    }
}

DseResult
Explorer::resume(DseRunState state)
{
    try {
        if (opts_.evalCache && !state.evalCache)
            state.evalCache = std::make_shared<EvalCache>();
        if (state.evalCache)
            warmFromStore(*state.evalCache);
        return runLoop(state);
    } catch (...) {
        state.result.status = Status::fromCurrentException();
        state.result.stopReason = "error";
        finalizeResult(state);
        return state.result;
    }
}

void
Explorer::writeCheckpoint(DseRunState &st)
{
    // Count the write *before* serializing so the file records itself;
    // a resumed run continues the numbering.
    ++st.result.checkpointsWritten;
    Status s = saveCheckpoint(workloadNames(), opts_, st,
                              opts_.checkpointPath);
    if (!s.ok())
        DSA_WARN("dse checkpoint to '", opts_.checkpointPath,
                 "' failed: ", s.toString());
}

DseResult
Explorer::runLoop(DseRunState &st)
{
    DseResult &result = st.result;
    Deadline wall = opts_.wallBudgetMs > 0
        ? Deadline::afterMs(opts_.wallBudgetMs)
        : Deadline::never();

    // Resume of a pre-cache checkpoint (or a run() that raced an
    // option change): make sure the cache exists iff enabled.
    if (opts_.evalCache && !st.evalCache)
        st.evalCache = std::make_shared<EvalCache>();
    EvalCache *evalCache = opts_.evalCache ? st.evalCache.get() : nullptr;

    if (opts_.workers > 0 && !workerPool_) {
        WorkerPoolOptions wo;
        wo.workers = opts_.workers;
        wo.workloadNames = workloadNames();
        wo.dse = opts_;
        wo.dse.evalFaultHook = nullptr; // process-local, not shippable
        wo.extraEnv = opts_.workerEnv;
        wo.requestTimeoutMs = opts_.workerRequestTimeoutMs;
        workerPool_ = std::make_unique<WorkerPool>(std::move(wo));
        Status ps = workerPool_->start();
        if (!ps.ok()) {
            // The bottom of the degradation ladder: no subprocess at
            // all. Same results, one process, and a visible status.
            DSA_WARN("dse worker pool failed to start; evaluating "
                     "in-process: ", ps.toString());
            mergeWorkerStats(workerPool_->stats(), result);
            if (result.status.ok())
                result.status = ps;
            workerPool_.reset();
        }
    }

    // Same for the front: a pre-pareto checkpoint resumed with pareto
    // on starts an empty archive against this run's budgets.
    if (opts_.pareto && st.front.maxSize() == 0)
        st.front = ParetoFront(opts_.areaBudgetMm2, opts_.powerBudgetMw,
                               std::max(2, opts_.paretoFrontSize));

    // The incremental pricer is parent-relative: (re)bind it to the
    // design the batch mutates from, here and on every accepted step.
    if (opts_.costMemo)
        pricer_.bind(st.current, model::AreaPowerModel::instance(),
                     costMemo_);

    // Candidates cheaply rejected before evaluation (structurally
    // invalid or over budget) must not trip the no-improvement exit —
    // they carry no evidence about the objective landscape. They get
    // their own consecutive-rejection cap to bound runtime instead.
    result.stopReason = "max-iters";
    while (st.iter < opts_.maxIters) {
        // Crash lever for kill-and-resume tests: die between steps,
        // exactly where a power loss would leave the last checkpoint
        // as the only surviving state.
        fault::maybeKill("dse.step.kill");
        if (st.noImprove >= opts_.noImproveExit) {
            result.stopReason = "no-improve";
            break;
        }
        if (st.infeasibleStreak >= opts_.infeasibleExit) {
            result.stopReason = "infeasible";
            break;
        }
        if (wall.expired()) {
            // The whole-run watchdog: stop cleanly with the best design
            // so far; the final checkpoint below makes this resumable.
            result.stopReason = "wall-clock";
            break;
        }

        // Draw a batch of mutants serially from the exploration RNG
        // (so the random stream is independent of batch/thread
        // configuration up to batching of the draw order).
        int batch = std::min(std::max(1, opts_.candidateBatch),
                             opts_.maxIters - st.iter);
        struct Candidate
        {
            Adg adg;
            int iter = 0;
            bool feasible = false;
            model::ComponentCost cost;
            // Filled by evaluation:
            ScheduleCache cache;
            double perf = 0;
            double objective = 0;
            Status evalStatus;
        };
        std::vector<Candidate> cands;
        cands.reserve(static_cast<size_t>(batch));
        for (int b = 0; b < batch; ++b) {
            Candidate c;
            c.adg = st.current;
            c.iter = st.iter + b;
            // "A random number of components are added or removed."
            int nMut = 1 + static_cast<int>(st.rng.uniformInt(0, 2));
            for (int m = 0; m < nMut; ++m)
                mutate(c.adg, st.rng);
            if (c.adg.validate().empty() && !isDegenerateFabric(c.adg)) {
                // Candidates differ from st.current by 1-3 mutations:
                // price them against the bound parent (re-predicting
                // only changed components) instead of walking the
                // whole fabric. Bit-identical to fabric() either way.
                c.cost = priceFabric(c.adg, /*tryIncremental=*/true);
                c.feasible = c.cost.areaMm2 <= opts_.areaBudgetMm2 &&
                             c.cost.powerMw <= opts_.powerBudgetMw;
            }
            cands.push_back(std::move(c));
        }
        st.iter += batch;

        // Identical mutants in one batch (noop mutations, coincident
        // draws, add/remove round-trips) would evaluate to identical
        // results — evaluateDesign is a pure function of (live graph,
        // incoming repair cache, options), and every batch member
        // starts from the same st.schedules. Collapse them onto the
        // first occurrence (keeping draw order deterministic) and copy
        // the leader's outcome afterwards.
        std::vector<size_t> evalIdx;
        std::vector<std::pair<size_t, size_t>> dups; // (copy, leader)
        if (opts_.dedupBatch && batch > 1) {
            std::map<adg::AdgKey, size_t> seen;
            for (size_t i = 0; i < cands.size(); ++i) {
                if (!cands[i].feasible)
                    continue;
                auto [it, fresh] =
                    seen.emplace(adg::canonicalKey(cands[i].adg), i);
                if (fresh)
                    evalIdx.push_back(i);
                else
                    dups.push_back({i, it->second});
            }
        } else {
            for (size_t i = 0; i < cands.size(); ++i)
                if (cands[i].feasible)
                    evalIdx.push_back(i);
        }

        // Evaluate the feasible mutants. With batch=1 this call runs
        // inline and the *grid* fans out instead; with batch>1 the
        // candidates fan out and each grid runs inline on its worker.
        // Cache note: deduped leaders have pairwise-distinct keys and
        // the pre-batch cache state is fixed, so concurrent lookups
        // and inserts are deterministic, not just race-safe.
        if (!workerPool_) {
            pool_->parallelFor(evalIdx.size(), [&](size_t e) {
                Candidate &c = cands[evalIdx[e]];
                c.cache = st.schedules; // repair from the current mapping
                c.objective = evaluateDesign(c.adg, c.cache, opts_.useRepair,
                                             &c.perf, &c.cost, &c.evalStatus,
                                             evalCache, &c.cost);
            });
        } else {
            // Crash-isolated evaluation: leaders ship to worker
            // subprocesses and come back as serialized eval-cache
            // entries, replayed here through the same path a cache hit
            // takes — so the trace is the in-process trace, bit for
            // bit, whatever the workers live through.
            std::vector<EvalKey> keys(evalIdx.size());
            for (size_t e = 0; e < evalIdx.size(); ++e)
                keys[e] = makeEvalKey(cands[evalIdx[e]].adg, st.schedules,
                                      opts_.useRepair);
            // Applies a memoized outcome to candidate e (a coordinator
            // cache hit or a worker reply).
            auto applyEntry =
                [&](size_t e,
                    const std::shared_ptr<const EvalCacheEntry> &entry) {
                    Candidate &c = cands[evalIdx[e]];
                    c.cache = st.schedules;
                    replayEvalEntry(*entry, c.cache);
                    c.perf = entry->perf;
                    c.objective = entry->objective;
                    c.cost = entry->cost;
                    c.evalStatus = Status();
                };
            // The degradation floor (and the ground truth for any
            // worker-side eval fault): evaluate right here.
            std::vector<char> done(evalIdx.size(), 0);
            auto inProcess = [&](size_t e) -> WorkerEvalOutcome {
                Candidate &c = cands[evalIdx[e]];
                c.cache = st.schedules;
                c.objective = evaluateDesign(c.adg, c.cache, opts_.useRepair,
                                             &c.perf, &c.cost, &c.evalStatus,
                                             evalCache, &c.cost);
                done[e] = 1;
                WorkerEvalOutcome o;
                o.status = c.evalStatus;
                if (evalCache && c.evalStatus.ok())
                    o.entry = evalCache->find(keys[e]);
                return o;
            };
            std::vector<const Adg *> ship;
            std::vector<size_t> shipIdx;
            for (size_t e = 0; e < evalIdx.size(); ++e) {
                std::shared_ptr<const EvalCacheEntry> hit =
                    evalCache ? evalCache->find(keys[e]) : nullptr;
                if (hit) {
                    applyEntry(e, hit);
                    done[e] = 1;
                } else {
                    ship.push_back(&cands[evalIdx[e]].adg);
                    shipIdx.push_back(e);
                }
            }
            if (!ship.empty()) {
                auto outs = workerPool_->evaluateBatch(
                    ship, st.schedules, opts_.useRepair,
                    [&](size_t j) { return inProcess(shipIdx[j]); });
                for (size_t j = 0; j < outs.size(); ++j) {
                    size_t e = shipIdx[j];
                    if (done[e])
                        continue; // degraded: already evaluated here
                    const WorkerEvalOutcome &o = outs[j];
                    if (!o.status.ok() || !o.entry) {
                        // A worker-side eval fault (e.g. a candidate
                        // timeout) is re-established locally so its
                        // semantics match the in-process run exactly.
                        inProcess(e);
                        continue;
                    }
                    applyEntry(e, o.entry);
                    if (evalCache)
                        evalCache->insert(keys[e], o.entry);
                }
            }
        }
        for (auto [copy, leader] : dups) {
            Candidate &c = cands[copy];
            const Candidate &l = cands[leader];
            c.cache = l.cache;
            c.perf = l.perf;
            c.objective = l.objective;
            c.cost = l.cost;
            c.evalStatus = l.evalStatus;
            ++dedupCollapsed_;
        }

        // Deterministic selection. Candidates that errored or timed
        // out are never selectable — their objective is untrustworthy.
        //
        // Scalar mode: best improving candidate, first in draw order
        // on ties. Pareto mode: every evaluated candidate is offered
        // to the front *serially in draw order* (the order is part of
        // the determinism contract — archive updates and pruning
        // tie-breaks depend on it); the accepted one is the candidate
        // whose insertion grew the front's hypervolume the most.
        int bestIdx = -1;
        if (opts_.pareto) {
            constexpr double kHvEps = 1e-12;
            double bestGain = kHvEps;
            for (size_t i = 0; i < cands.size(); ++i) {
                Candidate &c = cands[i];
                if (!c.feasible || !c.evalStatus.ok())
                    continue;
                // Copy the design: c.adg may later move into
                // st.current while the point lives on in the archive.
                auto out = st.front.add({c.adg, c.perf, c.cost.areaMm2,
                                         c.cost.powerMw, c.objective,
                                         c.iter, 0});
                if (out.hvGain > bestGain) {
                    bestGain = out.hvGain;
                    bestIdx = static_cast<int>(i);
                }
            }
        } else {
            for (size_t i = 0; i < cands.size(); ++i) {
                const Candidate &c = cands[i];
                if (!c.feasible || !c.evalStatus.ok())
                    continue;
                if (c.objective > st.curObj &&
                    (bestIdx < 0 ||
                     c.objective > cands[static_cast<size_t>(bestIdx)]
                                       .objective))
                    bestIdx = static_cast<int>(i);
            }
        }

        // The infeasible-exit counter measures *steps* the budget
        // pinned, not candidates: a batch with any evaluated member
        // resets it, a fully-infeasible batch advances it by exactly
        // one, so the exit threshold means the same wall-clock-bounded
        // thing at candidateBatch=1 and =32.
        bool sawInfeasible = false;
        int evaluated = 0;
        double hv = opts_.pareto ? st.front.hypervolume() : 0;
        for (size_t i = 0; i < cands.size(); ++i) {
            Candidate &c = cands[i];
            if (!c.feasible) {
                sawInfeasible = true;
                continue;
            }
            if (!c.evalStatus.ok()) {
                // Lost to an evaluation error or timeout: count it
                // toward the infeasible exit, remember the first
                // cause, and keep exploring.
                sawInfeasible = true;
                ++result.evalFailures;
                if (result.status.ok())
                    result.status = c.evalStatus;
                continue;
            }
            ++evaluated;
            result.history.push_back(
                {c.iter, c.cost.areaMm2, c.cost.powerMw, c.perf,
                 c.objective, static_cast<int>(i) == bestIdx, hv});
        }
        if (evaluated > 0)
            st.infeasibleStreak = 0;
        else if (sawInfeasible)
            ++st.infeasibleStreak;
        if (bestIdx >= 0) {
            Candidate &c = cands[static_cast<size_t>(bestIdx)];
            st.current = std::move(c.adg);
            st.schedules = std::move(c.cache);
            st.curObj = c.objective;
            if (opts_.costMemo)
                pricer_.bind(st.current,
                             model::AreaPowerModel::instance(), costMemo_);
            if (c.objective > result.bestObjective) {
                result.best = st.current;
                result.bestObjective = c.objective;
                result.bestPerf = c.perf;
                result.bestCost = c.cost;
            }
            st.noImprove = 0;

            // Checkpoint cadence counts *accepted* steps: those are the
            // expensive-to-lose state changes (rejected steps only
            // advance the RNG, which the checkpoint also captures).
            ++st.acceptedSinceCkpt;
            if (!opts_.checkpointPath.empty() &&
                st.acceptedSinceCkpt >= opts_.checkpointEvery) {
                st.acceptedSinceCkpt = 0;
                writeCheckpoint(st);
                if (opts_.haltAfterCheckpoints > 0 &&
                    result.checkpointsWritten >=
                        opts_.haltAfterCheckpoints) {
                    // Test knob: emulate a crash right after the write.
                    result.stopReason = "halted";
                    finalizeResult(st);
                    return result;
                }
            }
        } else {
            st.noImprove += evaluated;
        }
    }

    // Final checkpoint so a finished (or wall-clock-stopped) run leaves
    // a consistent file behind; resuming it is a no-op continuation.
    if (!opts_.checkpointPath.empty())
        writeCheckpoint(st);
    if (opts_.simValidateBest)
        validateBest(result);
    finalizeResult(st);
    return result;
}

void
Explorer::validateBest(DseResult &result)
{
    // Compile/schedule every workload first, then run all the
    // simulations as one batch: per-workload {dense, sparse, compiled,
    // jit} job quadruples sharing one simulateBatch arena, so
    // ring-buffer and compute-plan allocations are paid against a
    // single high-water mark instead of once per engine per workload.
    struct Pending
    {
        const workloads::Workload *w;
        dfg::DecoupledProgram prog;
        mapper::Schedule sched;
        std::array<sim::MemImage, 4> imgs; // dense,sparse,compiled,jit
    };
    std::vector<std::unique_ptr<Pending>> pending;

    auto features = compiler::HwFeatures::fromAdg(result.best);
    for (const auto *w : workloads_) {
        auto golden = workloads::runGolden(*w);
        auto placement =
            compiler::Placement::autoLayout(w->kernel, features);
        auto lowered =
            compiler::lowerKernel(w->kernel, placement, features, {}, 1);
        if (!lowered.ok)
            continue;
        auto p = std::make_unique<Pending>();
        p->w = w;
        p->prog = lowered.version.program;
        p->sched = mapper::scheduleProgram(
            p->prog, result.best,
            {.maxIters = opts_.initSchedIters, .seed = opts_.seed});
        if (!p->sched.cost.legal())
            continue;
        for (auto &img : p->imgs)
            img = sim::MemImage::build(w->kernel, golden.initial,
                                       placement);
        pending.push_back(std::move(p));
    }

    std::vector<sim::SimJob> jobs;
    jobs.reserve(pending.size() * 4);
    for (auto &p : pending) {
        for (int e = 0; e < 4; ++e) {
            sim::SimJob job;
            job.prog = &p->prog;
            job.sched = &p->sched;
            job.adg = &result.best;
            job.mem = &p->imgs[static_cast<size_t>(e)];
            job.opts = opts_.sim;
            job.opts.sparse = e != 0;
            job.opts.compiled = e >= 2;
            job.opts.jit = e == 3;
            job.opts.checkSparse = false;
            job.opts.checkCompiled = false;
            job.opts.checkJit = false;
            if (e == 3) {
                // Validation runs are short: compile eagerly so the
                // native path is actually exercised (and its object
                // lands in the shared cache for the next run).
                job.opts.jitHotCycles = 0;
            }
            jobs.push_back(job);
        }
    }
    auto batch = sim::simulateBatch(jobs);

    for (size_t i = 0; i < pending.size(); ++i) {
        const auto &p = *pending[i];
        const auto &dense = batch.results[i * 4];
        auto sameAsDense = [&](const sim::SimResult &r, int img) {
            return dense.ok == r.ok &&
                   dense.status.code() == r.status.code() &&
                   dense.error == r.error && dense.cycles == r.cycles &&
                   dense.peFires == r.peFires &&
                   dense.memBytes == r.memBytes &&
                   p.imgs[0].main.bytes() ==
                       p.imgs[static_cast<size_t>(img)].main.bytes() &&
                   p.imgs[0].spad.bytes() ==
                       p.imgs[static_cast<size_t>(img)].spad.bytes();
        };
        const char *bad = nullptr;
        if (!sameAsDense(batch.results[i * 4 + 1], 1))
            bad = "sparse";
        else if (!sameAsDense(batch.results[i * 4 + 2], 2))
            bad = "compiled";
        else if (!sameAsDense(batch.results[i * 4 + 3], 3))
            bad = "jit";
        if (bad && result.status.ok())
            result.status = Status::internal(
                std::string(bad) +
                "/dense simulator divergence on workload '" +
                p.w->name + "' of the best design");
        double denseMs = batch.jobMs[i * 4];
        double fastMs = batch.jobMs[i * 4 + 3];
        result.simSpeedups[p.w->name] =
            fastMs > 0 ? denseMs / fastMs : 0.0;
    }
}

} // namespace dsa::dse
