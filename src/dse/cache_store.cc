#include "dse/cache_store.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/fault.h"
#include "base/hashing.h"
#include "base/json.h"
#include "base/logging.h"
#include "base/subprocess.h"
#include "dse/checkpoint.h"

namespace dsa::dse {

namespace {

// Record layout: magic, u32 LE payload length, u64 LE xxhash64 of the
// payload, then the payload (one evalEntryToJson document).
constexpr char kRecordMagic[4] = {'D', 'S', 'E', 'C'};
constexpr size_t kRecordHeader = 4 + 4 + 8;
constexpr uint32_t kMaxRecordBytes = 64u << 20;
constexpr uint64_t kChecksumSeed = 0x647361636163ull; // "dsacac"

void putU32(std::string &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putU64(std::string &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t getU32(const unsigned char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t getU64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Owner pid encoded in a segment file name (`seg-<pid>-...`), or -1. */
pid_t segmentOwner(const std::string &name)
{
    int pid = 0;
    if (std::sscanf(name.c_str(), "seg-%d-", &pid) == 1 && pid > 0)
        return static_cast<pid_t>(pid);
    return -1;
}

bool isSegmentName(const std::string &name)
{
    return name.size() > 9 && name.compare(0, 4, "seg-") == 0 &&
           name.compare(name.size() - 5, 5, ".dsec") == 0;
}

Result<std::vector<std::string>> listSegments(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return errnoStatus("store.opendir", errno);
    std::vector<std::string> names;
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (isSegmentName(name))
            names.push_back(name);
    }
    ::closedir(d);
    // Sorted so every process scans segments in the same order.
    std::sort(names.begin(), names.end());
    return names;
}

Result<std::string> readFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return errnoStatus("store.open", errno);
    std::string data;
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            return errnoStatus("store.read", err);
        }
        if (n == 0)
            break;
        data.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return data;
}

Status writeAllFd(int fd, const char *data, size_t len, const char *site)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus(site, errno);
        }
        off += static_cast<size_t>(n);
    }
    return Status();
}

std::string serializeRecord(const EvalKey &key, const EvalCacheEntry &entry)
{
    std::string payload = evalEntryToJson(key, entry).dump();
    std::string buf;
    buf.reserve(kRecordHeader + payload.size());
    buf.append(kRecordMagic, sizeof(kRecordMagic));
    putU32(buf, static_cast<uint32_t>(payload.size()));
    putU64(buf, xxhash64(payload.data(), payload.size(), kChecksumSeed));
    buf.append(payload);
    return buf;
}

/**
 * Scan one segment's bytes, invoking @p sink per good record. Bad
 * records are quarantined: counted once per corrupt region, logged
 * with their offset, and skipped by resynchronizing on the next
 * record magic.
 */
template <typename Sink>
void scanSegment(const std::string &name, const std::string &data,
                 CacheStoreStats &stats, Sink &&sink)
{
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(data.data());
    size_t off = 0;
    auto resync = [&](const char *why, size_t at) {
        ++stats.recordsQuarantined;
        DSA_WARN("cache store: quarantined ", why, " in '", name,
                 "' at offset ", at, " (", data.size(), " bytes total)");
        // Skip forward to the next plausible record start.
        size_t next = data.find(std::string(kRecordMagic, 4), at + 1);
        off = next == std::string::npos ? data.size() : next;
    };
    while (off < data.size()) {
        if (off + kRecordHeader > data.size()) {
            resync("torn record header", off);
            continue;
        }
        if (std::memcmp(bytes + off, kRecordMagic, 4) != 0) {
            resync("bad record magic", off);
            continue;
        }
        uint32_t len = getU32(bytes + off + 4);
        uint64_t sum = getU64(bytes + off + 8);
        if (len > kMaxRecordBytes || off + kRecordHeader + len > data.size()) {
            resync("torn or oversized record", off);
            continue;
        }
        const char *payload = data.data() + off + kRecordHeader;
        if (xxhash64(payload, len, kChecksumSeed) != sum) {
            resync("checksum mismatch", off);
            continue;
        }
        auto parsed = json::parse(std::string(payload, len));
        if (!parsed.ok()) {
            resync("unparseable record payload", off);
            continue;
        }
        auto rec = evalEntryFromJson(parsed.value());
        if (!rec.ok()) {
            resync("malformed record document", off);
            continue;
        }
        sink(rec.value());
        off += kRecordHeader + len;
    }
}

} // namespace

CacheStore::CacheStore(std::string dir, CacheStoreOptions opts)
    : dir_(std::move(dir)), opts_(opts)
{
}

CacheStore::~CacheStore()
{
    flush();
}

Status CacheStore::open()
{
    // mkdir -p: create each path component, tolerating ones that exist.
    std::string partial;
    for (size_t i = 0; i <= dir_.size(); ++i) {
        if (i < dir_.size() && dir_[i] != '/') {
            partial.push_back(dir_[i]);
            continue;
        }
        if (!partial.empty() && partial != "." &&
            ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return errnoStatus("store.mkdir", errno);
        if (i < dir_.size())
            partial.push_back('/');
    }
    struct stat st;
    if (::stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return Status::invalidArgument("cache store path '" + dir_ +
                                       "' is not a directory");
    return Status();
}

Status CacheStore::loadInto(EvalCache &cache)
{
    auto names = listSegments(dir_);
    if (!names.ok())
        return names.status();
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string &name : *names) {
        auto data = readFile(dir_ + "/" + name);
        if (!data.ok()) {
            // A segment can vanish mid-scan (concurrent compaction
            // unlinked it); its records live on in the merged segment.
            DSA_WARN("cache store: skipping unreadable segment '", name,
                     "': ", data.status().toString());
            continue;
        }
        ++stats_.segmentsLoaded;
        scanSegment(name, *data, stats_, [&](const EvalStoreRecord &rec) {
            cache.restore(rec.key, rec.entry);
            ++stats_.recordsLoaded;
        });
    }
    return Status();
}

Status CacheStore::ensureSegmentLocked()
{
    if (segFd_ >= 0)
        return Status();
    // One writer per segment file, guaranteed by O_EXCL on a
    // pid-unique name (the counter covers reopen-after-flush and
    // multiple stores in one process).
    static std::atomic<uint64_t> counter{0};
    for (int tries = 0; tries < 64; ++tries) {
        uint64_t n = counter.fetch_add(1);
        std::string path = dir_ + "/seg-" + std::to_string(::getpid()) + "-" +
                           std::to_string(n) + ".dsec";
        int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC,
                        0644);
        if (fd >= 0) {
            segFd_ = fd;
            segPath_ = path;
            return Status();
        }
        if (errno != EEXIST)
            return errnoStatus("store.segment-open", errno);
    }
    return Status::internal("cache store: cannot allocate a segment name in '" +
                            dir_ + "'");
}

Status CacheStore::append(const EvalKey &key, const EvalCacheEntry &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    Status s = ensureSegmentLocked();
    if (!s.ok())
        return s;
    std::string rec = serializeRecord(key, entry);
    if (fault::shouldFire("store.append.flip")) {
        // Bit rot: corrupt one payload byte after the checksum was
        // computed, so loads must detect and quarantine this record.
        DSA_WARN("fault 'store.append.flip': flipping a byte in '", segPath_,
                 "'");
        rec[kRecordHeader + rec.size() / 2 % (rec.size() - kRecordHeader)] ^=
            0x40;
    }
    size_t len = rec.size();
    if (fault::shouldFire("store.append.tear")) {
        // Writer killed mid-append: only half the record reaches disk.
        DSA_WARN("fault 'store.append.tear': writing a torn record to '",
                 segPath_, "'");
        len = kRecordHeader + (len - kRecordHeader) / 2;
    }
    s = writeAllFd(segFd_, rec.data(), len, "store.append");
    if (!s.ok())
        return s;
    ++stats_.appends;
    return Status();
}

void CacheStore::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (segFd_ < 0)
        return;
    if (::fsync(segFd_) != 0)
        DSA_WARN("cache store: fsync('", segPath_,
                 "') failed: ", std::strerror(errno));
    ::close(segFd_);
    segFd_ = -1;
    segPath_.clear();
}

Result<bool> CacheStore::acquireLease()
{
    std::string lease = dir_ + "/compact.lease";
    std::string body = "pid " + std::to_string(::getpid()) + "\n";
    int fd = ::open(lease.c_str(),
                    O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
        (void)writeAllFd(fd, body.data(), body.size(), "store.lease");
        ::close(fd);
        return true;
    }
    if (errno != EEXIST)
        return errnoStatus("store.lease-open", errno);
    // Someone holds the lease. Stale if its owner is gone or it has
    // outlived the staleness bound (a wedged owner).
    bool stale = false;
    auto held = readFile(lease);
    if (held.ok()) {
        pid_t owner = 0;
        if (std::sscanf(held->c_str(), "pid %d", &owner) == 1 &&
            owner > 0 && ::kill(owner, 0) != 0 && errno == ESRCH)
            stale = true;
    } else {
        stale = true; // vanished or unreadable: contend for it
    }
    struct stat st;
    if (!stale && ::stat(lease.c_str(), &st) == 0) {
        int64_t ageMs =
            (static_cast<int64_t>(::time(nullptr)) - st.st_mtime) * 1000;
        if (ageMs > opts_.leaseStaleMs)
            stale = true;
    }
    if (!stale)
        return false;
    // Take over by renaming a fully written replacement over the stale
    // file. unlink-then-create would race concurrent takeovers (one
    // contender can unlink another's *fresh* lease); rename is atomic,
    // so the file always holds exactly one pid, and re-reading it
    // tells every contender whether it actually won.
    std::string mine = lease + "." + std::to_string(::getpid());
    int tfd = ::open(mine.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (tfd < 0)
        return errnoStatus("store.lease-open", errno);
    Status ws = writeAllFd(tfd, body.data(), body.size(), "store.lease");
    ::close(tfd);
    if (!ws.ok()) {
        ::unlink(mine.c_str());
        return ws;
    }
    if (::rename(mine.c_str(), lease.c_str()) != 0) {
        int err = errno;
        ::unlink(mine.c_str());
        return errnoStatus("store.lease-rename", err);
    }
    if (!leaseOwned())
        return false; // lost the takeover race to another process
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.leaseTakeovers;
    DSA_WARN("cache store: took over stale compaction lease '", lease, "'");
    return true;
}

bool CacheStore::leaseOwned() const
{
    auto body = readFile(dir_ + "/compact.lease");
    pid_t owner = 0;
    return body.ok() && std::sscanf(body->c_str(), "pid %d", &owner) == 1 &&
           owner == ::getpid();
}

void CacheStore::releaseLease()
{
    // Never unlink a lease another process renamed over ours (it would
    // hand a third contender a free takeover mid-compaction).
    if (leaseOwned())
        ::unlink((dir_ + "/compact.lease").c_str());
}

Result<bool> CacheStore::compact()
{
    auto lease = acquireLease();
    if (!lease.ok() || !*lease)
        return lease;

    // Our own write segment must be complete on disk before the merge
    // reads it (and we want its records in the merged file).
    flush();

    auto names = listSegments(dir_);
    if (!names.ok()) {
        releaseLease();
        return names.status();
    }
    if (names->size() < 2) {
        releaseLease();
        return true; // nothing to merge
    }

    // Dedup by key: entries are pure functions of the key, so any
    // duplicate's payload is interchangeable (last one wins).
    std::map<EvalKey, std::string> merged;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const std::string &name : *names) {
            auto data = readFile(dir_ + "/" + name);
            if (!data.ok())
                continue;
            scanSegment(name, *data, stats_, [&](const EvalStoreRecord &rec) {
                merged[rec.key] = serializeRecord(rec.key, *rec.entry);
            });
        }
    }

    std::string mergedPath = dir_ + "/seg-" + std::to_string(::getpid()) +
                             "-merge.dsec";
    std::string tmp = mergedPath + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        int err = errno;
        releaseLease();
        return errnoStatus("store.compact-open", err);
    }
    for (const auto &[key, rec] : merged) {
        Status s = writeAllFd(fd, rec.data(), rec.size(), "store.compact");
        if (!s.ok()) {
            ::close(fd);
            ::unlink(tmp.c_str());
            releaseLease();
            return s;
        }
    }
    // Same durability order as checkpoints: data, then rename, so a
    // crash mid-compaction leaves either the old segments or a full
    // merged one — never a half-written "merged" file under a valid
    // name.
    if (::fsync(fd) != 0 || ::close(fd) != 0 ||
        ::rename(tmp.c_str(), mergedPath.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        releaseLease();
        return errnoStatus("store.compact-finish", err);
    }
    // The lease can have been taken over mid-merge (a contender judged
    // us wedged past leaseStaleMs). The merge itself was additive —
    // our pid-unique merged segment is just more valid records — but
    // the destructive step below must then be skipped, or two
    // compactors unlink each other's segments.
    if (!leaseOwned())
        return false;
    pid_t self = ::getpid();
    std::string active;
    {
        std::lock_guard<std::mutex> lock(mu_);
        active = segPath_;
    }
    uint64_t liveSkipped = 0;
    for (const std::string &name : *names) {
        std::string path = dir_ + "/" + name;
        if (path == mergedPath || path == active)
            continue;
        pid_t owner = segmentOwner(name);
        if (owner > 0 && owner != self &&
            !(::kill(owner, 0) != 0 && errno == ESRCH)) {
            // A live writer may have appended to this segment after
            // the merge snapshotted it; unlinking now would silently
            // drop those records. Leave it — a later compaction
            // retires it once its owner exits.
            ++liveSkipped;
            continue;
        }
        ::unlink(path.c_str());
    }
    releaseLease();
    std::lock_guard<std::mutex> lock(mu_);
    stats_.liveSegmentsSkipped += liveSkipped;
    ++stats_.compactions;
    return true;
}

void CacheStore::maybeCompact()
{
    if (opts_.compactSegments <= 0)
        return;
    auto names = listSegments(dir_);
    if (!names.ok() ||
        names->size() <= static_cast<size_t>(opts_.compactSegments))
        return;
    auto done = compact();
    if (!done.ok())
        DSA_WARN("cache store: compaction failed: ", done.status().toString());
}

CacheStoreStats CacheStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace dsa::dse
