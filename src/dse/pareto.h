/**
 * @file
 * Multi-objective Pareto front over (perf, areaMm2, powerMw) for the
 * DSE. The scalar annealer collapses three axes into perf^2/mm^2 and
 * silently discards power; the Pareto mode instead maintains a
 * bounded archive of mutually non-dominated designs and accepts moves
 * by *hypervolume contribution*: the volume of objective space a
 * candidate dominates beyond what the current front already covers,
 * measured against the run's (area, power) budget as the reference
 * point. Hypervolume is the standard strictly-Pareto-compliant
 * scalarization — a front whose hypervolume grew strictly improved.
 *
 * Determinism contract (the repo's acceptance bar): every operation is
 * a pure, serially-executed function of the archive contents and the
 * inserted point. Points carry an insertion sequence number so pruning
 * tie-breaks are reproducible, the archive order is insertion order,
 * and hypervolume is computed by exact sweeps over sorted copies —
 * so the same batch reduction produces the same front on any thread
 * count, and a checkpoint that round-trips the points (with their
 * sequence numbers) resumes bit-identically.
 *
 * Geometry: perf is maximized from 0; area and power are minimized
 * against the reference point (refArea, refPower). A point contributes
 * the box [0, perf] x [area, refArea] x [power, refPower]. The 3D
 * hypervolume of the union is computed by sweeping perf slices over a
 * 2D staircase (O(n^2 log n), archives are <= ~64 points). Points
 * outside the reference box are clamped to it (zero contribution
 * beyond the budget — budget-infeasible designs never get here
 * anyway, the explorer rejects them before evaluation).
 */

#ifndef DSA_DSE_PARETO_H
#define DSA_DSE_PARETO_H

#include <cstdint>
#include <vector>

#include "adg/adg.h"

namespace dsa::dse {

/** One non-dominated design on the front. */
struct ParetoPoint
{
    adg::Adg adg;          ///< the design realizing the point
    double perf = 0;       ///< geomean speedup (maximized)
    double areaMm2 = 0;    ///< silicon area (minimized)
    double powerMw = 0;    ///< power (minimized)
    double objective = 0;  ///< legacy scalar perf^2/mm^2 (reporting)
    int iter = 0;          ///< exploration iteration that produced it
    /** Insertion sequence (monotonic); pruning tie-break + resume. */
    uint64_t seq = 0;
};

/**
 * Weak Pareto dominance on (perf max, area min, power min): @p a is
 * no worse on every axis and strictly better on at least one.
 */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * Bounded non-dominated archive with hypervolume-contribution
 * pruning. All updates are serial and deterministic (see file
 * comment); the explorer feeds it candidates in fixed draw order.
 */
class ParetoFront
{
  public:
    ParetoFront() = default;
    ParetoFront(double refAreaMm2, double refPowerMw, int maxSize);

    /** Outcome of one insertion attempt. */
    struct AddOutcome
    {
        /** Point survived (non-dominated and not pruned right back). */
        bool added = false;
        /** Hypervolume growth of the archive (>= 0). */
        double hvGain = 0;
    };

    /**
     * Try to insert @p p: rejected if some archived point weakly
     * dominates it; otherwise points it dominates are dropped, it is
     * appended (gaining the next sequence number), and — if the
     * archive now exceeds maxSize — the point with the smallest
     * exclusive hypervolume contribution is pruned (ties drop the
     * newest). Returns whether @p p survived and the archive's
     * hypervolume growth.
     */
    AddOutcome add(ParetoPoint p);

    /** Exact hypervolume of the archive vs the reference point. */
    double hypervolume() const;

    /** Exclusive hypervolume contribution of points_[i]. */
    double contribution(size_t i) const;

    /** Archive contents, in insertion order (deterministic). */
    const std::vector<ParetoPoint> &points() const { return points_; }

    double refAreaMm2() const { return refAreaMm2_; }
    double refPowerMw() const { return refPowerMw_; }
    int maxSize() const { return maxSize_; }
    bool empty() const { return points_.empty(); }
    size_t size() const { return points_.size(); }

    /**
     * Rebuild an archive from checkpointed state: points are taken
     * verbatim (including their seq numbers) and the next sequence
     * number continues past the largest restored one, so a resumed
     * run prunes with the exact tie-breaks the uninterrupted run
     * would have used.
     */
    static ParetoFront restore(double refAreaMm2, double refPowerMw,
                               int maxSize,
                               std::vector<ParetoPoint> points);

  private:
    std::vector<ParetoPoint> points_;
    double refAreaMm2_ = 0;
    double refPowerMw_ = 0;
    int maxSize_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace dsa::dse

#endif // DSA_DSE_PARETO_H
