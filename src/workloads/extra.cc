/**
 * @file
 * Extra (non-Table-I) workloads: the producer-consumer idiom of
 * Fig. 7(a) — a row dot-product forwarded straight into a row update,
 * pipelining the two offloaded regions without a memory round-trip —
 * and the repetitive in-place update of Fig. 7(b).
 */

#include "workloads/suites.h"

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

/** Fig. 7(a): v = a_row . b; a_row -= v * b (per row). */
Workload
makeProducerConsumer()
{
    constexpr int64_t n = 64;
    Workload w;
    w.name = "prodcons";
    w.suite = "Extra";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = "prodcons";
    k.params = {{"n", n}};
    // Rows are independent: assert it so the compiler may pipeline.
    k.assumeRegionIndependence = true;
    k.arrays = {
        {"a", n * n, 8, true, false},
        {"b", n, 8, true, false},
    };
    k.body = {
        makeLoop(0, P("n"),
                 {
                     makeLet("v", F(0.0)),
                     makeLoop(1, P("n"),
                              {makeReduce("v", OpCode::FAdd,
                                          fmul(L("a", IV(0) * P("n") +
                                                          IV(1)),
                                               L("b", IV(1))))},
                              /*offload=*/true),
                     makeLoop(2, P("n"),
                              {makeStore("a", IV(0) * P("n") + IV(2),
                                         fsub(L("a", IV(0) * P("n") +
                                                         IV(2)),
                                              fmul(S("v"),
                                                   L("b", IV(2)))))},
                              /*offload=*/true),
                 }),
    };
    w.outputs = {"a"};
    w.tolerance = 1e-8;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < n * n; ++i)
            st.data("a")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        for (int64_t i = 0; i < n; ++i)
            st.data("b")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
    };
    return w;
}

/** Fig. 7(b): c[j] += a[i] * b[j] — repetitive in-place update. */
Workload
makeRepUpdate()
{
    constexpr int64_t n = 128;  // outer
    constexpr int64_t m = 64;   // updated row, fits the sync buffers
    Workload w;
    w.name = "repupdate";
    w.suite = "Extra";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = "repupdate";
    k.params = {{"n", n}, {"m", m}};
    k.arrays = {
        {"a", n, 8, true, false},
        {"b", m, 8, true, false},
        {"c", m, 8, true, false},
    };
    k.body = {
        makeLoop(0, P("n"),
                 {makeLoop(1, P("m"),
                           {makeUpdate("c", IV(1), OpCode::FAdd,
                                       fmul(L("a", IV(0)), L("b", IV(1))))},
                           /*offload=*/true)}),
    };
    w.outputs = {"c"};
    w.tolerance = 1e-8;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < n; ++i)
            st.data("a")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        for (int64_t i = 0; i < m; ++i)
            st.data("b")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
    };
    return w;
}

} // namespace

void
addExtra(std::vector<Workload> &out)
{
    out.push_back(makeProducerConsumer());
    out.push_back(makeRepUpdate());
}

} // namespace dsa::workloads
