/**
 * @file
 * PolyBench [77] kernels at Table-I sizes: mm (32^3), 2mm, 3mm.
 * The chained products exercise region-level dependences between
 * disjoint loop nests (fenced, but each product still pipelines).
 */

#include "workloads/suites.h"

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

constexpr int64_t kN = 32;

/** Append c = a x b (n^3, f64) to a kernel body with loop-id base. */
void
appendMm(KernelSource &k, const std::string &a, const std::string &b,
         const std::string &c, int loopBase)
{
    auto term = fmul(L(a, IV(loopBase) * P("n") + IV(loopBase + 2)),
                     L(b, IV(loopBase + 2) * P("n") + IV(loopBase + 1)));
    k.body.push_back(makeLoop(
        loopBase, P("n"),
        {makeLoop(
            loopBase + 1, P("n"),
            {
                makeLet("v" + std::to_string(loopBase), F(0.0)),
                makeLoop(loopBase + 2, P("n"),
                         {makeReduce("v" + std::to_string(loopBase),
                                     OpCode::FAdd, term)},
                         /*offload=*/true),
                makeStore(c, IV(loopBase) * P("n") + IV(loopBase + 1),
                          S("v" + std::to_string(loopBase))),
            })}));
}

void
addMatrix(KernelSource &k, const std::string &name)
{
    k.arrays.push_back({name, kN * kN, 8, true, false});
}

void
initMatrix(ArrayStore &st, Rng &rng, const std::string &name)
{
    for (int64_t i = 0; i < kN * kN; ++i)
        st.data(name)[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
}

Workload
makePolyMm(int chain)
{
    Workload w;
    w.name = chain == 1 ? "p-mm" : (chain == 2 ? "2mm" : "3mm");
    w.suite = "PolyBench";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = w.name == "p-mm" ? "pmm" : w.name;
    k.params = {{"n", kN}};
    if (chain == 1) {
        addMatrix(k, "a");
        addMatrix(k, "b");
        addMatrix(k, "c");
        appendMm(k, "a", "b", "c", 0);
        w.outputs = {"c"};
        w.init = [](ArrayStore &st, Rng &rng) {
            initMatrix(st, rng, "a");
            initMatrix(st, rng, "b");
        };
    } else if (chain == 2) {
        // d = (a x b) x c
        for (const char *m : {"a", "b", "c", "tmp", "d"})
            addMatrix(k, m);
        appendMm(k, "a", "b", "tmp", 0);
        appendMm(k, "tmp", "c", "d", 10);
        w.outputs = {"d"};
        w.init = [](ArrayStore &st, Rng &rng) {
            initMatrix(st, rng, "a");
            initMatrix(st, rng, "b");
            initMatrix(st, rng, "c");
        };
    } else {
        // g = (a x b) x (c x d)
        for (const char *m : {"a", "b", "c", "d", "e", "f", "g"})
            addMatrix(k, m);
        appendMm(k, "a", "b", "e", 0);
        appendMm(k, "c", "d", "f", 10);
        appendMm(k, "e", "f", "g", 20);
        w.outputs = {"g"};
        w.init = [](ArrayStore &st, Rng &rng) {
            initMatrix(st, rng, "a");
            initMatrix(st, rng, "b");
            initMatrix(st, rng, "c");
            initMatrix(st, rng, "d");
        };
    }
    w.tolerance = 1e-7;
    return w;
}

} // namespace

void
addPolybench(std::vector<Workload> &out)
{
    out.push_back(makePolyMm(1));
    out.push_back(makePolyMm(2));
    out.push_back(makePolyMm(3));
}

} // namespace dsa::workloads
