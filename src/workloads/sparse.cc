/**
 * @file
 * Sparse-suite microbenchmarks from the SPU [20] workloads: histogram
 * (indirect atomic update) and join (sorted two-pointer merge).
 */

#include "workloads/suites.h"

#include <set>

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

/** histogram: hist[key[i]] += 1 over 2^16 keys into 2^10 bins. */
Workload
makeHistogram()
{
    constexpr int64_t nKeys = 1 << 16;
    constexpr int64_t nBins = 1 << 10;
    Workload w;
    w.name = "histogram";
    w.suite = "Sparse";
    w.fig10Target = "spu";
    KernelSource &k = w.kernel;
    k.name = "histogram";
    k.params = {{"n", nKeys}, {"bins", nBins}};
    k.arrays = {
        {"keys", nKeys, 8, false, false},
        {"hist", nBins, 8, false, true},
    };
    k.body = {
        makeLoop(0, P("n"),
                 {makeUpdate("hist", L("keys", IV(0)), OpCode::Add, C(1))},
                 /*offload=*/true),
    };
    w.outputs = {"hist"};
    w.tolerance = 0;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < nKeys; ++i)
            st.data("keys")[i] =
                static_cast<Value>(rng.uniformInt(0, nBins - 1));
    };
    return w;
}

/** join: sorted inner join of two 768-key tables, dot of values. */
Workload
makeJoin()
{
    constexpr int64_t len = 768;
    Workload w;
    w.name = "join";
    w.suite = "Sparse";
    w.fig10Target = "spu";
    KernelSource &k = w.kernel;
    k.name = "join";
    k.params = {{"n", len}};
    k.arrays = {
        {"ka", len, 8, false, false}, {"va", len, 8, true, false},
        {"kb", len, 8, false, false}, {"vb", len, 8, true, false},
        {"outr", 1, 8, true, false},
    };
    MergeLoopInfo m;
    m.keysA = "ka";
    m.keysB = "kb";
    m.lenA = P("n");
    m.lenB = P("n");
    m.ivA = 10;
    m.ivB = 11;
    k.body = {
        makeLet("acc", F(0.0)),
        makeMergeLoop(m, {makeReduce("acc", OpCode::FAdd,
                                     fmul(L("va", IV(10)),
                                          L("vb", IV(11))))}),
        makeStore("outr", C(0), S("acc")),
    };
    w.outputs = {"outr"};
    w.init = [](ArrayStore &st, Rng &rng) {
        // Sorted distinct keys with ~50% overlap between tables.
        auto gen = [&](const char *keys, const char *vals) {
            std::set<int64_t> s;
            while (static_cast<int64_t>(s.size()) < len)
                s.insert(rng.uniformInt(0, len * 3));
            int64_t i = 0;
            for (int64_t key : s)
                st.data(keys)[i++] = static_cast<Value>(key);
            for (int64_t j = 0; j < len; ++j)
                st.data(vals)[j] =
                    valueFromF64(rng.uniformReal(-1.0, 1.0));
        };
        gen("ka", "va");
        gen("kb", "vb");
    };
    return w;
}

} // namespace

void
addSparse(std::vector<Workload> &out)
{
    out.push_back(makeHistogram());
    out.push_back(makeJoin());
}

} // namespace dsa::workloads
