#include "workloads/workload.h"

#include <cmath>

#include "base/logging.h"
#include "base/strings.h"
#include "workloads/suites.h"

namespace dsa::workloads {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        addMachsuite(v);
        addSparse(v);
        addDsp(v);
        addPolybench(v);
        addDenseNn(v);
        addSparseCnn(v);
        addExtra(v);
        return v;
    }();
    return all;
}

const Workload &
workload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    std::vector<std::string> valid;
    for (const auto &w : allWorkloads())
        valid.push_back(w.name);
    DSA_FATAL("unknown workload '", name, "' ", suggestName(name, valid));
}

std::vector<const Workload *>
suiteWorkloads(const std::string &suite)
{
    std::vector<const Workload *> out;
    for (const auto &w : allWorkloads())
        if (w.suite == suite)
            out.push_back(&w);
    return out;
}

GoldenRun
runGolden(const Workload &w, uint64_t seed)
{
    GoldenRun run;
    run.initial = ir::ArrayStore(w.kernel);
    Rng rng(seed);
    if (w.init)
        w.init(run.initial, rng);
    run.final = run.initial;
    run.stats = ir::interpret(w.kernel, run.final);
    return run;
}

std::string
checkOutputs(const Workload &w, const ir::ArrayStore &expect,
             const ir::ArrayStore &got)
{
    for (const auto &name : w.outputs) {
        const auto &decl = w.kernel.arrayDecl(name);
        const auto &e = expect.data(name);
        const auto &g = got.data(name);
        for (size_t i = 0; i < e.size(); ++i) {
            if (decl.isFloat && w.tolerance > 0) {
                double ev = valueAsF64(e[i]);
                double gv = valueAsF64(g[i]);
                double err = std::fabs(gv - ev) /
                             std::max(1.0, std::fabs(ev));
                if (err > w.tolerance || std::isnan(gv)) {
                    return name + "[" + std::to_string(i) + "]: got " +
                           std::to_string(gv) + ", expect " +
                           std::to_string(ev);
                }
            } else if (e[i] != g[i]) {
                return name + "[" + std::to_string(i) + "]: got " +
                       std::to_string(static_cast<int64_t>(g[i])) +
                       ", expect " +
                       std::to_string(static_cast<int64_t>(e[i]));
            }
        }
    }
    return "";
}

} // namespace dsa::workloads
