/**
 * @file
 * DSP workloads targeted by REVEL [92]: qr (modified Gram-Schmidt),
 * chol (Cholesky-Crout), and fft (radix-2 Stockham, 2^10 points).
 * All three have cross-region dependences under shared loops, so the
 * compiler phases them sequentially; qr/chol additionally exercise the
 * inductive (triangular) linear streams.
 */

#include "workloads/suites.h"

#include <cmath>

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

/** qr: modified Gram-Schmidt on a 32x32 matrix (A -> Q, R). */
Workload
makeQr()
{
    constexpr int64_t n = 32;
    Workload w;
    w.name = "qr";
    w.suite = "Dsp";
    w.fig10Target = "revel";
    KernelSource &k = w.kernel;
    k.name = "qr";
    k.params = {{"n", n}};
    k.arrays = {
        {"a", n * n, 8, true, false},
        {"q", n * n, 8, true, false},
        {"r", n * n, 8, true, false},
    };
    // Column k norm.
    auto colK = L("a", IV(1) * P("n") + IV(0));
    // Loop ids: 0=k, 1=i (norm), 2=i (normalize), 3=j (trailing cols),
    // 4=i (projection dot), 5=i (update).
    std::vector<StmtPtr> body = {
        makeLet("s", F(0.0)),
        makeLoop(1, P("n"), {makeReduce("s", OpCode::FAdd,
                                        fmul(colK, colK))},
                 /*offload=*/true),
        makeStore("r", IV(0) * P("n") + IV(0), fsqrt(S("s"))),
        makeLoop(2, P("n"),
                 {makeStore("q", IV(2) * P("n") + IV(0),
                            fdiv(L("a", IV(2) * P("n") + IV(0)),
                                 fsqrt(S("s"))))},
                 /*offload=*/true),
        makeLoop(
            3, P("n") - IV(0) - C(1),
            {
                makeLet("d", F(0.0)),
                makeLoop(4, P("n"),
                         {makeReduce(
                             "d", OpCode::FAdd,
                             fmul(L("q", IV(4) * P("n") + IV(0)),
                                  L("a", IV(4) * P("n") + IV(0) + C(1) +
                                             IV(3))))},
                         /*offload=*/true),
                makeStore("r", IV(0) * P("n") + IV(0) + C(1) + IV(3),
                          S("d")),
                makeLoop(5, P("n"),
                         {makeStore(
                             "a", IV(5) * P("n") + IV(0) + C(1) + IV(3),
                             fsub(L("a",
                                    IV(5) * P("n") + IV(0) + C(1) + IV(3)),
                                  fmul(S("d"),
                                       L("q", IV(5) * P("n") + IV(0)))))},
                         /*offload=*/true),
            }),
    };
    k.body = {makeLoop(0, P("n"), body)};
    w.outputs = {"q", "r"};
    w.tolerance = 1e-6;
    w.init = [](ArrayStore &st, Rng &rng) {
        // Diagonally-dominant input keeps the factorization stable.
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < n; ++j)
                st.data("a")[i * n + j] = valueFromF64(
                    rng.uniformReal(-1.0, 1.0) + (i == j ? 4.0 : 0.0));
    };
    return w;
}

/** chol: Cholesky-Crout factorization of a 32x32 SPD matrix. */
Workload
makeChol()
{
    constexpr int64_t n = 32;
    Workload w;
    w.name = "chol";
    w.suite = "Dsp";
    w.fig10Target = "revel";
    KernelSource &k = w.kernel;
    k.name = "chol";
    k.params = {{"n", n}};
    k.arrays = {
        {"a", n * n, 8, true, false},
        {"lo", n * n, 8, true, false},
    };
    // Loop ids: 0=j (column), 1=k (diag dot), 2=z (diag store),
    // 3=i (rows below), 4=k (row dot), 5=z2 (row store).
    auto diagTerm = fmul(L("lo", IV(0) * P("n") + IV(1)),
                         L("lo", IV(0) * P("n") + IV(1)));
    auto rowTerm =
        fmul(L("lo", (IV(0) + C(1) + IV(3)) * P("n") + IV(4)),
             L("lo", IV(0) * P("n") + IV(4)));
    std::vector<StmtPtr> body = {
        makeLet("s", F(0.0)),
        makeLoop(1, IV(0), {makeReduce("s", OpCode::FAdd, diagTerm)},
                 /*offload=*/true),
        makeLoop(2, C(1),
                 {makeStore("lo", IV(0) * P("n") + IV(0),
                            fsqrt(fsub(L("a", IV(0) * P("n") + IV(0)),
                                       S("s"))))},
                 /*offload=*/true),
        makeLoop(
            3, P("n") - IV(0) - C(1),
            {
                makeLet("t", F(0.0)),
                makeLoop(4, IV(0),
                         {makeReduce("t", OpCode::FAdd, rowTerm)},
                         /*offload=*/true),
                makeLoop(5, C(1),
                         {makeStore(
                             "lo", (IV(0) + C(1) + IV(3)) * P("n") + IV(0),
                             fdiv(fsub(L("a", (IV(0) + C(1) + IV(3)) *
                                                  P("n") +
                                              IV(0)),
                                       S("t")),
                                  L("lo", IV(0) * P("n") + IV(0))))},
                         /*offload=*/true),
            }),
    };
    k.body = {makeLoop(0, P("n"), body)};
    w.outputs = {"lo"};
    w.tolerance = 1e-6;
    w.init = [](ArrayStore &st, Rng &rng) {
        // SPD input: M = B B^T + n I.
        std::vector<double> b(n * n);
        for (auto &v : b)
            v = rng.uniformReal(-1.0, 1.0);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < n; ++j) {
                double s = i == j ? static_cast<double>(n) : 0.0;
                for (int64_t t = 0; t < n; ++t)
                    s += b[i * n + t] * b[j * n + t];
                st.data("a")[i * n + j] = valueFromF64(s);
            }
    };
    return w;
}

/** fft: radix-2 Stockham autosort, 2^10 complex points. */
Workload
makeFft()
{
    constexpr int64_t n = 1 << 10;
    constexpr int stages = 10;
    Workload w;
    w.name = "fft";
    w.suite = "Dsp";
    w.fig10Target = "revel";
    KernelSource &k = w.kernel;
    k.name = "fft";
    k.params = {{"n", n}};
    k.arrays = {
        {"xr", n, 8, true, false}, {"xi", n, 8, true, false},
        {"yr", n, 8, true, false}, {"yi", n, 8, true, false},
        {"twr", n, 8, true, false}, {"twi", n, 8, true, false},
    };
    // Stage s: l = n/2^(s+1) twiddle groups, m = 2^s butterflies each.
    //   src[k + j*m], src[k + j*m + l*m]  ->  dst[k + 2*j*m] (sum),
    //   dst[k + 2*j*m + m] ((c0 - c1) * w_j), twiddles at twOff + j.
    // The j loop is offloaded (its extent l shrinks with the stage);
    // the k loop re-issues. Ping-pong x <-> y between stages.
    int64_t twOff = 0;
    for (int s = 0; s < stages; ++s) {
        int64_t m = int64_t(1) << s;
        int64_t l = n / (2 * m);
        const char *sr = (s % 2 == 0) ? "xr" : "yr";
        const char *si = (s % 2 == 0) ? "xi" : "yi";
        const char *dr = (s % 2 == 0) ? "yr" : "xr";
        const char *di = (s % 2 == 0) ? "yi" : "xi";
        int loopK = 100 + s * 2;      // outer: k in [0, m)
        int loopJ = 100 + s * 2 + 1;  // offloaded: j in [0, l)
        auto e0r = L(sr, IV(loopK) + IV(loopJ) * C(m));
        auto e0i = L(si, IV(loopK) + IV(loopJ) * C(m));
        auto e1r = L(sr, IV(loopK) + IV(loopJ) * C(m) + C(l * m));
        auto e1i = L(si, IV(loopK) + IV(loopJ) * C(m) + C(l * m));
        auto wr = L("twr", C(twOff) + IV(loopJ));
        auto wi = L("twi", C(twOff) + IV(loopJ));
        auto difr = fsub(e0r, e1r);
        auto difi = fsub(e0i, e1i);
        std::vector<StmtPtr> body = {
            makeStore(dr, IV(loopK) + IV(loopJ) * C(2 * m),
                      fadd(e0r, e1r)),
            makeStore(di, IV(loopK) + IV(loopJ) * C(2 * m),
                      fadd(e0i, e1i)),
            makeStore(dr, IV(loopK) + IV(loopJ) * C(2 * m) + C(m),
                      fsub(fmul(difr, wr), fmul(difi, wi))),
            makeStore(di, IV(loopK) + IV(loopJ) * C(2 * m) + C(m),
                      fadd(fmul(difr, wi), fmul(difi, wr))),
        };
        k.body.push_back(makeLoop(
            loopK, C(m), {makeLoop(loopJ, C(l), body, /*offload=*/true)}));
        twOff += l;
    }
    w.outputs = {"xr", "xi"};
    w.tolerance = 1e-7;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < n; ++i) {
            st.data("xr")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
            st.data("xi")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        }
        // Per-stage twiddles W_j = exp(-2 pi i j / (2 l)).
        int64_t off = 0;
        for (int s = 0; s < stages; ++s) {
            int64_t m = int64_t(1) << s;
            int64_t l = n / (2 * m);
            for (int64_t j = 0; j < l; ++j) {
                double ang = -2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(2 * l);
                st.data("twr")[off + j] = valueFromF64(std::cos(ang));
                st.data("twi")[off + j] = valueFromF64(std::sin(ang));
            }
            off += l;
        }
    };
    return w;
}

/** fir: 16-tap finite impulse response filter over 2048 samples. */
Workload
makeFir()
{
    constexpr int64_t n = 2048;
    constexpr int64_t taps = 16;
    Workload w;
    w.name = "fir";
    w.suite = "Dsp";
    w.fig10Target = "revel";
    KernelSource &k = w.kernel;
    k.name = "fir";
    k.params = {{"n", n}, {"t", taps}};
    k.arrays = {
        {"xin", n + taps, 8, true, false},
        {"h", taps, 8, true, false},
        {"yout", n, 8, true, false},
    };
    // Loop 0 (outer, folded as dim2): output sample; loop 1: tap.
    k.body = {makeLoop(
        0, P("n"),
        {
            makeLet("s", F(0.0)),
            makeLoop(1, P("t"),
                     {makeReduce("s", OpCode::FAdd,
                                 fmul(L("h", IV(1)),
                                      L("xin", IV(0) + IV(1))))},
                     /*offload=*/true),
            makeStore("yout", IV(0), S("s")),
        })};
    w.outputs = {"yout"};
    w.tolerance = 1e-8;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < n + taps; ++i)
            st.data("xin")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        for (int64_t i = 0; i < taps; ++i)
            st.data("h")[i] = valueFromF64(rng.uniformReal(-0.5, 0.5));
    };
    return w;
}

/** solver: forward substitution L x = b on a 64x64 lower triangle. */
Workload
makeSolver()
{
    constexpr int64_t n = 64;
    Workload w;
    w.name = "solver";
    w.suite = "Dsp";
    w.fig10Target = "revel";
    KernelSource &k = w.kernel;
    k.name = "solver";
    k.params = {{"n", n}};
    k.arrays = {
        {"lmat", n * n, 8, true, false},
        {"b", n, 8, true, false},
        {"x", n, 8, true, false},
    };
    // Loop 0: row; loop 1: triangular dot against solved prefix;
    // loop 2: single-trip store region (divide by the diagonal).
    k.body = {makeLoop(
        0, P("n"),
        {
            makeLet("s", F(0.0)),
            makeLoop(1, IV(0),
                     {makeReduce("s", OpCode::FAdd,
                                 fmul(L("lmat", IV(0) * P("n") + IV(1)),
                                      L("x", IV(1))))},
                     /*offload=*/true),
            makeLoop(2, C(1),
                     {makeStore("x", IV(0),
                                fdiv(fsub(L("b", IV(0)), S("s")),
                                     L("lmat",
                                       IV(0) * P("n") + IV(0))))},
                     /*offload=*/true),
        })};
    w.outputs = {"x"};
    w.tolerance = 1e-6;
    w.init = [](ArrayStore &st, Rng &rng) {
        // Well-conditioned lower-triangular system.
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < i; ++j)
                st.data("lmat")[i * n + j] =
                    valueFromF64(rng.uniformReal(-0.5, 0.5));
            st.data("lmat")[i * n + i] =
                valueFromF64(rng.uniformReal(2.0, 4.0));
            st.data("b")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        }
    };
    return w;
}

} // namespace

void
addDsp(std::vector<Workload> &out)
{
    out.push_back(makeQr());
    out.push_back(makeChol());
    out.push_back(makeFft());
    out.push_back(makeFir());
    out.push_back(makeSolver());
}

} // namespace dsa::workloads
