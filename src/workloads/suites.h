/**
 * @file
 * Internal: per-suite workload registration functions.
 */

#ifndef DSA_WORKLOADS_SUITES_H
#define DSA_WORKLOADS_SUITES_H

#include <vector>

#include "workloads/workload.h"

namespace dsa::workloads {

void addMachsuite(std::vector<Workload> &out);
void addSparse(std::vector<Workload> &out);
void addDsp(std::vector<Workload> &out);
void addPolybench(std::vector<Workload> &out);
void addDenseNn(std::vector<Workload> &out);
void addSparseCnn(std::vector<Workload> &out);
void addExtra(std::vector<Workload> &out);

} // namespace dsa::workloads

#endif // DSA_WORKLOADS_SUITES_H
