/**
 * @file
 * Workload registry: every kernel of Table I (MachSuite, Sparse, DSP,
 * PolyBench suites), the DenseNN set (conv / pool / classifier), the
 * SparseCNN workload (outer-product multiply + re-sparsification), and
 * a producer-consumer demo — each as a loop-nest-IR kernel with a
 * deterministic input initializer and declared output arrays for
 * validation against the interpreter.
 */

#ifndef DSA_WORKLOADS_WORKLOAD_H
#define DSA_WORKLOADS_WORKLOAD_H

#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "ir/interp.h"
#include "ir/stmt.h"

namespace dsa::workloads {

/** One benchmark kernel. */
struct Workload
{
    std::string name;
    std::string suite;
    ir::KernelSource kernel;
    /** Arrays checked against the golden interpreter run. */
    std::vector<std::string> outputs;
    /** Relative FP tolerance for output checks (0 = bit exact). */
    double tolerance = 1e-9;
    /**
     * The hand-designed accelerator this workload targets in the
     * paper's Fig. 10 comparison (prebuilt ADG name: softbrain, maeri,
     * triggered, spu, revel).
     */
    std::string fig10Target = "softbrain";
    /** Fill the input arrays deterministically. */
    std::function<void(ir::ArrayStore &, Rng &)> init;
};

/** All registered workloads (stable order). */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; fatal if unknown. */
const Workload &workload(const std::string &name);

/** All workloads of one suite. */
std::vector<const Workload *> suiteWorkloads(const std::string &suite);

/**
 * Run the golden interpreter on a freshly initialized store.
 * @return the post-run store and dynamic op statistics.
 */
struct GoldenRun
{
    ir::ArrayStore initial;  ///< inputs before execution
    ir::ArrayStore final;    ///< expected memory after execution
    ir::InterpStats stats;
};
GoldenRun runGolden(const Workload &w, uint64_t seed = 12345);

/**
 * Compare @p got against @p expect on the workload's output arrays.
 * @return empty string on success, else a description of the first
 *         mismatch.
 */
std::string checkOutputs(const Workload &w, const ir::ArrayStore &expect,
                         const ir::ArrayStore &got);

} // namespace dsa::workloads

#endif // DSA_WORKLOADS_WORKLOAD_H
