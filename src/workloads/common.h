/**
 * @file
 * Shared expression-building shorthand for workload kernel definitions.
 */

#ifndef DSA_WORKLOADS_COMMON_H
#define DSA_WORKLOADS_COMMON_H

#include "ir/expr.h"

namespace dsa::workloads {

using ir::ExprPtr;

/// Terse expression constructors used by the kernel builders.
inline ExprPtr C(int64_t v) { return ir::intConst(v); }
inline ExprPtr F(double v) { return ir::floatConst(v); }
inline ExprPtr IV(int loop) { return ir::iterVar(loop); }
inline ExprPtr P(const std::string &n) { return ir::param(n); }
inline ExprPtr S(const std::string &n) { return ir::scalarRef(n); }
inline ExprPtr
L(const std::string &arr, ExprPtr idx)
{
    return ir::load(arr, std::move(idx));
}

inline ExprPtr
fadd(ExprPtr a, ExprPtr b)
{
    return ir::binary(OpCode::FAdd, std::move(a), std::move(b));
}
inline ExprPtr
fsub(ExprPtr a, ExprPtr b)
{
    return ir::binary(OpCode::FSub, std::move(a), std::move(b));
}
inline ExprPtr
fmul(ExprPtr a, ExprPtr b)
{
    return ir::binary(OpCode::FMul, std::move(a), std::move(b));
}
inline ExprPtr
fdiv(ExprPtr a, ExprPtr b)
{
    return ir::binary(OpCode::FDiv, std::move(a), std::move(b));
}
inline ExprPtr
fmax2(ExprPtr a, ExprPtr b)
{
    return ir::binary(OpCode::FMax, std::move(a), std::move(b));
}
inline ExprPtr fsqrt(ExprPtr a) { return ir::unary(OpCode::FSqrt, std::move(a)); }
inline ExprPtr frelu(ExprPtr a) { return ir::unary(OpCode::ReLU, std::move(a)); }
inline ExprPtr fsigmoid(ExprPtr a) { return ir::unary(OpCode::Sigmoid, std::move(a)); }

} // namespace dsa::workloads

#endif // DSA_WORKLOADS_COMMON_H
