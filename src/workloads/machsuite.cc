/**
 * @file
 * MachSuite [79] kernels at the Table-I data sizes: md (knn forces),
 * spmv crs/ellpack, mm, stencil-2d, stencil-3d.
 */

#include "workloads/suites.h"

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

/** md: Lennard-Jones forces over a 16-neighbor list, 128 atoms. */
Workload
makeMd()
{
    constexpr int64_t nAtoms = 128;
    constexpr int64_t nNeigh = 16;
    Workload w;
    w.name = "md";
    w.suite = "MachSuite";
    w.fig10Target = "spu";  // indirect access needs SPU-style memory
    KernelSource &k = w.kernel;
    k.name = "md";
    k.params = {{"n", nAtoms}, {"m", nNeigh}};
    k.arrays = {
        {"x", nAtoms, 8, true, true}, {"y", nAtoms, 8, true, true},
        {"z", nAtoms, 8, true, true},
        {"nl", nAtoms * nNeigh, 8, false, false},
        {"fx", nAtoms, 8, true, false}, {"fy", nAtoms, 8, true, false},
        {"fz", nAtoms, 8, true, false},
    };
    // Neighbor index and per-axis deltas; shared subtrees are memoized
    // by the lowering, so build each expression once.
    auto nbr = L("nl", IV(0) * P("m") + IV(1));
    auto dx = fsub(L("x", IV(0)), L("x", nbr));
    auto dy = fsub(L("y", IV(0)), L("y", nbr));
    auto dz = fsub(L("z", IV(0)), L("z", nbr));
    auto r2 = fadd(fadd(fmul(dx, dx), fmul(dy, dy)), fmul(dz, dz));
    auto r2inv = fdiv(F(1.0), r2);
    auto r6inv = fmul(fmul(r2inv, r2inv), r2inv);
    auto potential = fmul(r6inv, fsub(fmul(F(1.5), r6inv), F(2.0)));
    auto force = fmul(r2inv, potential);
    std::vector<StmtPtr> inner = {
        makeReduce("fxv", OpCode::FAdd, fmul(force, dx)),
        makeReduce("fyv", OpCode::FAdd, fmul(force, dy)),
        makeReduce("fzv", OpCode::FAdd, fmul(force, dz)),
    };
    k.body = {
        makeLoop(0, P("n"),
                 {
                     makeLet("fxv", F(0.0)),
                     makeLet("fyv", F(0.0)),
                     makeLet("fzv", F(0.0)),
                     makeLoop(1, P("m"), inner, /*offload=*/true),
                     makeStore("fx", IV(0), S("fxv")),
                     makeStore("fy", IV(0), S("fyv")),
                     makeStore("fz", IV(0), S("fzv")),
                 }),
    };
    w.outputs = {"fx", "fy", "fz"};
    w.tolerance = 1e-9;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < nAtoms; ++i) {
            st.data("x")[i] = valueFromF64(rng.uniformReal(0.0, 10.0));
            st.data("y")[i] = valueFromF64(rng.uniformReal(0.0, 10.0));
            st.data("z")[i] = valueFromF64(rng.uniformReal(0.0, 10.0));
        }
        for (int64_t i = 0; i < nAtoms; ++i)
            for (int64_t j = 0; j < nNeigh; ++j) {
                // Never self-reference (avoids r2 == 0).
                int64_t nbr_idx =
                    (i + 1 + rng.uniformInt(0, nAtoms - 2)) % nAtoms;
                st.data("nl")[i * nNeigh + j] =
                    static_cast<Value>(nbr_idx);
            }
    };
    return w;
}

/** spmv with fixed row degree: y = A*x in CRS-like layout. */
Workload
makeSpmv(const std::string &name, bool columnMajor)
{
    constexpr int64_t rows = 464;
    constexpr int64_t nnz = 4;
    Workload w;
    w.name = name;
    w.suite = "MachSuite";
    w.fig10Target = "spu";
    KernelSource &k = w.kernel;
    k.name = name;
    k.params = {{"n", rows}, {"d", nnz}};
    k.arrays = {
        {"vals", rows * nnz, 8, true, false},
        {"cols", rows * nnz, 8, false, false},
        {"x", rows, 8, true, true},
        {"yv", rows, 8, true, false},
    };
    // crs: vals[i*d + j] ; ellpack: vals[j*n + i].
    ExprPtr idx = columnMajor ? IV(1) * P("n") + IV(0)
                              : IV(0) * P("d") + IV(1);
    ExprPtr idx2 = columnMajor ? IV(1) * P("n") + IV(0)
                               : IV(0) * P("d") + IV(1);
    auto term = fmul(L("vals", idx), L("x", L("cols", idx2)));
    k.body = {
        makeLoop(0, P("n"),
                 {
                     makeLet("v", F(0.0)),
                     makeLoop(1, P("d"),
                              {makeReduce("v", OpCode::FAdd, term)},
                              /*offload=*/true),
                     makeStore("yv", IV(0), S("v")),
                 }),
    };
    w.outputs = {"yv"};
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < rows * nnz; ++i) {
            st.data("vals")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
            st.data("cols")[i] =
                static_cast<Value>(rng.uniformInt(0, rows - 1));
        }
        for (int64_t i = 0; i < rows; ++i)
            st.data("x")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
    };
    return w;
}

/** Dense 64^3 matrix multiply. */
Workload
makeMm()
{
    constexpr int64_t n = 64;
    Workload w;
    w.name = "mm";
    w.suite = "MachSuite";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = "mm";
    k.params = {{"n", n}};
    k.arrays = {
        {"a", n * n, 8, true, false},
        {"b", n * n, 8, true, false},
        {"c", n * n, 8, true, false},
    };
    auto term = fmul(L("a", IV(0) * P("n") + IV(2)),
                     L("b", IV(2) * P("n") + IV(1)));
    k.body = {
        makeLoop(0, P("n"),
                 {makeLoop(1, P("n"),
                           {
                               makeLet("v", F(0.0)),
                               makeLoop(2, P("n"),
                                        {makeReduce("v", OpCode::FAdd,
                                                    term)},
                                        /*offload=*/true),
                               makeStore("c", IV(0) * P("n") + IV(1),
                                         S("v")),
                           })}),
    };
    w.outputs = {"c"};
    w.tolerance = 1e-7;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < n * n; ++i) {
            st.data("a")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
            st.data("b")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
        }
    };
    return w;
}

/** stencil-2d: 3x3 filter over a 130x130 grid. */
Workload
makeStencil2d()
{
    constexpr int64_t dim = 130;
    constexpr int64_t out = dim - 2;
    Workload w;
    w.name = "stencil-2d";
    w.suite = "MachSuite";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = "stencil2d";
    k.params = {{"n", dim}, {"m", out}};
    k.arrays = {
        {"img", dim * dim, 8, true, false},
        {"filt", 9, 8, true, false},
        {"sol", out * out, 8, true, false},
    };
    ExprPtr sum = F(0.0);
    for (int kr = 0; kr < 3; ++kr)
        for (int kc = 0; kc < 3; ++kc) {
            auto tap = fmul(L("filt", C(kr * 3 + kc)),
                            L("img", (IV(0) + C(kr)) * P("n") + IV(1) +
                                         C(kc)));
            sum = fadd(sum, tap);
        }
    k.body = {
        makeLoop(0, P("m"),
                 {makeLoop(1, P("m"),
                           {makeStore("sol", IV(0) * P("m") + IV(1), sum)},
                           /*offload=*/true)}),
    };
    w.outputs = {"sol"};
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < dim * dim; ++i)
            st.data("img")[i] = valueFromF64(rng.uniformReal(0.0, 1.0));
        for (int64_t i = 0; i < 9; ++i)
            st.data("filt")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
    };
    return w;
}

/** stencil-3d: 7-point stencil over a 32x32x16 grid. */
Workload
makeStencil3d()
{
    constexpr int64_t nx = 32, ny = 32, nz = 16;
    Workload w;
    w.name = "stencil-3d";
    w.suite = "MachSuite";
    w.fig10Target = "softbrain";
    KernelSource &k = w.kernel;
    k.name = "stencil3d";
    k.params = {{"nx", nx}, {"ny", ny}, {"nz", nz},
                {"ix", nx - 2}, {"iy", ny - 2}, {"iz", nz - 2}};
    int64_t cells = nx * ny * nz;
    k.arrays = {
        {"grid", cells, 8, true, false},
        {"outg", cells, 8, true, false},
    };
    // Linearized (i,j,l) with i slowest; interior points offset by +1.
    auto at = [&](int di, int dj, int dl) {
        return L("grid", (IV(0) + C(1 + di)) * P("ny") * P("nz") +
                             (IV(1) + C(1 + dj)) * P("nz") + IV(2) +
                             C(1 + dl));
    };
    auto sum = fadd(fadd(fadd(at(-1, 0, 0), at(1, 0, 0)),
                         fadd(at(0, -1, 0), at(0, 1, 0))),
                    fadd(at(0, 0, -1), at(0, 0, 1)));
    auto val = fsub(fmul(F(0.75), at(0, 0, 0)), fmul(F(0.125), sum));
    k.body = {
        makeLoop(0, P("ix"),
                 {makeLoop(1, P("iy"),
                           {makeLoop(2, P("iz"),
                                     {makeStore("outg",
                                                (IV(0) + C(1)) * P("ny") *
                                                        P("nz") +
                                                    (IV(1) + C(1)) *
                                                        P("nz") +
                                                    IV(2) + C(1),
                                                val)},
                                     /*offload=*/true)})}),
    };
    w.outputs = {"outg"};
    w.init = [cells](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < cells; ++i)
            st.data("grid")[i] = valueFromF64(rng.uniformReal(0.0, 1.0));
    };
    return w;
}

} // namespace

void
addMachsuite(std::vector<Workload> &out)
{
    out.push_back(makeMd());
    out.push_back(makeSpmv("crs", false));
    out.push_back(makeSpmv("ellpack", true));
    out.push_back(makeMm());
    out.push_back(makeStencil2d());
    out.push_back(makeStencil3d());
}

} // namespace dsa::workloads
