/**
 * @file
 * Neural-network workload sets of §VIII-B:
 *  - DenseNN: convolution, max-pooling, and classifier (FC+sigmoid)
 *    kernels with regular access and control (DianNao's domain);
 *  - SparseCNN: outer-product sparse multiply with accumulation into a
 *    dense scratch followed by re-sparsification (SCNN's dataflow).
 */

#include "workloads/suites.h"

#include "workloads/common.h"

namespace dsa::workloads {

using namespace dsa::ir;

namespace {

/** conv: 8 output channels, 3x3 filters over a 34x34 input plane. */
Workload
makeConv()
{
    constexpr int64_t inDim = 34;
    constexpr int64_t outDim = 32;
    constexpr int64_t ch = 8;
    Workload w;
    w.name = "conv";
    w.suite = "DenseNN";
    w.fig10Target = "maeri";
    KernelSource &k = w.kernel;
    k.name = "conv";
    k.params = {{"in", inDim}, {"out", outDim}, {"ch", ch}};
    k.arrays = {
        {"img", inDim * inDim, 8, true, false},
        {"wts", ch * 9, 8, true, false},
        {"act", ch * outDim * outDim, 8, true, false},
    };
    ExprPtr sum = F(0.0);
    for (int t = 0; t < 9; ++t) {
        auto tap = fmul(L("wts", IV(0) * C(9) + C(t)),
                        L("img", (IV(1) + C(t / 3)) * P("in") + IV(2) +
                                     C(t % 3)));
        sum = fadd(sum, tap);
    }
    k.body = {
        makeLoop(0, P("ch"),
                 {makeLoop(1, P("out"),
                           {makeLoop(2, P("out"),
                                     {makeStore(
                                         "act",
                                         IV(0) * P("out") * P("out") +
                                             IV(1) * P("out") + IV(2),
                                         frelu(sum))},
                                     /*offload=*/true)})}),
    };
    w.outputs = {"act"};
    w.tolerance = 1e-8;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < inDim * inDim; ++i)
            st.data("img")[i] = valueFromF64(rng.uniformReal(0.0, 1.0));
        for (int64_t i = 0; i < ch * 9; ++i)
            st.data("wts")[i] = valueFromF64(rng.uniformReal(-0.5, 0.5));
    };
    return w;
}

/** pool: 2x2 max-pooling over 8 channels of 32x32. */
Workload
makePool()
{
    constexpr int64_t inDim = 32;
    constexpr int64_t outDim = 16;
    constexpr int64_t ch = 8;
    Workload w;
    w.name = "pool";
    w.suite = "DenseNN";
    w.fig10Target = "maeri";
    KernelSource &k = w.kernel;
    k.name = "pool";
    k.params = {{"in", inDim}, {"out", outDim}, {"ch", ch}};
    k.arrays = {
        {"act", ch * inDim * inDim, 8, true, false},
        {"pooled", ch * outDim * outDim, 8, true, false},
    };
    auto at = [&](int dr, int dc) {
        return L("act", IV(0) * P("in") * P("in") +
                            (IV(1) * C(2) + C(dr)) * P("in") +
                            IV(2) * C(2) + C(dc));
    };
    auto m = fmax2(fmax2(at(0, 0), at(0, 1)), fmax2(at(1, 0), at(1, 1)));
    k.body = {
        makeLoop(0, P("ch"),
                 {makeLoop(1, P("out"),
                           {makeLoop(2, P("out"),
                                     {makeStore(
                                         "pooled",
                                         IV(0) * P("out") * P("out") +
                                             IV(1) * P("out") + IV(2),
                                         m)},
                                     /*offload=*/true)})}),
    };
    w.outputs = {"pooled"};
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < ch * inDim * inDim; ++i)
            st.data("act")[i] = valueFromF64(rng.uniformReal(-1.0, 1.0));
    };
    return w;
}

/** classifier: 64-way fully-connected layer with sigmoid. */
Workload
makeClassifier()
{
    constexpr int64_t nin = 256;
    constexpr int64_t nout = 64;
    Workload w;
    w.name = "classifier";
    w.suite = "DenseNN";
    w.fig10Target = "maeri";
    KernelSource &k = w.kernel;
    k.name = "classifier";
    k.params = {{"ni", nin}, {"no", nout}};
    k.arrays = {
        {"wts", nout * nin, 8, true, false},
        {"vin", nin, 8, true, false},
        {"vout", nout, 8, true, false},
    };
    auto term = fmul(L("wts", IV(0) * P("ni") + IV(1)), L("vin", IV(1)));
    k.body = {
        makeLoop(0, P("no"),
                 {
                     makeLet("s", F(0.0)),
                     makeLoop(1, P("ni"),
                              {makeReduce("s", OpCode::FAdd, term)},
                              /*offload=*/true),
                     makeStore("vout", IV(0), fsigmoid(S("s"))),
                 }),
    };
    w.outputs = {"vout"};
    w.tolerance = 1e-8;
    w.init = [](ArrayStore &st, Rng &rng) {
        for (int64_t i = 0; i < nout * nin; ++i)
            st.data("wts")[i] = valueFromF64(rng.uniformReal(-0.3, 0.3));
        for (int64_t i = 0; i < nin; ++i)
            st.data("vin")[i] = valueFromF64(rng.uniformReal(0.0, 1.0));
    };
    return w;
}

/**
 * sparse-cnn: SCNN-style outer-product of a sparse weight vector and a
 * sparse activation vector; products scatter-accumulate into a dense
 * partial-sum buffer (banked atomic updates), which is then
 * re-sparsified with a conditional compaction write.
 */
Workload
makeSparseCnn()
{
    constexpr int64_t nW = 64;
    constexpr int64_t nA = 256;
    constexpr int64_t dense = nW * 4 + nA * 4;  // output coord range
    Workload w;
    w.name = "sparse-cnn";
    w.suite = "SparseCNN";
    w.fig10Target = "spu";
    KernelSource &k = w.kernel;
    k.name = "sparsecnn";
    k.params = {{"nw", nW}, {"na", nA}, {"d", dense}};
    k.arrays = {
        {"wv", nW, 8, true, false},  {"wi", nW, 8, false, false},
        {"av", nA, 8, true, false},  {"ai", nA, 8, false, false},
        {"pairidx", nW * nA, 8, false, false},
        {"pairval", nW * nA, 8, true, false},
        {"psum", dense, 8, true, true},
        {"outv", dense, 8, true, false},
        {"outi", dense, 8, false, false},
    };
    // Phase 1: cartesian product of coordinates and values.
    k.body.push_back(makeLoop(
        0, P("nw"),
        {makeLoop(1, P("na"),
                  {
                      makeStore("pairidx", IV(0) * P("na") + IV(1),
                                binary(OpCode::Add,
                                       binary(OpCode::Mul, L("wi", IV(0)),
                                              C(4)),
                                       binary(OpCode::Mul, L("ai", IV(1)),
                                              C(4)))),
                      makeStore("pairval", IV(0) * P("na") + IV(1),
                                fmul(L("wv", IV(0)), L("av", IV(1)))),
                  },
                  /*offload=*/true)}));
    // Phase 2: scatter-accumulate into the dense buffer.
    k.body.push_back(makeLoop(
        2, P("nw") * P("na"),
        {makeUpdate("psum", L("pairidx", IV(2)), OpCode::FAdd,
                    L("pairval", IV(2)))},
        /*offload=*/true));
    // Phase 3: re-sparsify (compact non-zero coordinates).
    k.body.push_back(makeLet("cnt", C(0)));
    k.body.push_back(makeLoop(
        3, P("d"),
        {makeIf(binary(OpCode::CmpNE, L("psum", IV(3)), C(0)),
                {
                    makeStore("outv", S("cnt"), L("psum", IV(3))),
                    makeStore("outi", S("cnt"), IV(3)),
                    makeReduce("cnt", OpCode::Add, C(1)),
                })},
        /*offload=*/true));
    w.outputs = {"psum", "outv", "outi"};
    w.tolerance = 1e-9;
    w.init = [](ArrayStore &st, Rng &rng) {
        // Sorted sparse coordinates; wi in [0, nW*...), ai likewise so
        // combined coordinates stay within the dense range.
        auto coords = [&](const char *arr, int64_t count, int64_t range) {
            int64_t step = std::max<int64_t>(1, range / count);
            int64_t cur = 0;
            for (int64_t i = 0; i < count; ++i) {
                st.data(arr)[i] = static_cast<Value>(cur);
                cur += 1 + rng.uniformInt(0, step - 1);
                if (cur >= range)
                    cur = range - 1;
            }
        };
        coords("wi", nW, nW);
        coords("ai", nA, nA);
        for (int64_t i = 0; i < nW; ++i)
            st.data("wv")[i] = valueFromF64(rng.uniformReal(0.5, 1.5));
        for (int64_t i = 0; i < nA; ++i)
            st.data("av")[i] = valueFromF64(rng.uniformReal(0.5, 1.5));
    };
    return w;
}

} // namespace

void
addDenseNn(std::vector<Workload> &out)
{
    out.push_back(makeConv());
    out.push_back(makePool());
    out.push_back(makeClassifier());
}

void
addSparseCnn(std::vector<Workload> &out)
{
    out.push_back(makeSparseCnn());
}

} // namespace dsa::workloads
