/**
 * @file
 * Host baseline model: a scalar out-of-order core executing the
 * original (un-offloaded) kernel — the GCC -O3 / Xeon reference of
 * §VII, driven by the IR interpreter's dynamic operation counts.
 */

#ifndef DSA_MODEL_HOST_MODEL_H
#define DSA_MODEL_HOST_MODEL_H

#include "ir/interp.h"

namespace dsa::model {

/** Host core parameters (defaults ~ a modern server core at 2.1 GHz,
 *  cycle counts normalized to the accelerator's 1 GHz clock). */
struct HostParams
{
    double issueWidth = 4.0;    ///< ops per cycle sustained
    double aluPorts = 3.0;
    double memPorts = 2.0;
    double branchCost = 1.0;    ///< avg cycles per branch (mispredicts)
    /** Host clock relative to the accelerator's (2.1 GHz / 1 GHz). */
    double clockRatio = 2.1;
};

/**
 * Estimate host execution time in *accelerator* cycles, so speedups
 * compare directly against the simulator/performance model.
 */
double estimateHostCycles(const ir::InterpStats &stats,
                          const HostParams &params = {});

} // namespace dsa::model

#endif // DSA_MODEL_HOST_MODEL_H
