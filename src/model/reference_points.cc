#include "model/reference_points.h"

#include "base/logging.h"
#include "base/strings.h"

namespace dsa::model {

const std::vector<RefPoint> &
referencePoints()
{
    // Approximate published numbers scaled to 28 nm / 1 GHz:
    //  - Softbrain [65]: ISCA'17, 8-tile fabric; per-tile numbers
    //    scaled from 55 nm.
    //  - SPU [20]: MICRO'19, 28 nm-class estimate.
    //  - DianNao [12]: 65 nm, 3.02 mm^2 / 485 mW -> ~(65/28)^2 area
    //    scaling and Vdd-adjusted power.
    //  - SCNN [70]: 16 nm tile, scaled *up* to 28 nm; we anchor a
    //    single-tile-equivalent configuration comparable to the
    //    DSAGEN_SparseCNN fabric size.
    static const std::vector<RefPoint> points = {
        {"Softbrain", {0.58, 160.0}, false},
        {"SPU", {1.36, 330.0}, false},
        {"Triggered", {0.88, 240.0}, false},
        {"MAERI", {0.65, 180.0}, false},
        {"REVEL", {0.78, 210.0}, false},
        {"DianNao", {0.56, 213.0}, true},
        {"SCNN", {0.92, 280.0}, true},
    };
    return points;
}

const RefPoint &
referencePoint(const std::string &name)
{
    for (const auto &p : referencePoints())
        if (p.name == name)
            return p;
    std::vector<std::string> valid;
    for (const auto &p : referencePoints())
        valid.push_back(p.name);
    DSA_FATAL("unknown reference point '", name, "' ",
              suggestName(name, valid));
}

} // namespace dsa::model
