/**
 * @file
 * Technology-scaled area/power reference points for prior accelerators
 * (Fig. 15 "Scaled" bars). As in the paper, these come from published
 * numbers scaled to the 28 nm process; they are approximate anchors,
 * not synthesis results (the paper itself notes this comparison "is
 * not particularly accurate due to technology differences").
 */

#ifndef DSA_MODEL_REFERENCE_POINTS_H
#define DSA_MODEL_REFERENCE_POINTS_H

#include <string>
#include <vector>

#include "model/cost.h"

namespace dsa::model {

/** One published accelerator design point. */
struct RefPoint
{
    std::string name;
    ComponentCost cost;
    /** Fixed-function domain-specific design (vs programmable). */
    bool isDsa = false;
};

/** All reference points used by the Fig. 15 comparison. */
const std::vector<RefPoint> &referencePoints();

/** Lookup by name; fatal if missing. */
const RefPoint &referencePoint(const std::string &name);

} // namespace dsa::model

#endif // DSA_MODEL_REFERENCE_POINTS_H
