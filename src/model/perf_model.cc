#include "model/perf_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/logging.h"

namespace dsa::model {

using adg::Adg;
using adg::NodeId;
using dfg::Region;
using dfg::Stream;
using dfg::StreamKind;
using dfg::VertexKind;

namespace {

/** Cycles a scalar-issued (fallback) stream costs per element. */
constexpr double kScalarElementCycles = 4.0;

} // namespace

PerfEstimate
estimatePerformance(const dfg::DecoupledProgram &prog,
                    const mapper::Schedule &sched, const Adg &adg)
{
    PerfEstimate est;
    est.legal = sched.cost.legal();
    if (!est.legal) {
        est.cycles = 1e30;
        return est;
    }
    const auto &ctrl = adg.control();

    // Phase ordering: sequential scripts, via-memory forwards, and
    // region-level dependences all serialize region execution.
    bool serialTotal = prog.sequential;
    for (const auto &f : prog.forwards)
        serialTotal |= f.viaMemory;
    for (const auto &r : prog.regions)
        serialTotal |= !r.dependsOn.empty();

    double maxRegionCycles = 0;
    double sumRegionCycles = 0;

    for (size_t r = 0; r < prog.regions.size(); ++r) {
        const Region &reg = prog.regions[r];
        const auto &rs = sched.regions[r];
        RegionPerf rp;
        rp.instances = reg.instancesEstimate();
        rp.reissues = reg.reissues();

        if (reg.serialized) {
            // Control-core execution: each logical iteration costs the
            // serial dependence latency.
            rp.iiEff = reg.serialDependenceLatency;
            rp.activity = 1.0 / std::max(1, reg.serialDependenceLatency);
            rp.cycles = static_cast<double>(rp.instances) * rp.reissues *
                        std::max(1, reg.serialDependenceLatency);
            est.regions.push_back(rp);
            sumRegionCycles += rp.cycles;
            maxRegionCycles = std::max(maxRegionCycles, rp.cycles);
            est.dynInsts += static_cast<int64_t>(reg.dfg.numInstructions()) *
                            rp.instances * rp.reissues;
            continue;
        }

        // Dependence-limited II: the schedule's II plus accumulator
        // feedback latency (a chain of dependent accumulations cannot
        // fire faster than the accumulate op's latency).
        int accLat = 1;
        for (const auto &vx : reg.dfg.vertices())
            if (vx.isAccumulate())
                accLat = std::max(accLat, opInfo(vx.op).latency);
        rp.iiEff = std::max<double>(sched.cost.maxIi, accLat);

        // Pipeline-limited cycles per issue.
        double cPipe = static_cast<double>(rp.instances) * rp.iiEff;

        // Memory-bandwidth-limited cycles per issue.
        std::map<NodeId, double> bytesPerMem;
        std::map<NodeId, double> indirectElemsPerMem;
        double cFallback = 0;
        for (const Stream &st : reg.streams) {
            if (!st.touchesMemory())
                continue;
            if (st.scalarFallback) {
                cFallback += static_cast<double>(st.numElements()) *
                             kScalarElementCycles / ctrl.cmdIssueIpc;
                continue;
            }
            NodeId m = rs.streamMap[st.id];
            if (m == adg::kInvalidNode)
                continue;
            bytesPerMem[m] += static_cast<double>(st.trafficBytes());
            if (st.needsIndirect())
                indirectElemsPerMem[m] +=
                    static_cast<double>(st.numElements());
        }
        double cMem = 0;
        for (const auto &[m, bytes] : bytesPerMem) {
            const auto &mem = adg.node(m).mem();
            cMem = std::max(cMem, bytes / std::max(1, mem.widthBytes));
        }
        for (const auto &[m, elems] : indirectElemsPerMem) {
            const auto &mem = adg.node(m).mem();
            // Banked gather: at most one random element per bank/cycle.
            cMem = std::max(cMem, elems / std::max(1, mem.numBanks));
        }

        // Pipeline fill/drain: deepest arrival time in the schedule.
        double drain = 0;
        for (int t : rs.vertexTime)
            drain = std::max(drain, static_cast<double>(t));

        double cIssue = std::max({cPipe, cMem, cFallback});
        rp.bwRatio = cIssue > 0 ? std::min(1.0, cPipe / std::max(cMem, 1e-9))
                                : 1.0;
        if (cMem <= 0)
            rp.bwRatio = 1.0;
        rp.activity = cIssue > 0 ? cPipe / cIssue / rp.iiEff : 1.0;

        // Control-core command overhead per issue.
        int memStreams = 0;
        for (const Stream &st : reg.streams)
            if (st.touchesMemory() || st.kind == StreamKind::Const ||
                st.kind == StreamKind::Iota)
                ++memStreams;
        rp.cmdOverhead = memStreams / std::max(0.1, ctrl.cmdIssueIpc) +
                         ctrl.cmdLatency;

        if (reg.drainBetweenReissues || prog.sequential) {
            // Sequential phases / fenced updates drain between issues.
            rp.cycles = static_cast<double>(rp.reissues) *
                        (cIssue + rp.cmdOverhead + drain);
        } else {
            // Re-issues overlap; command issue pipelines with compute.
            rp.cycles = static_cast<double>(rp.reissues) *
                            std::max(cIssue, rp.cmdOverhead) +
                        drain + ctrl.cmdLatency;
        }
        est.regions.push_back(rp);
        sumRegionCycles += rp.cycles;
        maxRegionCycles = std::max(maxRegionCycles, rp.cycles);
        est.dynInsts += static_cast<int64_t>(reg.dfg.numInstructions()) *
                        rp.instances * rp.reissues;
    }

    if (prog.sequential) {
        // Strict phase script: issues never overlap.
        est.cycles = sumRegionCycles;
    } else {
        // Dependence DAG: a region starts when its dependences (and
        // via-memory forward producers) complete; independent regions
        // overlap. Regions are already in a valid topological order.
        std::vector<double> completion(prog.regions.size(), 0.0);
        double total = 0;
        for (size_t r = 0; r < prog.regions.size(); ++r) {
            double start = 0;
            for (int dep : prog.regions[r].dependsOn)
                start = std::max(start, completion[dep]);
            for (const auto &f : prog.forwards)
                if (f.viaMemory && f.dstRegion == static_cast<int>(r))
                    start = std::max(start, completion[f.srcRegion]);
            completion[r] = start + est.regions[r].cycles;
            total = std::max(total, completion[r]);
        }
        est.cycles = total;
    }
    (void)serialTotal;
    (void)maxRegionCycles;
    (void)sumRegionCycles;

    // Reconfiguration between config groups.
    double reconfig = static_cast<double>(adg.aliveNodes().size()) * 48 /
                      std::max(1, ctrl.configBitsPerCycle);
    if (prog.sequential) {
        int switches = 0;
        int cur = prog.phaseScript.empty()
            ? 0 : prog.regions[prog.phaseScript[0].region].configGroup;
        for (const auto &e : prog.phaseScript) {
            int g = prog.regions[e.region].configGroup;
            if (g != cur) {
                ++switches;
                cur = g;
            }
        }
        est.cycles += switches * reconfig;
    } else {
        int maxGroup = 0;
        for (const auto &r : prog.regions)
            maxGroup = std::max(maxGroup, r.configGroup);
        est.cycles += maxGroup * reconfig;
    }
    est.cycles = std::max(est.cycles, 1.0);
    est.ipc = static_cast<double>(est.dynInsts) / est.cycles;
    return est;
}

} // namespace dsa::model
