/**
 * @file
 * Analytical power/area regression model (§V-C): per-component-type
 * linear models fit by least squares against a sampled synthesis
 * dataset (our synthesis oracle stands in for Synopsys DC; see
 * DESIGN.md §1). The DSE uses this model because real synthesis is far
 * too slow for the exploration loop.
 *
 * By construction the model predicts *standalone component* costs; it
 * does not see the whole-fabric integration overhead, reproducing the
 * estimated-vs-synthesized gap the paper reports in Fig. 15.
 */

#ifndef DSA_MODEL_REGRESSION_H
#define DSA_MODEL_REGRESSION_H

#include <vector>

#include "adg/adg.h"
#include "model/cost.h"

namespace dsa::model {

/**
 * Ridge-regularized least squares: solve for w minimizing
 * ||Xw - y||^2 + lambda ||w||^2.
 */
std::vector<double> leastSquares(const std::vector<std::vector<double>> &X,
                                 const std::vector<double> &y,
                                 double lambda = 1e-6);

/** Per-kind linear area/power predictors. */
class AreaPowerModel
{
  public:
    /** Fit against the synthesis oracle's sampled dataset. */
    static AreaPowerModel fit();

    /** The process-wide fitted model (fit once, reused). */
    static const AreaPowerModel &instance();

    /** Predict one node (switch fan-in/out read from the graph). */
    ComponentCost node(const adg::Adg &adg, adg::NodeId id) const;

    /** Predict a whole fabric: node sum + wires + control core. */
    ComponentCost fabric(const adg::Adg &adg) const;

    /** Mean absolute relative error vs the oracle on held-out samples. */
    double validationError() const { return validationError_; }

  private:
    struct Lin
    {
        std::vector<double> wArea;
        std::vector<double> wPower;

        ComponentCost
        predict(const std::vector<double> &f) const
        {
            ComponentCost c;
            for (size_t i = 0; i < f.size(); ++i) {
                c.areaMm2 += wArea[i] * f[i];
                c.powerMw += wPower[i] * f[i];
            }
            return c;
        }
    };

    Lin pe_, sw_, mem_, sync_, delay_;
    double validationError_ = 0.0;
};

} // namespace dsa::model

#endif // DSA_MODEL_REGRESSION_H
