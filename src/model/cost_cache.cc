#include "model/cost_cache.h"

#include "adg/fingerprint.h"
#include "base/hashing.h"
#include "base/logging.h"
#include "model/synth_oracle.h"

namespace dsa::model {

namespace {

/**
 * Flyweight signature of one component: kind + parameters, plus
 * fan-in/out for switches, whose predictor reads the degrees. Node
 * identity deliberately excluded — that is the point of the table.
 */
uint64_t
componentSignature(const adg::Adg &adg, adg::NodeId id)
{
    const adg::AdgNode &n = adg.node(id);
    uint64_t h = adg::nodeParamHash(n);
    if (n.kind == adg::NodeKind::Switch) {
        h = hashCombine(h, static_cast<uint64_t>(adg.inEdges(id).size()));
        h = hashCombine(h, static_cast<uint64_t>(adg.outEdges(id).size()));
    }
    return h;
}

} // namespace

ComponentCost
ComponentCostMemo::nodeCost(const adg::Adg &adg, adg::NodeId id,
                            const AreaPowerModel &model)
{
    uint64_t sig = componentSignature(adg, id);
    Shard &shard = shards_[sig % kShards];
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.costs.find(sig);
        if (it != shard.costs.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Predict outside the lock; the predictor is deterministic, so a
    // racy duplicate compute inserts the identical doubles.
    misses_.fetch_add(1, std::memory_order_relaxed);
    ComponentCost c = model.node(adg, id);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.costs.emplace(sig, c);
    return c;
}

CostMemoStats
ComponentCostMemo::stats() const
{
    CostMemoStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    return s;
}

ComponentCost
fabricMemo(const AreaPowerModel &model, const adg::Adg &adg,
           ComponentCostMemo &memo)
{
    // Mirror AreaPowerModel::fabric() term for term and in order —
    // float addition is order-sensitive, and the totals must be
    // bit-identical to the oracle's.
    ComponentCost total;
    for (adg::NodeId id : adg.aliveNodes())
        total += memo.nodeCost(adg, id, model);
    for (adg::EdgeId e : adg.aliveEdges()) {
        double w = adg.edge(e).widthBits / 64.0;
        total.areaMm2 += 40.0 * w / 1e6;
        total.powerMw += 0.015 * w;
    }
    total += controlCoreCost();
    return total;
}

void
IncrementalFabricCost::bind(const adg::Adg &parent,
                            const AreaPowerModel &model,
                            ComponentCostMemo &memo)
{
    model_ = &model;
    memo_ = &memo;
    parent_ = parent;
    parentAlive_.assign(static_cast<size_t>(parent.nodeIdBound()), 0);
    parentNodeCost_.assign(static_cast<size_t>(parent.nodeIdBound()), {});
    for (adg::NodeId id : parent.aliveNodes()) {
        parentAlive_[static_cast<size_t>(id)] = 1;
        parentNodeCost_[static_cast<size_t>(id)] =
            memo.nodeCost(parent, id, model);
    }
    bound_ = true;
}

ComponentCost
IncrementalFabricCost::price(const adg::Adg &child) const
{
    DSA_ASSERT(bound_, "price() before bind()");
    // Same canonical walk as fabric(); only the per-node cost *lookup*
    // is incremental. A node is reusable when it exists live in the
    // parent with identical parameters (and, for switches, identical
    // degrees — the predictor reads them). IDs are never reused within
    // one Adg lineage, so an ID match really is the same component.
    ComponentCost total;
    for (adg::NodeId id : child.aliveNodes()) {
        const auto idx = static_cast<size_t>(id);
        const adg::AdgNode &cn = child.node(id);
        bool reusable = idx < parentAlive_.size() && parentAlive_[idx];
        if (reusable) {
            const adg::AdgNode &pn = parent_.node(id);
            reusable = pn.kind == cn.kind && pn.props == cn.props &&
                       (cn.kind != adg::NodeKind::Switch ||
                        (parent_.inEdges(id).size() ==
                             child.inEdges(id).size() &&
                         parent_.outEdges(id).size() ==
                             child.outEdges(id).size()));
        }
        total += reusable ? parentNodeCost_[idx]
                          : memo_->nodeCost(child, id, *model_);
    }
    for (adg::EdgeId e : child.aliveEdges()) {
        double w = child.edge(e).widthBits / 64.0;
        total.areaMm2 += 40.0 * w / 1e6;
        total.powerMw += 0.015 * w;
    }
    total += controlCoreCost();
    return total;
}

} // namespace dsa::model
