#include "model/synth_oracle.h"

#include <cmath>

#include "base/logging.h"

namespace dsa::model {

using adg::AdgNode;
using adg::MemKind;
using adg::NodeKind;
using adg::Scheduling;
using adg::Sharing;

namespace {

constexpr double kUm2PerMm2 = 1e6;

/** Deterministic +/-3% "process noise" keyed by a parameter hash. */
double
noise(uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ull;
    key ^= key >> 33;
    double unit = static_cast<double>(key & 0xFFFF) / 65535.0;  // [0,1]
    return 1.0 + (unit - 0.5) * 0.06;
}

/** Width scaling: cost grows slightly super-linearly with bitwidth. */
double
widthFactor(int bits)
{
    return std::pow(bits / 64.0, 1.05);
}

} // namespace

ComponentCost
fuClassCost(FuClass cls, int bits)
{
    // um^2 / mW at 64-bit.
    double a = 0, p = 0;
    switch (cls) {
      case FuClass::IntAlu: a = 800;   p = 0.40; break;
      case FuClass::IntMul: a = 5500;  p = 2.50; break;
      case FuClass::IntDiv: a = 8000;  p = 3.00; break;
      case FuClass::FpAdd:  a = 4200;  p = 2.00; break;
      case FuClass::FpMul:  a = 7800;  p = 3.50; break;
      case FuClass::FpDiv:  a = 14000; p = 5.00; break;
      case FuClass::Special:a = 3000;  p = 1.50; break;
      default: DSA_PANIC("bad fu class");
    }
    double w = widthFactor(bits);
    return {a * w / kUm2PerMm2, p * w};
}

namespace {

ComponentCost
peCost(const AdgNode &n)
{
    const auto &pe = n.pe();
    // One (multi-function) FU per required class; functions within a
    // class share hardware (§V-C's multi-function FU optimization).
    bool cls[kNumFuClasses] = {};
    for (OpCode op : pe.ops.toVector())
        cls[static_cast<int>(opInfo(op).fuClass)] = true;
    ComponentCost fu;
    for (int i = 0; i < kNumFuClasses; ++i)
        if (cls[i])
            fu += fuClassCost(static_cast<FuClass>(i), pe.datapathBits);
    if (pe.decomposable)
        fu = fu.scaled(1.15);  // lane-split muxing

    double w = widthFactor(pe.datapathBits);
    ComponentCost c;
    c.areaMm2 = 600 * w / kUm2PerMm2;        // issue/control base
    c.powerMw = 0.3 * w;
    c += fu;
    // Delay FIFOs on each of up to 3 inputs (static PEs).
    if (pe.sched == Scheduling::Static) {
        double fifo = 120.0 * pe.delayFifoDepth * (pe.datapathBits / 64.0);
        c.areaMm2 += 3 * fifo / kUm2PerMm2;
        c.powerMw += 3 * fifo * 0.0004;
    } else {
        // Dataflow firing: per-input operand buffers with presence
        // tracking (instead of delay FIFOs) plus ready-check logic
        // that scales with the instruction window.
        double window = std::max(1, pe.maxInsts);
        c.areaMm2 *= 1.35;
        c.powerMw *= 1.40;
        double opBuf = 140.0 * 6 * (pe.datapathBits / 64.0);
        c.areaMm2 += 3 * opBuf / kUm2PerMm2;
        c.powerMw += 3 * opBuf * 0.0005;
        c.areaMm2 += 420.0 * window / kUm2PerMm2;
        c.powerMw += 0.18 * window;
        if (pe.streamJoin) {
            c.areaMm2 += 800.0 / kUm2PerMm2;
            c.powerMw += 0.35;
        }
    }
    if (pe.sharing == Sharing::Shared) {
        c.areaMm2 += 500.0 * pe.maxInsts / kUm2PerMm2;
        c.powerMw += 0.22 * pe.maxInsts;
    }
    c.areaMm2 += 260.0 * pe.regFileSize * w / kUm2PerMm2;
    c.powerMw += 0.10 * pe.regFileSize * w;
    return c;
}

ComponentCost
switchCost(const AdgNode &n, int fanIn, int fanOut)
{
    const auto &sw = n.sw();
    double w = sw.datapathBits / 64.0;
    fanIn = std::max(fanIn, 1);
    fanOut = std::max(fanOut, 1);
    ComponentCost c;
    c.areaMm2 = (55.0 * fanIn * fanOut * w + 300.0 * w * fanOut) /
                kUm2PerMm2;
    c.powerMw = 0.018 * fanIn * fanOut * w + 0.10 * w * fanOut;
    if (sw.sched == Scheduling::Dynamic)
        c = c.scaled(1.6);  // credit/flow-control logic
    if (sw.decomposable)
        c = c.scaled(1.3);  // sub-word routing
    if (sw.maxRoutes > 1) {
        c.areaMm2 += 120.0 * sw.maxRoutes / kUm2PerMm2;
        c.powerMw += 0.04 * sw.maxRoutes;
    }
    return c;
}

ComponentCost
memCost(const AdgNode &n)
{
    const auto &m = n.mem();
    ComponentCost c;
    if (m.kind == MemKind::Main) {
        // Interface + request queues only; DRAM is off-fabric.
        c.areaMm2 = 20000.0 / kUm2PerMm2;
        c.powerMw = 9.0;
    } else {
        c.areaMm2 = 1.0 * static_cast<double>(m.capacityBytes) / kUm2PerMm2;
        c.powerMw = 0.0009 * static_cast<double>(m.capacityBytes);
        c.areaMm2 += 800.0 * m.numBanks / kUm2PerMm2;
        c.powerMw += 0.25 * m.numBanks;
    }
    c.areaMm2 += 2500.0 * m.numStreamEngines / kUm2PerMm2;
    c.powerMw += 1.1 * m.numStreamEngines;
    if (m.indirect) {
        c.areaMm2 += 3500.0 / kUm2PerMm2;
        c.powerMw += 1.6;
    }
    if (m.atomicUpdate) {
        c.areaMm2 += 1500.0 * std::max(1, m.numBanks) / kUm2PerMm2;
        c.powerMw += 0.7 * std::max(1, m.numBanks);
    }
    // Bandwidth-proportional wiring.
    c.areaMm2 += 30.0 * m.widthBytes / kUm2PerMm2;
    c.powerMw += 0.012 * m.widthBytes;
    return c;
}

ComponentCost
syncCost(const AdgNode &n)
{
    const auto &s = n.sync();
    double bits = static_cast<double>(s.depth) * s.lanes * s.widthBits;
    ComponentCost c;
    c.areaMm2 = (0.9 * bits + 700.0) / kUm2PerMm2;
    c.powerMw = 0.00035 * bits + 0.30;
    return c;
}

ComponentCost
delayCost(const AdgNode &n)
{
    const auto &d = n.delay();
    double bits = static_cast<double>(d.depth) * d.widthBits;
    ComponentCost c;
    c.areaMm2 = (0.9 * bits + 250.0) / kUm2PerMm2;
    c.powerMw = 0.00035 * bits + 0.10;
    return c;
}

uint64_t
nodeHash(const AdgNode &n)
{
    uint64_t h = static_cast<uint64_t>(n.kind) * 1315423911u;
    switch (n.kind) {
      case NodeKind::Pe:
        h ^= n.pe().ops.raw() * 2654435761u + n.pe().datapathBits +
             (n.pe().sched == Scheduling::Dynamic ? 77 : 0) +
             (n.pe().sharing == Sharing::Shared ? n.pe().maxInsts : 0);
        break;
      case NodeKind::Switch:
        h ^= n.sw().datapathBits * 31 + n.sw().maxRoutes;
        break;
      case NodeKind::Memory:
        h ^= static_cast<uint64_t>(n.mem().capacityBytes) * 7 +
             n.mem().numBanks;
        break;
      case NodeKind::Sync:
        h ^= static_cast<uint64_t>(n.sync().depth) * 13 + n.sync().lanes;
        break;
      case NodeKind::Delay:
        h ^= static_cast<uint64_t>(n.delay().depth) * 17;
        break;
    }
    return h;
}

} // namespace

ComponentCost
synthSwitchSample(const adg::SwitchProps &props, int fanIn, int fanOut)
{
    adg::AdgNode n;
    n.kind = NodeKind::Switch;
    n.props = props;
    return switchCost(n, fanIn, fanOut)
        .scaled(noise(nodeHash(n) + fanIn * 131 + fanOut * 17));
}

ComponentCost
synthComponent(const adg::AdgNode &node)
{
    ComponentCost c;
    switch (node.kind) {
      case NodeKind::Pe: c = peCost(node); break;
      // Fan-in/out unknown standalone; assume the 4x4 sample point.
      case NodeKind::Switch: c = switchCost(node, 4, 4); break;
      case NodeKind::Memory: c = memCost(node); break;
      case NodeKind::Sync: c = syncCost(node); break;
      case NodeKind::Delay: c = delayCost(node); break;
    }
    return c.scaled(noise(nodeHash(node)));
}

ComponentCost
controlCoreCost()
{
    // In-order RISC-V control core with stream-command unit.
    return {0.052, 26.0};
}

ComponentCost
synthFabric(const adg::Adg &adg, double integrationOverhead)
{
    ComponentCost total;
    for (adg::NodeId id : adg.aliveNodes()) {
        const AdgNode &n = adg.node(id);
        if (n.kind == NodeKind::Switch) {
            int fi = static_cast<int>(adg.inEdges(id).size());
            int fo = static_cast<int>(adg.outEdges(id).size());
            total += switchCost(n, fi, fo).scaled(noise(nodeHash(n)));
        } else {
            total += synthComponent(n);
        }
    }
    // Wires: a small per-edge cost.
    for (adg::EdgeId e : adg.aliveEdges()) {
        double w = adg.edge(e).widthBits / 64.0;
        total.areaMm2 += 40.0 * w / 1e6;
        total.powerMw += 0.015 * w;
    }
    total += controlCoreCost();
    return total.scaled(1.0 + integrationOverhead);
}

} // namespace dsa::model
