#include "model/host_model.h"

#include <algorithm>

namespace dsa::model {

double
estimateHostCycles(const ir::InterpStats &stats, const HostParams &p)
{
    double arith = static_cast<double>(stats.arithOps);
    double mem = static_cast<double>(stats.loads + stats.stores);
    double total = arith + mem + static_cast<double>(stats.branches);
    double hostCycles = std::max({arith / p.aluPorts, mem / p.memPorts,
                                  total / p.issueWidth}) +
                        static_cast<double>(stats.branches) * p.branchCost;
    // Convert host cycles to accelerator-clock cycles.
    return hostCycles / p.clockRatio;
}

} // namespace dsa::model
