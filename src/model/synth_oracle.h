/**
 * @file
 * Synthetic synthesis oracle — the stand-in for the Synopsys DC + UMC
 * 28 nm flow the paper uses to build its power/area dataset (§V-C,
 * §VII; see DESIGN.md §1 for the substitution rationale).
 *
 * The oracle computes deterministic gate-level-style cost functions per
 * component, with parameter interactions and a small deterministic
 * "process noise" term, so that fitting a regression model against it
 * reproduces the paper's methodology: the regression is accurate per
 * component, while whole-fabric synthesis carries an extra integration
 * overhead (timing-closure buffers etc.) that the model does not see —
 * the 4–7% gap reported in Fig. 15.
 */

#ifndef DSA_MODEL_SYNTH_ORACLE_H
#define DSA_MODEL_SYNTH_ORACLE_H

#include "adg/adg.h"
#include "model/cost.h"

namespace dsa::model {

/** Per-FU-class area (um^2) and power (mW) at 28 nm / 1 GHz. */
ComponentCost fuClassCost(FuClass cls, int bits);

/** "Synthesize" one component standalone. */
ComponentCost synthComponent(const adg::AdgNode &node);

/**
 * "Synthesize" a switch sample with explicit fan-in/out (the dataset
 * for the regression model sweeps port counts; §V-C).
 */
ComponentCost synthSwitchSample(const adg::SwitchProps &props, int fanIn,
                                int fanOut);

/** Control-core cost (fixed; §V-D: not explored by DSE). */
ComponentCost controlCoreCost();

/**
 * "Synthesize" a whole fabric: component sum + control core, plus the
 * integration overhead (default 5.5%) that whole-design timing closure
 * adds over standalone component synthesis.
 */
ComponentCost synthFabric(const adg::Adg &adg,
                          double integrationOverhead = 0.055);

} // namespace dsa::model

#endif // DSA_MODEL_SYNTH_ORACLE_H
