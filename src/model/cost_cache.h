/**
 * @file
 * Memoized and incremental area/power costing for DSE.
 *
 * `AreaPowerModel::node()` rebuilds a feature vector and runs the
 * linear predictor on every call, and `fabric()` walks every component
 * of every candidate — although a DSE step changes at most a handful
 * of components and the distinct parameter signatures across a whole
 * run number in the dozens. Two fast paths exploit that:
 *
 *  - `ComponentCostMemo` is a flyweight table mapping a component's
 *    parameter signature (kind + props, plus fan-in/out for switches,
 *    whose predictor reads degrees) to its exact predicted cost.
 *
 *  - `IncrementalFabricCost` prices a mutated child against a bound
 *    parent design: per-node costs are reused for nodes whose
 *    signature is unchanged and re-predicted only for changed ones.
 *
 * Bit-identity: both paths *re-sum in exactly `fabric()`'s order*
 * (live nodes ascending, then live edges, then the control core)
 * rather than adjusting the parent total by a delta — floating-point
 * addition is not associative, so a true ± delta would drift from the
 * oracle by ulps and break the cached-vs-uncached equivalence
 * guarantee. The memoized values themselves are exact (a cached
 * predict() output is the same double the oracle would produce), so
 * every total is bit-identical to `AreaPowerModel::fabric()`. The
 * full walk stays available as a checked oracle behind
 * `DseOptions::checkCostOracle`.
 */

#ifndef DSA_MODEL_COST_CACHE_H
#define DSA_MODEL_COST_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "adg/adg.h"
#include "model/cost.h"
#include "model/regression.h"

namespace dsa::model {

/** Hit/miss counters for the flyweight table. */
struct CostMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/**
 * Flyweight table: parameter signature -> exact predicted cost.
 * Sharded + mutex-striped so concurrent feasibility checks on pool
 * workers can share one table. predict() is deterministic, so a racy
 * duplicate compute inserts the identical value.
 */
class ComponentCostMemo
{
  public:
    /** Cost of node @p id of @p adg, memoized by parameter signature. */
    ComponentCost nodeCost(const adg::Adg &adg, adg::NodeId id,
                           const AreaPowerModel &model);

    CostMemoStats stats() const;

  private:
    static constexpr size_t kShards = 16;
    struct Shard
    {
        std::mutex mu;
        std::unordered_map<uint64_t, ComponentCost> costs;
    };
    Shard shards_[kShards];
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

/**
 * Full-fabric cost through the memo, bit-identical to
 * `model.fabric(adg)` (same summation order, exact memoized terms).
 */
ComponentCost fabricMemo(const AreaPowerModel &model, const adg::Adg &adg,
                         ComponentCostMemo &memo);

/**
 * Parent-relative pricer: bind() snapshots a design's per-node costs;
 * price() then costs a mutated child, re-predicting only nodes whose
 * parameter signature differs from the parent's (O(changed) predictor
 * calls, O(V+E) exact re-summation).
 */
class IncrementalFabricCost
{
  public:
    /** Snapshot @p parent (copied; later graph mutation is safe). */
    void bind(const adg::Adg &parent, const AreaPowerModel &model,
              ComponentCostMemo &memo);

    bool bound() const { return bound_; }

    /** Exact fabric cost of @p child (see class comment). */
    ComponentCost price(const adg::Adg &child) const;

  private:
    bool bound_ = false;
    const AreaPowerModel *model_ = nullptr;
    ComponentCostMemo *memo_ = nullptr;
    adg::Adg parent_;
    /** Parent per-node cost, indexed by NodeId (live nodes only). */
    std::vector<ComponentCost> parentNodeCost_;
    std::vector<char> parentAlive_;
};

} // namespace dsa::model

#endif // DSA_MODEL_COST_CACHE_H
