/**
 * @file
 * Analytical performance model (§V-B): IPC = #insts x activity ratio.
 * The activity ratio is limited by (a) memory bandwidth — requested
 * vs supplied bytes per cycle per memory, including banked indirect
 * throughput, (b) dependences — accumulate/recurrence latency and the
 * schedule's initiation interval, and (c) scalar-issued fallback
 * streams throttled to the control core's rate. Region importance is
 * weighted by execution frequency (instances x re-issues).
 */

#ifndef DSA_MODEL_PERF_MODEL_H
#define DSA_MODEL_PERF_MODEL_H

#include <vector>

#include "adg/adg.h"
#include "dfg/program.h"
#include "mapper/schedule.h"

namespace dsa::model {

/** Per-region performance breakdown. */
struct RegionPerf
{
    double cycles = 0;         ///< total cycles across re-issues
    double iiEff = 1;          ///< effective initiation interval
    double bwRatio = 1;        ///< bandwidth activity ratio (<=1)
    double activity = 1;       ///< overall activity ratio (<=1)
    int64_t instances = 0;     ///< DFG fires per issue
    int64_t reissues = 1;
    double cmdOverhead = 0;    ///< control-core stream-command cycles
};

/** Whole-program estimate. */
struct PerfEstimate
{
    bool legal = false;        ///< schedule was legal
    double cycles = 0;
    double ipc = 0;
    int64_t dynInsts = 0;
    std::vector<RegionPerf> regions;
};

/**
 * Estimate the performance of @p prog mapped by @p sched on @p adg.
 * An illegal schedule yields legal=false and infinite cycles.
 */
PerfEstimate estimatePerformance(const dfg::DecoupledProgram &prog,
                                 const mapper::Schedule &sched,
                                 const adg::Adg &adg);

} // namespace dsa::model

#endif // DSA_MODEL_PERF_MODEL_H
