/**
 * @file
 * Cost units shared by the synthesis oracle, the regression model,
 * and the DSE objective: silicon area in mm^2 and power in mW,
 * calibrated to a 28 nm-class process at 1 GHz (§VII).
 */

#ifndef DSA_MODEL_COST_H
#define DSA_MODEL_COST_H

namespace dsa::model {

/** Area/power of one component or a whole fabric. */
struct ComponentCost
{
    double areaMm2 = 0.0;
    double powerMw = 0.0;

    ComponentCost &
    operator+=(const ComponentCost &o)
    {
        areaMm2 += o.areaMm2;
        powerMw += o.powerMw;
        return *this;
    }

    ComponentCost
    operator+(const ComponentCost &o) const
    {
        ComponentCost r = *this;
        r += o;
        return r;
    }

    ComponentCost
    scaled(double k) const
    {
        return {areaMm2 * k, powerMw * k};
    }
};

} // namespace dsa::model

#endif // DSA_MODEL_COST_H
