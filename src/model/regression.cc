#include "model/regression.h"

#include <cmath>

#include "base/logging.h"
#include "base/rng.h"
#include "model/synth_oracle.h"

namespace dsa::model {

using adg::Adg;
using adg::AdgNode;
using adg::DelayProps;
using adg::MemKind;
using adg::MemProps;
using adg::NodeKind;
using adg::PeProps;
using adg::Scheduling;
using adg::Sharing;
using adg::SwitchProps;
using adg::SyncProps;

std::vector<double>
leastSquares(const std::vector<std::vector<double>> &X,
             const std::vector<double> &y, double lambda)
{
    DSA_ASSERT(!X.empty() && X.size() == y.size(), "bad regression data");
    size_t n = X[0].size();
    // Normal equations: (X'X + lambda I) w = X'y.
    std::vector<std::vector<double>> A(n, std::vector<double>(n + 1, 0.0));
    for (size_t r = 0; r < X.size(); ++r) {
        DSA_ASSERT(X[r].size() == n, "ragged design matrix");
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j)
                A[i][j] += X[r][i] * X[r][j];
            A[i][n] += X[r][i] * y[r];
        }
    }
    for (size_t i = 0; i < n; ++i)
        A[i][i] += lambda;
    // Gaussian elimination with partial pivoting.
    for (size_t col = 0; col < n; ++col) {
        size_t piv = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(A[r][col]) > std::fabs(A[piv][col]))
                piv = r;
        std::swap(A[col], A[piv]);
        double d = A[col][col];
        if (std::fabs(d) < 1e-12)
            continue;
        for (size_t j = col; j <= n; ++j)
            A[col][j] /= d;
        for (size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            double f = A[r][col];
            for (size_t j = col; j <= n; ++j)
                A[r][j] -= f * A[col][j];
        }
    }
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i)
        w[i] = A[i][n];
    return w;
}

namespace {

double
widthFactor(int bits)
{
    return std::pow(bits / 64.0, 1.05);
}

std::vector<double>
peFeatures(const PeProps &p)
{
    double w = widthFactor(p.datapathBits);
    bool cls[kNumFuClasses] = {};
    for (OpCode op : p.ops.toVector())
        cls[static_cast<int>(opInfo(op).fuClass)] = true;
    std::vector<double> f;
    f.push_back(1.0);
    for (int i = 0; i < kNumFuClasses; ++i)
        f.push_back(cls[i] ? w : 0.0);
    bool dyn = p.sched == Scheduling::Dynamic;
    f.push_back(dyn ? w : 0.0);
    f.push_back(dyn ? static_cast<double>(std::max(1, p.maxInsts)) : 0.0);
    f.push_back(p.sharing == Sharing::Shared
                    ? static_cast<double>(p.maxInsts) : 0.0);
    f.push_back(!dyn ? p.delayFifoDepth * (p.datapathBits / 64.0) : 0.0);
    f.push_back(p.streamJoin ? 1.0 : 0.0);
    f.push_back(p.regFileSize * w);
    f.push_back(p.decomposable ? w : 0.0);
    // Interaction: dynamic scheduling scales the FU-side cost.
    int nCls = 0;
    for (int i = 0; i < kNumFuClasses; ++i)
        nCls += cls[i];
    f.push_back(dyn ? nCls * w : 0.0);
    f.push_back(p.decomposable ? nCls * w : 0.0);
    f.push_back((dyn && p.decomposable) ? nCls * w : 0.0);
    return f;
}

std::vector<double>
switchFeatures(const SwitchProps &p, int fanIn, int fanOut)
{
    double w = p.datapathBits / 64.0;
    bool dyn = p.sched == Scheduling::Dynamic;
    std::vector<double> f;
    f.push_back(1.0);
    f.push_back(fanIn * fanOut * w);
    f.push_back(fanOut * w);
    f.push_back(dyn ? fanIn * fanOut * w : 0.0);
    f.push_back(dyn ? fanOut * w : 0.0);
    f.push_back(p.decomposable ? fanIn * fanOut * w : 0.0);
    f.push_back((dyn && p.decomposable) ? fanIn * fanOut * w : 0.0);
    f.push_back(static_cast<double>(p.maxRoutes));
    return f;
}

std::vector<double>
memFeatures(const MemProps &p)
{
    std::vector<double> f;
    f.push_back(1.0);
    f.push_back(p.kind == MemKind::Main ? 1.0 : 0.0);
    f.push_back(p.kind == MemKind::Scratchpad
                    ? static_cast<double>(p.capacityBytes) : 0.0);
    f.push_back(static_cast<double>(p.numBanks));
    f.push_back(static_cast<double>(p.numStreamEngines));
    f.push_back(p.indirect ? 1.0 : 0.0);
    f.push_back(p.atomicUpdate ? p.numBanks : 0.0);
    f.push_back(static_cast<double>(p.widthBytes));
    return f;
}

std::vector<double>
syncFeatures(const SyncProps &p)
{
    return {1.0, static_cast<double>(p.depth) * p.lanes * p.widthBits};
}

std::vector<double>
delayFeatures(const DelayProps &p)
{
    return {1.0, static_cast<double>(p.depth) * p.widthBits};
}

} // namespace

AreaPowerModel
AreaPowerModel::fit()
{
    AreaPowerModel m;
    double errSum = 0;
    int errCnt = 0;

    auto fitKind = [&](auto sampler, auto featurizer, Lin &lin) {
        std::vector<std::vector<double>> X;
        std::vector<double> yA, yP;
        sampler([&](const auto &props, ComponentCost cost,
                    const std::vector<double> &feat) {
            X.push_back(feat);
            yA.push_back(cost.areaMm2);
            yP.push_back(cost.powerMw);
            (void)props;
        });
        lin.wArea = leastSquares(X, yA);
        lin.wPower = leastSquares(X, yP);
        for (size_t i = 0; i < X.size(); ++i) {
            ComponentCost pred = lin.predict(X[i]);
            if (yA[i] > 1e-9) {
                errSum += std::fabs(pred.areaMm2 - yA[i]) / yA[i];
                ++errCnt;
            }
        }
        (void)featurizer;
    };

    // PE dataset: sweep scheduling, sharing, widths, op mixes.
    fitKind(
        [&](auto emit) {
            OpSet mixes[] = {
                OpSet{OpCode::Add, OpCode::Sub, OpCode::CmpLT,
                      OpCode::Select, OpCode::Pass},
                OpSet{OpCode::Add, OpCode::Mul, OpCode::Acc},
                OpSet{OpCode::FAdd, OpCode::FMul, OpCode::FAcc},
                OpSet::allInteger(),
                OpSet::all(),
                OpSet{OpCode::Mul, OpCode::FMul},
                OpSet{OpCode::Add, OpCode::Div, OpCode::FSqrt},
            };
            for (const auto &ops : mixes) {
                for (int bits : {16, 32, 64}) {
                    for (int dyn = 0; dyn < 2; ++dyn) {
                        for (int sh = 0; sh < 2; ++sh) {
                            for (int depth : {2, 4, 8, 16}) {
                                for (int dec = 0; dec < 2; ++dec) {
                                    PeProps p;
                                    p.ops = ops;
                                    p.datapathBits = bits;
                                    p.sched = dyn ? Scheduling::Dynamic
                                                  : Scheduling::Static;
                                    p.sharing = sh ? Sharing::Shared
                                                   : Sharing::Dedicated;
                                    p.maxInsts = sh ? 8 : 1;
                                    p.delayFifoDepth = depth;
                                    p.streamJoin = dyn;
                                    p.decomposable = dec;
                                    p.minLaneBits = dec ? 8 : bits;
                                    AdgNode n;
                                    n.kind = NodeKind::Pe;
                                    n.props = p;
                                    emit(p, synthComponent(n),
                                         peFeatures(p));
                                }
                            }
                        }
                    }
                }
            }
        },
        peFeatures, m.pe_);

    // Switch dataset: sweep fan, width, protocol.
    fitKind(
        [&](auto emit) {
            for (int fi : {2, 4, 6, 8, 10, 12}) {
                for (int fo : {2, 4, 6, 8, 10, 12}) {
                    for (int bits : {32, 64}) {
                        for (int dyn = 0; dyn < 2; ++dyn) {
                            for (int dec = 0; dec < 2; ++dec) {
                                SwitchProps p;
                                p.datapathBits = bits;
                                p.sched = dyn ? Scheduling::Dynamic
                                              : Scheduling::Static;
                                p.decomposable = dec;
                                p.minLaneBits = dec ? 8 : bits;
                                emit(p, synthSwitchSample(p, fi, fo),
                                     switchFeatures(p, fi, fo));
                            }
                        }
                    }
                }
            }
        },
        [&](const SwitchProps &p) { return switchFeatures(p, 4, 4); },
        m.sw_);

    // Memory dataset.
    fitKind(
        [&](auto emit) {
            for (int64_t cap : {4096, 16384, 65536}) {
                for (int banks : {1, 4, 8}) {
                    for (int eng : {2, 4, 8}) {
                        for (int ind = 0; ind < 2; ++ind) {
                            MemProps p;
                            p.kind = MemKind::Scratchpad;
                            p.capacityBytes = cap;
                            p.numBanks = banks;
                            p.numStreamEngines = eng;
                            p.indirect = ind;
                            p.atomicUpdate = ind;
                            AdgNode n;
                            n.kind = NodeKind::Memory;
                            n.props = p;
                            emit(p, synthComponent(n), memFeatures(p));
                        }
                    }
                }
            }
            MemProps main;
            main.kind = MemKind::Main;
            main.numStreamEngines = 4;
            AdgNode n;
            n.kind = NodeKind::Memory;
            n.props = main;
            emit(main, synthComponent(n), memFeatures(main));
        },
        memFeatures, m.mem_);

    // Sync dataset.
    fitKind(
        [&](auto emit) {
            for (int depth : {2, 4, 8, 16, 32}) {
                for (int lanes : {1, 2, 4, 8}) {
                    SyncProps p;
                    p.depth = depth;
                    p.lanes = lanes;
                    AdgNode n;
                    n.kind = NodeKind::Sync;
                    n.props = p;
                    emit(p, synthComponent(n), syncFeatures(p));
                }
            }
        },
        syncFeatures, m.sync_);

    // Delay dataset.
    fitKind(
        [&](auto emit) {
            for (int depth : {2, 4, 8, 16, 32}) {
                DelayProps p;
                p.depth = depth;
                AdgNode n;
                n.kind = NodeKind::Delay;
                n.props = p;
                emit(p, synthComponent(n), delayFeatures(p));
            }
        },
        delayFeatures, m.delay_);

    m.validationError_ = errCnt ? errSum / errCnt : 0.0;
    return m;
}

const AreaPowerModel &
AreaPowerModel::instance()
{
    static const AreaPowerModel model = fit();
    return model;
}

ComponentCost
AreaPowerModel::node(const Adg &adg, adg::NodeId id) const
{
    const AdgNode &n = adg.node(id);
    switch (n.kind) {
      case NodeKind::Pe:
        return pe_.predict(peFeatures(n.pe()));
      case NodeKind::Switch: {
        int fi = static_cast<int>(adg.inEdges(id).size());
        int fo = static_cast<int>(adg.outEdges(id).size());
        return sw_.predict(switchFeatures(n.sw(), std::max(fi, 1),
                                          std::max(fo, 1)));
      }
      case NodeKind::Memory:
        return mem_.predict(memFeatures(n.mem()));
      case NodeKind::Sync:
        return sync_.predict(syncFeatures(n.sync()));
      case NodeKind::Delay:
        return delay_.predict(delayFeatures(n.delay()));
    }
    DSA_PANIC("bad node kind");
}

ComponentCost
AreaPowerModel::fabric(const Adg &adg) const
{
    ComponentCost total;
    for (adg::NodeId id : adg.aliveNodes())
        total += node(adg, id);
    for (adg::EdgeId e : adg.aliveEdges()) {
        double w = adg.edge(e).widthBits / 64.0;
        total.areaMm2 += 40.0 * w / 1e6;
        total.powerMw += 0.015 * w;
    }
    total += controlCoreCost();
    return total;
}

} // namespace dsa::model
