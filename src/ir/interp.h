/**
 * @file
 * Reference interpreter for the loop-nest IR. It is the golden model
 * the simulator's results are validated against, and its operation
 * counts drive the scalar host-core baseline model (the GCC -O3 Xeon
 * stand-in of §VII).
 */

#ifndef DSA_IR_INTERP_H
#define DSA_IR_INTERP_H

#include <map>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace dsa::ir {

/** Named arrays backing one kernel execution (64-bit canonical). */
class ArrayStore
{
  public:
    /** Allocate every array declared by @p kernel (zero-filled). */
    explicit ArrayStore(const KernelSource &kernel);
    ArrayStore() = default;

    bool has(const std::string &name) const;
    std::vector<Value> &data(const std::string &name);
    const std::vector<Value> &data(const std::string &name) const;

    Value get(const std::string &name, int64_t idx) const;
    void set(const std::string &name, int64_t idx, Value v);

  private:
    std::map<std::string, std::vector<Value>> arrays_;
};

/** Dynamic operation counts from one interpreted execution. */
struct InterpStats
{
    int64_t arithOps = 0;   ///< scalar ALU/FPU operations
    int64_t loads = 0;
    int64_t stores = 0;
    int64_t branches = 0;   ///< if / merge-loop decisions
    int64_t loopIters = 0;  ///< loop iterations entered
};

/**
 * Execute @p kernel over @p store.
 * @return dynamic statistics of the run.
 */
InterpStats interpret(const KernelSource &kernel, ArrayStore &store);

} // namespace dsa::ir

#endif // DSA_IR_INTERP_H
