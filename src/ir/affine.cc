#include "ir/affine.h"

namespace dsa::ir {

bool
AffineForm::isConstant() const
{
    for (const auto &[id, c] : coeffs)
        if (c != 0)
            return false;
    return true;
}

AffineForm
AffineForm::operator+(const AffineForm &o) const
{
    AffineForm r = *this;
    r.base += o.base;
    for (const auto &[id, c] : o.coeffs)
        r.coeffs[id] += c;
    return r;
}

AffineForm
AffineForm::operator-(const AffineForm &o) const
{
    AffineForm r = *this;
    r.base -= o.base;
    for (const auto &[id, c] : o.coeffs)
        r.coeffs[id] -= c;
    return r;
}

AffineForm
AffineForm::scaled(int64_t k) const
{
    AffineForm r = *this;
    r.base *= k;
    for (auto &[id, c] : r.coeffs)
        c *= k;
    return r;
}

std::optional<AffineForm>
analyzeAffine(const ExprPtr &e, const std::map<std::string, int64_t> &params)
{
    if (!e)
        return std::nullopt;
    switch (e->kind) {
      case ExprKind::Const: {
        AffineForm f;
        f.base = static_cast<int64_t>(e->constVal);
        return f;
      }
      case ExprKind::IterVar: {
        AffineForm f;
        f.coeffs[e->loopId] = 1;
        return f;
      }
      case ExprKind::Param: {
        auto it = params.find(e->name);
        if (it == params.end())
            return std::nullopt;
        AffineForm f;
        f.base = it->second;
        return f;
      }
      case ExprKind::Scalar:
      case ExprKind::Load:
        return std::nullopt;
      case ExprKind::Op: {
        auto a = analyzeAffine(e->a, params);
        if (!a)
            return std::nullopt;
        if (e->op == OpCode::Abs || e->op == OpCode::Pass)
            return std::nullopt;  // abs of affine is not affine in general
        auto b = analyzeAffine(e->b, params);
        if (!b)
            return std::nullopt;
        switch (e->op) {
          case OpCode::Add:
            return *a + *b;
          case OpCode::Sub:
            return *a - *b;
          case OpCode::Mul:
            if (a->isConstant())
                return b->scaled(a->base);
            if (b->isConstant())
                return a->scaled(b->base);
            return std::nullopt;
          case OpCode::Shl:
            if (b->isConstant() && b->base >= 0 && b->base < 62)
                return a->scaled(int64_t(1) << b->base);
            return std::nullopt;
          default:
            return std::nullopt;
        }
      }
    }
    return std::nullopt;
}

std::optional<IndirectForm>
analyzeIndirect(const ExprPtr &e,
                const std::map<std::string, int64_t> &params)
{
    if (!e)
        return std::nullopt;
    // Direct form: b[affine]
    if (e->kind == ExprKind::Load) {
        auto idx = analyzeAffine(e->index, params);
        if (!idx)
            return std::nullopt;
        IndirectForm f;
        f.idxArray = e->array;
        f.idxAffine = *idx;
        return f;
    }
    // b[affine] + const  or  const + b[affine]
    if (e->kind == ExprKind::Op &&
        (e->op == OpCode::Add || e->op == OpCode::Sub)) {
        auto tryPair = [&](const ExprPtr &loadSide,
                           const ExprPtr &constSide,
                           bool negate) -> std::optional<IndirectForm> {
            auto f = analyzeIndirect(loadSide, params);
            if (!f)
                return std::nullopt;
            auto c = analyzeAffine(constSide, params);
            if (!c || !c->isConstant())
                return std::nullopt;
            f->offset += negate ? -c->base : c->base;
            return f;
        };
        if (auto f = tryPair(e->a, e->b, e->op == OpCode::Sub))
            return f;
        if (e->op == OpCode::Add)
            if (auto f = tryPair(e->b, e->a, false))
                return f;
    }
    return std::nullopt;
}

} // namespace dsa::ir
