/**
 * @file
 * Scalar expressions of the loop-nest IR — the input-program
 * representation that substitutes for C-with-pragmas + LLVM in this
 * reproduction (see DESIGN.md §1). Expressions are immutable shared
 * trees over loop induction variables, kernel parameters, array loads,
 * scalar variables, and arithmetic.
 */

#ifndef DSA_IR_EXPR_H
#define DSA_IR_EXPR_H

#include <memory>
#include <string>

#include "isa/opcode.h"

namespace dsa::ir {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
    Const,     ///< integer or FP literal
    IterVar,   ///< induction variable of an enclosing loop
    Param,     ///< named kernel parameter (compile-time constant size)
    Scalar,    ///< named scalar variable (Let/Reduce target)
    Load,      ///< array[index]
    Op         ///< arithmetic / comparison / select
};

/** One immutable expression node. */
struct Expr
{
    ExprKind kind = ExprKind::Const;

    /// Const
    Value constVal = 0;

    /// IterVar
    int loopId = -1;

    /// Param / Scalar
    std::string name;

    /// Load
    std::string array;
    ExprPtr index;

    /// Op
    OpCode op = OpCode::Add;
    ExprPtr a, b, c;
};

/// @name Expression factories
/// @{
ExprPtr intConst(int64_t v);
ExprPtr floatConst(double v);
ExprPtr iterVar(int loop_id);
ExprPtr param(const std::string &name);
ExprPtr scalarRef(const std::string &name);
ExprPtr load(const std::string &array, ExprPtr index);
ExprPtr unary(OpCode op, ExprPtr a);
ExprPtr binary(OpCode op, ExprPtr a, ExprPtr b);
ExprPtr select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse);

/// Convenience arithmetic (integer ops).
ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
/// @}

/** Number of Op nodes in the tree (host-model cost estimation). */
int exprOpCount(const ExprPtr &e);

/** True if the tree contains a Load (=> non-affine index). */
bool exprHasLoad(const ExprPtr &e);

/** Debug dump. */
std::string exprToString(const ExprPtr &e);

} // namespace dsa::ir

#endif // DSA_IR_EXPR_H
