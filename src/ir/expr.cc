#include "ir/expr.h"

#include <sstream>

#include "base/logging.h"

namespace dsa::ir {

namespace {

std::shared_ptr<Expr>
mk(ExprKind kind)
{
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    return e;
}

} // namespace

ExprPtr
intConst(int64_t v)
{
    auto e = mk(ExprKind::Const);
    e->constVal = static_cast<Value>(v);
    return e;
}

ExprPtr
floatConst(double v)
{
    auto e = mk(ExprKind::Const);
    e->constVal = valueFromF64(v);
    return e;
}

ExprPtr
iterVar(int loop_id)
{
    auto e = mk(ExprKind::IterVar);
    e->loopId = loop_id;
    return e;
}

ExprPtr
param(const std::string &name)
{
    auto e = mk(ExprKind::Param);
    e->name = name;
    return e;
}

ExprPtr
scalarRef(const std::string &name)
{
    auto e = mk(ExprKind::Scalar);
    e->name = name;
    return e;
}

ExprPtr
load(const std::string &array, ExprPtr index)
{
    DSA_ASSERT(index, "load needs an index");
    auto e = mk(ExprKind::Load);
    e->array = array;
    e->index = std::move(index);
    return e;
}

ExprPtr
unary(OpCode op, ExprPtr a)
{
    DSA_ASSERT(opInfo(op).numOperands == 1, "not a unary op");
    auto e = mk(ExprKind::Op);
    e->op = op;
    e->a = std::move(a);
    return e;
}

ExprPtr
binary(OpCode op, ExprPtr a, ExprPtr b)
{
    DSA_ASSERT(opInfo(op).numOperands == 2, "not a binary op");
    auto e = mk(ExprKind::Op);
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
}

ExprPtr
select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse)
{
    auto e = mk(ExprKind::Op);
    e->op = OpCode::Select;
    e->a = std::move(cond);
    e->b = std::move(ifTrue);
    e->c = std::move(ifFalse);
    return e;
}

ExprPtr operator+(ExprPtr a, ExprPtr b)
{ return binary(OpCode::Add, std::move(a), std::move(b)); }
ExprPtr operator-(ExprPtr a, ExprPtr b)
{ return binary(OpCode::Sub, std::move(a), std::move(b)); }
ExprPtr operator*(ExprPtr a, ExprPtr b)
{ return binary(OpCode::Mul, std::move(a), std::move(b)); }

int
exprOpCount(const ExprPtr &e)
{
    if (!e)
        return 0;
    int n = e->kind == ExprKind::Op ? 1 : 0;
    return n + exprOpCount(e->a) + exprOpCount(e->b) + exprOpCount(e->c) +
           exprOpCount(e->index);
}

bool
exprHasLoad(const ExprPtr &e)
{
    if (!e)
        return false;
    if (e->kind == ExprKind::Load)
        return true;
    return exprHasLoad(e->a) || exprHasLoad(e->b) || exprHasLoad(e->c) ||
           exprHasLoad(e->index);
}

std::string
exprToString(const ExprPtr &e)
{
    if (!e)
        return "<null>";
    std::ostringstream os;
    switch (e->kind) {
      case ExprKind::Const:
        os << static_cast<int64_t>(e->constVal);
        break;
      case ExprKind::IterVar:
        os << "i" << e->loopId;
        break;
      case ExprKind::Param:
      case ExprKind::Scalar:
        os << e->name;
        break;
      case ExprKind::Load:
        os << e->array << "[" << exprToString(e->index) << "]";
        break;
      case ExprKind::Op:
        os << opName(e->op) << "(" << exprToString(e->a);
        if (e->b)
            os << ", " << exprToString(e->b);
        if (e->c)
            os << ", " << exprToString(e->c);
        os << ")";
        break;
    }
    return os.str();
}

} // namespace dsa::ir
