/**
 * @file
 * Affine (mini-SCEV) analysis over loop-nest IR index expressions —
 * the stand-in for LLVM's scalar-evolution analysis that the paper's
 * compiler uses to hoist memory accesses into stream intrinsics
 * (§IV-C "Decoupling the Memory and Compute").
 */

#ifndef DSA_IR_AFFINE_H
#define DSA_IR_AFFINE_H

#include <map>
#include <optional>
#include <string>

#include "ir/expr.h"
#include "ir/stmt.h"

namespace dsa::ir {

/** base + sum_i coeff[loopId_i] * iv_i, in array elements. */
struct AffineForm
{
    int64_t base = 0;
    std::map<int, int64_t> coeffs;

    int64_t coeff(int loop_id) const
    {
        auto it = coeffs.find(loop_id);
        return it == coeffs.end() ? 0 : it->second;
    }

    /** True iff no induction variable appears (a loop-invariant index). */
    bool isConstant() const;

    AffineForm operator+(const AffineForm &o) const;
    AffineForm operator-(const AffineForm &o) const;
    /** Scale by a compile-time constant. */
    AffineForm scaled(int64_t k) const;
};

/**
 * Try to express @p e as an affine form over induction variables,
 * resolving Param references through @p params.
 * @return nullopt if the expression is not affine (e.g. contains a
 *         load, a scalar variable, or a product of two ivs).
 */
std::optional<AffineForm>
analyzeAffine(const ExprPtr &e, const std::map<std::string, int64_t> &params);

/** Result of recognizing an indirect index `b[affine] (+ const)`. */
struct IndirectForm
{
    std::string idxArray;      ///< the index array b
    AffineForm idxAffine;      ///< affine index into b
    int64_t offset = 0;        ///< constant added to the loaded index
};

/**
 * Try to recognize @p e as an indirect index: a load from an index
 * array at an affine position, optionally plus a constant (the a[b[i]]
 * idiom of §IV-E "Indirect Memory Access").
 */
std::optional<IndirectForm>
analyzeIndirect(const ExprPtr &e,
                const std::map<std::string, int64_t> &params);

} // namespace dsa::ir

#endif // DSA_IR_AFFINE_H
