#include "ir/stmt.h"

#include "base/logging.h"

namespace dsa::ir {

StmtPtr
makeLoop(int loop_id, ExprPtr extent, std::vector<StmtPtr> body,
         bool offload)
{
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::Loop;
    s->loopId = loop_id;
    s->extent = std::move(extent);
    s->body = std::move(body);
    s->offload = offload;
    return s;
}

StmtPtr
makeStore(const std::string &array, ExprPtr index, ExprPtr value)
{
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::Store;
    s->array = array;
    s->index = std::move(index);
    s->value = std::move(value);
    return s;
}

StmtPtr
makeUpdate(const std::string &array, ExprPtr index, OpCode op,
           ExprPtr value)
{
    auto s = makeStore(array, std::move(index), std::move(value));
    s->isUpdate = true;
    s->updateOp = op;
    return s;
}

StmtPtr
makeReduce(const std::string &scalar, OpCode op, ExprPtr value)
{
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::Reduce;
    s->scalar = scalar;
    s->reduceOp = op;
    s->rvalue = std::move(value);
    return s;
}

StmtPtr
makeLet(const std::string &scalar, ExprPtr value)
{
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::LetScalar;
    s->scalar = scalar;
    s->rvalue = std::move(value);
    return s;
}

StmtPtr
makeIf(ExprPtr cond, std::vector<StmtPtr> then_body,
       std::vector<StmtPtr> else_body)
{
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::If;
    s->cond = std::move(cond);
    s->thenBody = std::move(then_body);
    s->elseBody = std::move(else_body);
    return s;
}

StmtPtr
makeMergeLoop(MergeLoopInfo info, std::vector<StmtPtr> match_body)
{
    DSA_ASSERT(info.ivA >= 0 && info.ivB >= 0 && info.ivA != info.ivB,
               "merge loop needs two distinct induction variables");
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::MergeLoop;
    s->merge = std::move(info);
    s->matchBody = std::move(match_body);
    return s;
}

const ArrayDecl &
KernelSource::arrayDecl(const std::string &name) const
{
    for (const auto &a : arrays)
        if (a.name == name)
            return a;
    DSA_FATAL("kernel '", this->name, "' has no array '", name, "'");
}

bool
KernelSource::hasArray(const std::string &name) const
{
    for (const auto &a : arrays)
        if (a.name == name)
            return true;
    return false;
}

} // namespace dsa::ir
