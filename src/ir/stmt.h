/**
 * @file
 * Statements and kernels of the loop-nest IR, including the three
 * `#pragma dsa` annotations of §IV-B (offload / decouple / config) as
 * statement flags, and the merge-loop construct whose decoupled
 * lowering is the paper's stream-join transformation (Fig. 8).
 */

#ifndef DSA_IR_STMT_H
#define DSA_IR_STMT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace dsa::ir {

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

enum class StmtKind : uint8_t {
    Loop,       ///< for (iv = 0; iv < extent; ++iv) body
    Store,      ///< array[index] = value   (or array[index] op= value)
    Reduce,     ///< scalar op= value
    LetScalar,  ///< scalar = value
    If,         ///< if (cond) thenBody else elseBody
    MergeLoop   ///< two-pointer sorted join (Fig. 8(a))
};

/**
 * The two-pointer join idiom: advance through two sorted key arrays,
 * executing @c matchBody when keys are equal. Induction variables
 * ivA/ivB index the A-side and B-side arrays respectively.
 */
struct MergeLoopInfo
{
    std::string keysA, keysB;  ///< sorted key arrays
    ExprPtr lenA, lenB;        ///< lengths
    int ivA = -1, ivB = -1;    ///< loop ids for the two pointers
    /** True when keys are floating point. */
    bool floatKeys = false;
};

/** One statement. Fields used depend on @c kind (tagged struct). */
struct Stmt
{
    StmtKind kind = StmtKind::Loop;

    /// @name Loop
    /// @{
    int loopId = -1;
    ExprPtr extent;            ///< trip count (loops are normalized)
    std::vector<StmtPtr> body;
    /** #pragma dsa offload on this loop. */
    bool offload = false;
    /// @}

    /// @name Store
    /// @{
    std::string array;
    ExprPtr index;
    ExprPtr value;
    /** True for `array[index] op= value`. */
    bool isUpdate = false;
    OpCode updateOp = OpCode::Add;
    /// @}

    /// @name Reduce / LetScalar
    /// @{
    std::string scalar;
    OpCode reduceOp = OpCode::Add;
    ExprPtr rvalue;
    /// @}

    /// @name If
    /// @{
    ExprPtr cond;
    std::vector<StmtPtr> thenBody;
    std::vector<StmtPtr> elseBody;
    /// @}

    /// @name MergeLoop
    /// @{
    MergeLoopInfo merge;
    std::vector<StmtPtr> matchBody;  ///< executed when keys match
    /// @}
};

/// @name Statement factories
/// @{
StmtPtr makeLoop(int loop_id, ExprPtr extent, std::vector<StmtPtr> body,
                 bool offload = false);
StmtPtr makeStore(const std::string &array, ExprPtr index, ExprPtr value);
StmtPtr makeUpdate(const std::string &array, ExprPtr index, OpCode op,
                   ExprPtr value);
StmtPtr makeReduce(const std::string &scalar, OpCode op, ExprPtr value);
StmtPtr makeLet(const std::string &scalar, ExprPtr value);
StmtPtr makeIf(ExprPtr cond, std::vector<StmtPtr> then_body,
               std::vector<StmtPtr> else_body = {});
StmtPtr makeMergeLoop(MergeLoopInfo info, std::vector<StmtPtr> match_body);
/// @}

/** Array declaration: element size/type and (fixed) length. */
struct ArrayDecl
{
    std::string name;
    int64_t length = 0;    ///< elements
    int elemBytes = 8;
    bool isFloat = false;
    /** Prefer placing this array in the scratchpad. */
    bool spadHint = false;
};

/**
 * A kernel: the unit annotated with `#pragma dsa config` — arrays,
 * fixed size parameters, and a statement body whose offload-marked
 * loops become the concurrent offloaded regions of one program.
 */
struct KernelSource
{
    std::string name;
    std::vector<ArrayDecl> arrays;
    std::map<std::string, int64_t> params;
    std::vector<StmtPtr> body;
    /** #pragma dsa decouple: no unknown aliasing anywhere in body. */
    bool decouple = true;
    /**
     * Programmer-asserted region independence (an extension of the
     * decouple pragma): cross-region array accesses never conflict
     * across loop iterations, so offloaded regions may run
     * concurrently/pipelined even when they touch the same arrays
     * (the producer-consumer idiom of Fig. 7(a)).
     */
    bool assumeRegionIndependence = false;

    const ArrayDecl &arrayDecl(const std::string &name) const;
    bool hasArray(const std::string &name) const;
};

} // namespace dsa::ir

#endif // DSA_IR_STMT_H
