#include "ir/interp.h"

#include "base/logging.h"

namespace dsa::ir {

ArrayStore::ArrayStore(const KernelSource &kernel)
{
    for (const auto &a : kernel.arrays)
        arrays_[a.name].assign(static_cast<size_t>(a.length), 0);
}

bool
ArrayStore::has(const std::string &name) const
{
    return arrays_.count(name) > 0;
}

std::vector<Value> &
ArrayStore::data(const std::string &name)
{
    auto it = arrays_.find(name);
    DSA_ASSERT(it != arrays_.end(), "no array '", name, "'");
    return it->second;
}

const std::vector<Value> &
ArrayStore::data(const std::string &name) const
{
    auto it = arrays_.find(name);
    DSA_ASSERT(it != arrays_.end(), "no array '", name, "'");
    return it->second;
}

Value
ArrayStore::get(const std::string &name, int64_t idx) const
{
    const auto &v = data(name);
    DSA_ASSERT(idx >= 0 && idx < static_cast<int64_t>(v.size()),
               "load out of bounds: ", name, "[", idx, "] size ", v.size());
    return v[static_cast<size_t>(idx)];
}

void
ArrayStore::set(const std::string &name, int64_t idx, Value val)
{
    auto &v = data(name);
    DSA_ASSERT(idx >= 0 && idx < static_cast<int64_t>(v.size()),
               "store out of bounds: ", name, "[", idx, "] size ", v.size());
    v[static_cast<size_t>(idx)] = val;
}

namespace {

/** Mutable interpretation state. */
struct Env
{
    const KernelSource &kernel;
    ArrayStore &store;
    InterpStats stats;
    std::map<int, int64_t> ivs;
    std::map<std::string, Value> scalars;
};

Value
evalExpr(Env &env, const ExprPtr &e)
{
    DSA_ASSERT(e, "null expression");
    switch (e->kind) {
      case ExprKind::Const:
        return e->constVal;
      case ExprKind::IterVar: {
        auto it = env.ivs.find(e->loopId);
        DSA_ASSERT(it != env.ivs.end(), "unbound iter var i", e->loopId);
        return static_cast<Value>(it->second);
      }
      case ExprKind::Param: {
        auto it = env.kernel.params.find(e->name);
        DSA_ASSERT(it != env.kernel.params.end(), "unbound param ",
                   e->name);
        return static_cast<Value>(it->second);
      }
      case ExprKind::Scalar: {
        auto it = env.scalars.find(e->name);
        DSA_ASSERT(it != env.scalars.end(), "unbound scalar ", e->name);
        return it->second;
      }
      case ExprKind::Load: {
        int64_t idx = static_cast<int64_t>(evalExpr(env, e->index));
        ++env.stats.loads;
        return env.store.get(e->array, idx);
      }
      case ExprKind::Op: {
        Value a = evalExpr(env, e->a);
        Value b = e->b ? evalExpr(env, e->b) : 0;
        Value c = e->c ? evalExpr(env, e->c) : 0;
        ++env.stats.arithOps;
        DSA_ASSERT(e->op != OpCode::Acc && e->op != OpCode::FAcc,
                   "accumulate is not an expression-level op");
        return evalOp(e->op, a, b, c, nullptr);
      }
    }
    DSA_PANIC("bad expr kind");
}

void execStmts(Env &env, const std::vector<StmtPtr> &stmts);

void
execStmt(Env &env, const Stmt &s)
{
    switch (s.kind) {
      case StmtKind::Loop: {
        int64_t extent = static_cast<int64_t>(evalExpr(env, s.extent));
        for (int64_t i = 0; i < extent; ++i) {
            env.ivs[s.loopId] = i;
            ++env.stats.loopIters;
            execStmts(env, s.body);
        }
        env.ivs.erase(s.loopId);
        break;
      }
      case StmtKind::Store: {
        int64_t idx = static_cast<int64_t>(evalExpr(env, s.index));
        Value v = evalExpr(env, s.value);
        if (s.isUpdate) {
            Value old = env.store.get(s.array, idx);
            ++env.stats.loads;
            ++env.stats.arithOps;
            v = evalOp(s.updateOp, old, v, 0, nullptr);
        }
        ++env.stats.stores;
        env.store.set(s.array, idx, v);
        break;
      }
      case StmtKind::Reduce: {
        Value v = evalExpr(env, s.rvalue);
        auto it = env.scalars.find(s.scalar);
        DSA_ASSERT(it != env.scalars.end(), "reduce into unbound scalar ",
                   s.scalar);
        ++env.stats.arithOps;
        it->second = evalOp(s.reduceOp, it->second, v, 0, nullptr);
        break;
      }
      case StmtKind::LetScalar:
        env.scalars[s.scalar] = evalExpr(env, s.rvalue);
        break;
      case StmtKind::If: {
        Value c = evalExpr(env, s.cond);
        ++env.stats.branches;
        execStmts(env, c ? s.thenBody : s.elseBody);
        break;
      }
      case StmtKind::MergeLoop: {
        const auto &m = s.merge;
        int64_t lenA = static_cast<int64_t>(evalExpr(env, m.lenA));
        int64_t lenB = static_cast<int64_t>(evalExpr(env, m.lenB));
        int64_t ia = 0, ib = 0;
        while (ia < lenA && ib < lenB) {
            Value ka = env.store.get(m.keysA, ia);
            Value kb = env.store.get(m.keysB, ib);
            env.stats.loads += 2;
            ++env.stats.branches;
            int cmp;
            if (m.floatKeys) {
                double fa = valueAsF64(ka), fb = valueAsF64(kb);
                cmp = fa == fb ? 0 : (fa < fb ? 1 : 2);
            } else {
                auto sa = static_cast<int64_t>(ka);
                auto sb = static_cast<int64_t>(kb);
                cmp = sa == sb ? 0 : (sa < sb ? 1 : 2);
            }
            if (cmp == 1) {
                ++ia;
            } else if (cmp == 2) {
                ++ib;
            } else {
                env.ivs[m.ivA] = ia;
                env.ivs[m.ivB] = ib;
                execStmts(env, s.matchBody);
                env.ivs.erase(m.ivA);
                env.ivs.erase(m.ivB);
                ++ia;
                ++ib;
            }
        }
        break;
      }
    }
}

void
execStmts(Env &env, const std::vector<StmtPtr> &stmts)
{
    for (const auto &s : stmts) {
        DSA_ASSERT(s, "null statement");
        execStmt(env, *s);
    }
}

} // namespace

InterpStats
interpret(const KernelSource &kernel, ArrayStore &store)
{
    Env env{kernel, store, {}, {}, {}};
    execStmts(env, kernel.body);
    return env.stats;
}

} // namespace dsa::ir
