/**
 * @file
 * Operation vocabulary shared by the dataflow IR (instructions), the
 * ADG (functional-unit capability sets), the simulator (evaluation),
 * and the power/area model (FU cost classes).
 *
 * DSAGEN only supports primitive power-of-two datatypes; the opcode set
 * here covers the integer/floating operations needed by the paper's
 * workloads (MachSuite, PolyBench, DSP, sparse kernels, dense/sparse NN).
 */

#ifndef DSA_ISA_OPCODE_H
#define DSA_ISA_OPCODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dsa {

/** All operations a processing element's functional units may support. */
enum class OpCode : uint8_t {
    // Integer arithmetic
    Add, Sub, Mul, Div, Mod, Min, Max, Abs,
    // Logic / shift
    And, Or, Xor, Not, Shl, Shr,
    // Comparison (produce 0/1)
    CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE,
    // Data steering
    Select,      ///< select(cond, a, b) — control converted to data
    Pass,        ///< identity; used for routing-only hops
    Acc,         ///< accumulating add with internal register
    // Floating point (IEEE double semantics on 64b; float on 32b lanes)
    FAdd, FSub, FMul, FDiv, FSqrt, FMin, FMax, FAcc,
    FCmpLT, FCmpLE, FCmpEQ,
    // NN activation helpers
    Sigmoid, ReLU,
    /**
     * Three-way compares for stream-join control (§IV-E): produce
     * 0 if a == b, 1 if a < b, 2 if a > b.
     */
    Cmp3, FCmp3,
    NumOpCodes
};

constexpr int kNumOpCodes = static_cast<int>(OpCode::NumOpCodes);

/** Coarse FU cost classes used by the power/area model. */
enum class FuClass : uint8_t {
    IntAlu,      ///< add/sub/logic/compare/select/pass
    IntMul,      ///< multiply
    IntDiv,      ///< divide/modulo
    FpAdd,       ///< fp add/sub/compare/min/max/acc
    FpMul,       ///< fp multiply
    FpDiv,       ///< fp divide / sqrt
    Special,     ///< sigmoid etc.
    NumClasses
};

constexpr int kNumFuClasses = static_cast<int>(FuClass::NumClasses);

/** Static per-opcode metadata. */
struct OpInfo
{
    const char *name;    ///< mnemonic
    int latency;         ///< pipeline latency in cycles
    int numOperands;     ///< input arity
    bool isFloat;        ///< operates on FP lanes
    FuClass fuClass;     ///< cost class for the area/power model
};

/** Metadata lookup for @p op. */
const OpInfo &opInfo(OpCode op);

/** Mnemonic for @p op. */
inline const char *opName(OpCode op) { return opInfo(op).name; }

/** Parse a mnemonic; fatal on unknown name. */
OpCode opFromName(const std::string &name);

/**
 * A set of opcodes, used to describe the capability of a PE.
 * Backed by a 64-bit mask (kNumOpCodes < 64).
 */
class OpSet
{
  public:
    OpSet() = default;

    /** Construct from an explicit list. */
    OpSet(std::initializer_list<OpCode> ops)
    {
        for (auto op : ops)
            insert(op);
    }

    void insert(OpCode op) { bits_ |= bit(op); }
    void erase(OpCode op) { bits_ &= ~bit(op); }
    bool contains(OpCode op) const { return bits_ & bit(op); }
    bool empty() const { return bits_ == 0; }

    /** Number of opcodes in the set. */
    int size() const { return __builtin_popcountll(bits_); }

    /** Union. */
    OpSet operator|(const OpSet &o) const { return OpSet(bits_ | o.bits_); }
    OpSet &operator|=(const OpSet &o) { bits_ |= o.bits_; return *this; }
    /** Intersection. */
    OpSet operator&(const OpSet &o) const { return OpSet(bits_ & o.bits_); }
    bool operator==(const OpSet &o) const { return bits_ == o.bits_; }

    /** True iff every opcode in @p o is also in this set. */
    bool covers(const OpSet &o) const { return (o.bits_ & ~bits_) == 0; }

    /** All member opcodes, in enum order. */
    std::vector<OpCode> toVector() const;

    uint64_t raw() const { return bits_; }
    static OpSet fromRaw(uint64_t raw) { return OpSet(raw); }

    /** Every defined opcode. */
    static OpSet all();
    /** The integer subset (no FP, no special). */
    static OpSet allInteger();
    /** The floating-point subset. */
    static OpSet allFloat();

  private:
    explicit OpSet(uint64_t bits) : bits_(bits) {}

    static uint64_t bit(OpCode op) { return 1ull << static_cast<int>(op); }

    uint64_t bits_ = 0;
};

/** Bit-pattern value flowing on a datapath (64-bit max width). */
using Value = uint64_t;

/** Reinterpret a value's low bits as a double. */
double valueAsF64(Value v);
/** Reinterpret a double as a raw 64-bit value. */
Value valueFromF64(double d);

/**
 * Evaluate @p op on operands @p a, @p b, @p c (unused operands ignored)
 * with an accumulator register @p acc (used by Acc/FAcc only).
 */
Value evalOp(OpCode op, Value a, Value b, Value c, Value *acc);

/**
 * Direct evaluation entry point for one opcode: behaves exactly like
 * `evalOp(op, ...)` but with the opcode dispatch resolved ahead of
 * time. The compiled simulation tier stores one of these per micro-op
 * so the per-fire cost is a single indirect call with the operation's
 * switch arm folded in.
 */
using OpFn = Value (*)(Value a, Value b, Value c, Value *acc);

/** The specialized evaluator for @p op (never null). */
OpFn opFunction(OpCode op);

} // namespace dsa

#endif // DSA_ISA_OPCODE_H
