#include "isa/opcode.h"

#include <array>
#include <cmath>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"

namespace dsa {

namespace {

const OpInfo kOpTable[kNumOpCodes] = {
    // name      lat  nops  fp     class
    {"add",       1,  2,  false, FuClass::IntAlu},
    {"sub",       1,  2,  false, FuClass::IntAlu},
    {"mul",       2,  2,  false, FuClass::IntMul},
    {"div",       8,  2,  false, FuClass::IntDiv},
    {"mod",       8,  2,  false, FuClass::IntDiv},
    {"min",       1,  2,  false, FuClass::IntAlu},
    {"max",       1,  2,  false, FuClass::IntAlu},
    {"abs",       1,  1,  false, FuClass::IntAlu},
    {"and",       1,  2,  false, FuClass::IntAlu},
    {"or",        1,  2,  false, FuClass::IntAlu},
    {"xor",       1,  2,  false, FuClass::IntAlu},
    {"not",       1,  1,  false, FuClass::IntAlu},
    {"shl",       1,  2,  false, FuClass::IntAlu},
    {"shr",       1,  2,  false, FuClass::IntAlu},
    {"cmpeq",     1,  2,  false, FuClass::IntAlu},
    {"cmpne",     1,  2,  false, FuClass::IntAlu},
    {"cmplt",     1,  2,  false, FuClass::IntAlu},
    {"cmple",     1,  2,  false, FuClass::IntAlu},
    {"cmpgt",     1,  2,  false, FuClass::IntAlu},
    {"cmpge",     1,  2,  false, FuClass::IntAlu},
    {"select",    1,  3,  false, FuClass::IntAlu},
    {"pass",      1,  1,  false, FuClass::IntAlu},
    {"acc",       1,  1,  false, FuClass::IntAlu},
    {"fadd",      2,  2,  true,  FuClass::FpAdd},
    {"fsub",      2,  2,  true,  FuClass::FpAdd},
    {"fmul",      3,  2,  true,  FuClass::FpMul},
    {"fdiv",     12,  2,  true,  FuClass::FpDiv},
    {"fsqrt",    12,  1,  true,  FuClass::FpDiv},
    {"fmin",      2,  2,  true,  FuClass::FpAdd},
    {"fmax",      2,  2,  true,  FuClass::FpAdd},
    {"facc",      2,  1,  true,  FuClass::FpAdd},
    {"fcmplt",    2,  2,  true,  FuClass::FpAdd},
    {"fcmple",    2,  2,  true,  FuClass::FpAdd},
    {"fcmpeq",    2,  2,  true,  FuClass::FpAdd},
    {"sigmoid",   4,  1,  true,  FuClass::Special},
    {"relu",      1,  1,  true,  FuClass::Special},
    {"cmp3",      1,  2,  false, FuClass::IntAlu},
    {"fcmp3",     2,  2,  true,  FuClass::FpAdd},
};

} // namespace

const OpInfo &
opInfo(OpCode op)
{
    int idx = static_cast<int>(op);
    DSA_ASSERT(idx >= 0 && idx < kNumOpCodes, "bad opcode ", idx);
    return kOpTable[idx];
}

OpCode
opFromName(const std::string &name)
{
    for (int i = 0; i < kNumOpCodes; ++i)
        if (name == kOpTable[i].name)
            return static_cast<OpCode>(i);
    std::vector<std::string> valid;
    for (int i = 0; i < kNumOpCodes; ++i)
        valid.push_back(kOpTable[i].name);
    DSA_FATAL("unknown opcode name '", name, "' ",
              suggestName(name, valid));
}

std::vector<OpCode>
OpSet::toVector() const
{
    std::vector<OpCode> out;
    for (int i = 0; i < kNumOpCodes; ++i) {
        auto op = static_cast<OpCode>(i);
        if (contains(op))
            out.push_back(op);
    }
    return out;
}

OpSet
OpSet::all()
{
    OpSet s;
    for (int i = 0; i < kNumOpCodes; ++i)
        s.insert(static_cast<OpCode>(i));
    return s;
}

OpSet
OpSet::allInteger()
{
    OpSet s;
    for (int i = 0; i < kNumOpCodes; ++i) {
        auto op = static_cast<OpCode>(i);
        if (!opInfo(op).isFloat)
            s.insert(op);
    }
    return s;
}

OpSet
OpSet::allFloat()
{
    OpSet s;
    for (int i = 0; i < kNumOpCodes; ++i) {
        auto op = static_cast<OpCode>(i);
        if (opInfo(op).isFloat)
            s.insert(op);
    }
    return s;
}

double
valueAsF64(Value v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

Value
valueFromF64(double d)
{
    Value v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

namespace {

/** One instantiation per opcode; the constant folds evalOp's switch. */
template <OpCode K>
Value
evalOpAs(Value a, Value b, Value c, Value *acc)
{
    return evalOp(K, a, b, c, acc);
}

template <size_t... I>
constexpr std::array<OpFn, sizeof...(I)>
makeOpFnTable(std::index_sequence<I...>)
{
    return {&evalOpAs<static_cast<OpCode>(I)>...};
}

const std::array<OpFn, kNumOpCodes> kOpFnTable =
    makeOpFnTable(std::make_index_sequence<kNumOpCodes>{});

} // namespace

OpFn
opFunction(OpCode op)
{
    int idx = static_cast<int>(op);
    DSA_ASSERT(idx >= 0 && idx < kNumOpCodes, "bad opcode ", idx);
    return kOpFnTable[static_cast<size_t>(idx)];
}

Value
evalOp(OpCode op, Value a, Value b, Value c, Value *acc)
{
    auto sa = static_cast<int64_t>(a);
    auto sb = static_cast<int64_t>(b);
    double fa = valueAsF64(a);
    double fb = valueAsF64(b);

    switch (op) {
      case OpCode::Add: return a + b;
      case OpCode::Sub: return a - b;
      case OpCode::Mul: return static_cast<Value>(sa * sb);
      case OpCode::Div: return sb ? static_cast<Value>(sa / sb) : 0;
      case OpCode::Mod: return sb ? static_cast<Value>(sa % sb) : 0;
      case OpCode::Min: return static_cast<Value>(std::min(sa, sb));
      case OpCode::Max: return static_cast<Value>(std::max(sa, sb));
      case OpCode::Abs: return static_cast<Value>(sa < 0 ? -sa : sa);
      case OpCode::And: return a & b;
      case OpCode::Or:  return a | b;
      case OpCode::Xor: return a ^ b;
      case OpCode::Not: return ~a;
      case OpCode::Shl: return a << (b & 63);
      case OpCode::Shr: return a >> (b & 63);
      case OpCode::CmpEQ: return a == b;
      case OpCode::CmpNE: return a != b;
      case OpCode::CmpLT: return sa < sb;
      case OpCode::CmpLE: return sa <= sb;
      case OpCode::CmpGT: return sa > sb;
      case OpCode::CmpGE: return sa >= sb;
      case OpCode::Select: return a ? b : c;
      case OpCode::Pass: return a;
      case OpCode::Acc: {
          DSA_ASSERT(acc, "acc op needs accumulator register");
          *acc += a;
          return *acc;
      }
      case OpCode::FAdd: return valueFromF64(fa + fb);
      case OpCode::FSub: return valueFromF64(fa - fb);
      case OpCode::FMul: return valueFromF64(fa * fb);
      case OpCode::FDiv: return valueFromF64(fb != 0.0 ? fa / fb : 0.0);
      case OpCode::FSqrt: return valueFromF64(std::sqrt(std::max(fa, 0.0)));
      case OpCode::FMin: return valueFromF64(std::min(fa, fb));
      case OpCode::FMax: return valueFromF64(std::max(fa, fb));
      case OpCode::FAcc: {
          DSA_ASSERT(acc, "facc op needs accumulator register");
          *acc = valueFromF64(valueAsF64(*acc) + fa);
          return *acc;
      }
      case OpCode::FCmpLT: return fa < fb;
      case OpCode::FCmpLE: return fa <= fb;
      case OpCode::FCmpEQ: return fa == fb;
      case OpCode::Sigmoid: return valueFromF64(1.0 / (1.0 + std::exp(-fa)));
      case OpCode::ReLU: return valueFromF64(std::max(fa, 0.0));
      case OpCode::Cmp3: return sa == sb ? 0 : (sa < sb ? 1 : 2);
      case OpCode::FCmp3: return fa == fb ? 0 : (fa < fb ? 1 : 2);
      default:
        DSA_PANIC("evalOp: unhandled opcode ", static_cast<int>(op));
    }
}

} // namespace dsa
