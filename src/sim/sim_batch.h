/**
 * @file
 * Batched multi-design simulation: run N candidate (program, schedule,
 * ADG) triples through the simulator in one process while sharing the
 * ring-buffer/compute-plan arena across machines, so per-design setup
 * cost (allocation, plan lowering) is paid against one high-water mark
 * instead of N times. The DSE explorer's validation/calibration paths
 * use this to amortize setup over a whole candidate set.
 *
 * Results are bit-identical to calling simulate() once per job: the
 * arena only changes *where* rings live, never what they hold, and
 * machines run strictly one at a time.
 */

#ifndef DSA_SIM_SIM_BATCH_H
#define DSA_SIM_SIM_BATCH_H

#include <vector>

#include "adg/adg.h"
#include "dfg/program.h"
#include "mapper/schedule.h"
#include "sim/jit/jit_stats.h"
#include "sim/memory_image.h"
#include "sim/simulator.h"

namespace dsa::sim {

/** One simulation to run. All pointees must outlive the batch call;
 *  @p mem is mutated exactly as by simulate(). */
struct SimJob
{
    const dfg::DecoupledProgram *prog = nullptr;
    const mapper::Schedule *sched = nullptr;
    const adg::Adg *adg = nullptr;
    MemImage *mem = nullptr;
    SimOptions opts;
};

/** Outcome of a batch run. */
struct SimBatchResult
{
    /** Per-job results, in job order. */
    std::vector<SimResult> results;
    /** Per-job wall time (milliseconds), in job order — lets callers
     *  compare engine configurations job-by-job (e.g. the explorer's
     *  validation speedup report) without re-timing outside. */
    std::vector<double> jobMs;
    /** Total wall time for the whole batch (milliseconds). */
    double wallMs = 0.0;
    /** Shared-arena high-water mark after the batch (bytes). */
    size_t arenaBytes = 0;
    /** JIT-tier activity during the batch (delta of the process-wide
     *  counters): jobs share one object cache, so N jobs with the
     *  same armed kernel shape show one compile and N-1 hits. */
    jit::JitStats jitStats;
};

/**
 * Run every job in @p jobs sequentially against one shared arena.
 * Each job behaves exactly like simulate(job.prog, ..., job.opts) —
 * including the checkSparse / checkCompiled oracle chains.
 */
SimBatchResult simulateBatch(const std::vector<SimJob> &jobs);

} // namespace dsa::sim

#endif // DSA_SIM_SIM_BATCH_H
