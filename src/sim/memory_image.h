/**
 * @file
 * Byte-addressable backing storage for simulation: a main-memory space
 * and a scratchpad space, populated from a kernel's ArrayStore through
 * its Placement, and extracted back after simulation for validation
 * against the golden interpreter.
 */

#ifndef DSA_SIM_MEMORY_IMAGE_H
#define DSA_SIM_MEMORY_IMAGE_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.h"
#include "compiler/placement.h"
#include "dfg/stream.h"
#include "ir/interp.h"

namespace dsa::sim {

/** One flat byte-addressable space. */
class AddressSpace
{
  public:
    /** Grow to cover at least @p bytes. */
    void ensure(int64_t bytes);

    /** Load @p elemBytes little-endian bytes, zero-extended. */
    Value
    load(int64_t addr, int elemBytes) const
    {
        DSA_ASSERT(addr >= 0 && addr + elemBytes <=
                                    static_cast<int64_t>(bytes_.size()),
                   "load out of bounds at ", addr, " (+", elemBytes,
                   "), size ", bytes_.size());
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
        Value v = 0;
        std::memcpy(&v, bytes_.data() + addr,
                    static_cast<size_t>(elemBytes));
        return v;
#else
        Value v = 0;
        for (int i = elemBytes - 1; i >= 0; --i)
            v = (v << 8) | bytes_[static_cast<size_t>(addr + i)];
        return v;
#endif
    }

    /** Store the low @p elemBytes bytes of @p v. */
    void
    store(int64_t addr, int elemBytes, Value v)
    {
        DSA_ASSERT(addr >= 0 && addr + elemBytes <=
                                    static_cast<int64_t>(bytes_.size()),
                   "store out of bounds at ", addr, " (+", elemBytes,
                   "), size ", bytes_.size());
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
        std::memcpy(bytes_.data() + addr, &v,
                    static_cast<size_t>(elemBytes));
#else
        for (int i = 0; i < elemBytes; ++i) {
            bytes_[static_cast<size_t>(addr + i)] =
                static_cast<uint8_t>(v);
            v >>= 8;
        }
#endif
    }

    int64_t size() const { return static_cast<int64_t>(bytes_.size()); }

    /** Raw contents (byte-exact equivalence checks in tests and the
     *  simulator's sparse-vs-dense cross-check mode). */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Mutable backing bytes: the jit tier binds this base pointer
     *  into generated kernels (bounds-guarded in the emitted code the
     *  same way load/store assert here). */
    uint8_t *data() { return bytes_.data(); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Main + scratchpad contents for one program execution. */
struct MemImage
{
    AddressSpace main;
    AddressSpace spad;

    AddressSpace &space(dfg::MemSpace s)
    {
        return s == dfg::MemSpace::Main ? main : spad;
    }
    const AddressSpace &space(dfg::MemSpace s) const
    {
        return s == dfg::MemSpace::Main ? main : spad;
    }

    /** Populate from @p store per @p placement. */
    static MemImage build(const ir::KernelSource &kernel,
                          const ir::ArrayStore &store,
                          const compiler::Placement &placement);

    /** Read array contents back into @p store. */
    void extract(const ir::KernelSource &kernel,
                 const compiler::Placement &placement,
                 ir::ArrayStore &store) const;
};

} // namespace dsa::sim

#endif // DSA_SIM_MEMORY_IMAGE_H
