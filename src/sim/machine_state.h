/**
 * @file
 * Internal simulation state shared by the simulator core
 * (simulator.cc), the compiled steady-state tier (compute_plan.cc),
 * and the batched multi-design driver (sim_batch.cc). Everything here
 * is an implementation detail — the public API stays in simulator.h /
 * sim_batch.h.
 *
 * The hot containers are preallocated ring buffers carved out of a
 * SimArena: a routed-path Pipe is a fixed-capacity (time, value) ring
 * and an input port's element buffer is a fixed-capacity value ring,
 * so the steady-state loops never touch the allocator and never pay
 * deque chunk arithmetic. A batch of machines can share one arena
 * (reset between builds) to amortize the allocations across designs.
 */

#ifndef DSA_SIM_MACHINE_STATE_H
#define DSA_SIM_MACHINE_STATE_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "adg/adg.h"
#include "base/logging.h"
#include "dfg/program.h"
#include "isa/opcode.h"
#include "mapper/schedule.h"
#include "sim/memory_image.h"
#include "sim/simulator.h"

namespace dsa::sim {

/**
 * Bump allocator backing one machine's ring buffers and compute-plan
 * micro-op arrays. Chunks are retained across reset(), so building N
 * machines back-to-back against the same arena (the SimBatch pattern)
 * allocates only on the high-water mark. At most one live Machine may
 * use an arena at a time; reset() invalidates everything previously
 * handed out.
 */
class SimArena
{
  public:
    /** Uninitialized storage for @p n objects of type T. */
    template <typename T>
    T *
    allocArray(size_t n)
    {
        if (n == 0)
            return nullptr;
        return static_cast<T *>(alloc(n * sizeof(T), alignof(T)));
    }

    void *
    alloc(size_t bytes, size_t align)
    {
        for (; cur_ < chunks_.size(); ++cur_) {
            Chunk &c = chunks_[cur_];
            size_t used = (c.used + align - 1) & ~(align - 1);
            if (used + bytes <= c.size) {
                c.used = used + bytes;
                return c.data.get() + used;
            }
        }
        // Fresh chunk: new[] storage is max_align_t-aligned, which
        // covers every type allocated here.
        size_t size = std::max<size_t>(bytes + align, kMinChunk);
        chunks_.push_back(
            {std::unique_ptr<char[]>(new char[size]), size, 0});
        cur_ = chunks_.size() - 1;
        Chunk &c = chunks_.back();
        c.used = bytes;
        return c.data.get();
    }

    /** Recycle all chunks (capacity kept). */
    void
    reset()
    {
        for (Chunk &c : chunks_)
            c.used = 0;
        cur_ = 0;
    }

    /** Total bytes reserved (diagnostics). */
    size_t
    footprint() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.size;
        return total;
    }

  private:
    static constexpr size_t kMinChunk = 1 << 16;

    struct Chunk
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    std::vector<Chunk> chunks_;
    size_t cur_ = 0;
};

namespace detail {

/** Round up to a power of two (>= 1). */
inline uint32_t
roundUpPow2(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * A fixed-latency, bounded, in-order value pipe (a routed path),
 * backed by an arena-allocated power-of-two ring.
 */
struct Pipe
{
    int64_t *times = nullptr;  ///< arrival cycle per slot
    Value *vals = nullptr;
    uint32_t head = 0;
    uint32_t count = 0;
    uint32_t mask = 0;  ///< ring size - 1
    int latency = 1;
    int capacity = 8;  ///< logical bound (<= ring size)

    void
    allocate(SimArena &arena)
    {
        uint32_t ring = roundUpPow2(static_cast<uint32_t>(capacity));
        mask = ring - 1;
        times = arena.allocArray<int64_t>(ring);
        vals = arena.allocArray<Value>(ring);
    }

    bool canPush() const
    {
        return count < static_cast<uint32_t>(capacity);
    }
    void
    push(int64_t now, Value v)
    {
        uint32_t tail = (head + count) & mask;
        times[tail] = now + latency;
        vals[tail] = v;
        ++count;
    }
    bool ready(int64_t now) const
    {
        return count != 0 && times[head] <= now;
    }
    bool empty() const { return count == 0; }
    int64_t frontTime() const { return times[head]; }
    Value front() const { return vals[head]; }
    void
    pop()
    {
        head = (head + 1) & mask;
        --count;
    }
    void
    clear()
    {
        head = 0;
        count = 0;
    }
};

struct StreamExec;
struct PortSim;

/**
 * A persistent forwarded-scalar channel. The queue survives the
 * consumer's per-issue port resets; a machine-level non-empty counter
 * lets the per-cycle pump skip the forward scan entirely while every
 * channel is drained (the common state).
 */
struct FwdQueue
{
    std::deque<Value> q;
    int *nonEmptyCount = nullptr;

    void
    push(Value v)
    {
        if (q.empty() && nonEmptyCount)
            ++*nonEmptyCount;
        q.push_back(v);
    }

    void
    pop()
    {
        q.pop_front();
        if (q.empty() && nonEmptyCount)
            --*nonEmptyCount;
    }

    Value front() const { return q.front(); }
    bool empty() const { return q.empty(); }
};

/** Where an output port's elements go. */
struct OutSink
{
    enum class Kind { Write, Recurrence, Forward };
    Kind kind = Kind::Write;
    int64_t skip = 0;     ///< skip this many elements first
    int64_t take = -1;    ///< then take this many (-1 = all)
    int64_t seen = 0;
    int64_t taken = 0;
    StreamExec *write = nullptr;  ///< Write sink
    PortSim *target = nullptr;    ///< Recurrence sink
    /**
     * Forward sink: values land in a persistent machine-level queue
     * (surviving the consumer's per-issue port resets) and are moved
     * into the consumer's port as it runs.
     */
    FwdQueue *fwdQueue = nullptr;

    bool wants() const { return seen >= skip && (take < 0 || taken < take); }
};

/** Input port (sync element) simulation state. */
struct PortSim
{
    int lanes = 1;
    int64_t reuse = 1;
    int capacity = 64;
    /** Buffered elements: arena-allocated power-of-two ring. */
    Value *buf = nullptr;
    uint32_t bufHead = 0;
    uint32_t bufCount = 0;
    uint32_t bufMask = 0;
    /** Currently-latched vector (lanes entries, arena). */
    Value *current = nullptr;
    int64_t reuseLeft = 0;
    std::vector<std::vector<Pipe *>> lanePipes;
    int64_t minPopInterval = 0;
    int64_t lastPop = -1'000'000;
    int64_t pops = 0;

    void
    allocate(SimArena &arena)
    {
        uint32_t ring = roundUpPow2(static_cast<uint32_t>(capacity));
        bufMask = ring - 1;
        buf = arena.allocArray<Value>(ring);
        current = arena.allocArray<Value>(static_cast<size_t>(lanes));
    }

    int bufSize() const { return static_cast<int>(bufCount); }

    bool
    roomFor(int n) const
    {
        return static_cast<int>(bufCount) + n <= capacity;
    }

    void
    deliver(Value v)
    {
        buf[(bufHead + bufCount) & bufMask] = v;
        ++bufCount;
    }

    bool
    tryFire(int64_t now)
    {
        if (reuseLeft == 0) {
            if (static_cast<int>(bufCount) < lanes)
                return false;
            for (int l = 0; l < lanes; ++l)
                current[l] = buf[(bufHead + static_cast<uint32_t>(l)) &
                                 bufMask];
            bufHead = (bufHead + static_cast<uint32_t>(lanes)) & bufMask;
            bufCount -= static_cast<uint32_t>(lanes);
            reuseLeft = std::max<int64_t>(1, reuse);
        }
        if (now - lastPop < minPopInterval)
            return false;
        for (int l = 0; l < lanes; ++l)
            for (Pipe *p : lanePipes[static_cast<size_t>(l)])
                if (!p->canPush())
                    return false;
        for (int l = 0; l < lanes; ++l)
            for (Pipe *p : lanePipes[static_cast<size_t>(l)])
                p->push(now, current[l]);
        --reuseLeft;
        lastPop = now;
        ++pops;
        return true;
    }

    void
    resetForIssue()
    {
        bufHead = 0;
        bufCount = 0;
        reuseLeft = 0;
    }
};

/** Output port simulation state. */
struct OutPortSim
{
    int lanes = 1;
    int64_t outputEvery = 1;
    std::vector<Pipe *> lanePipes;
    std::vector<OutSink> sinks;
    int64_t fires = 0;
    std::vector<Value> lastVec;
    bool lastValid = false;
    /** Source is an accumulator: its init value stands in when the
     *  issue produced no elements (zero-trip reductions). */
    bool hasFallback = false;
    Value fallbackInit = 0;
    /** Reused fire scratch (avoids a per-fire allocation). */
    std::vector<Value> scratch;

    bool
    sinksAccept(int n) const
    {
        for (const OutSink &s : sinks) {
            if (!s.wants())
                continue;
            // Writes are checked via their own buffer capacity and
            // forwards buffer in an unbounded queue.
            if (s.kind == OutSink::Kind::Recurrence && s.target &&
                !s.target->roomFor(n))
                return false;
        }
        return true;
    }

    /** Write-sink buffer room for one vector (pre-fire gate). */
    bool writeSinksRoom() const;

    void deliverElement(Value v);

    bool tryFire(int64_t now);

    void
    resetForIssue()
    {
        fires = 0;
        lastVec.clear();
        lastValid = false;
        for (OutSink &s : sinks) {
            s.seen = 0;
            s.taken = 0;
        }
    }
};

/**
 * Power-of-two ring of Values with exposed storage. Replaces the
 * std::deque write buffer so the jit tier can bind (data, head,
 * count, mask) directly into a generated kernel; the interpreted
 * paths use the deque-shaped methods below. Growth re-linearizes
 * into a fresh buffer (order preserved) — never mid-kernel: callers
 * that hand the ring to native code reserve() the worst case first.
 */
struct ValueRing
{
    Value *data = nullptr;
    uint32_t head = 0;
    uint32_t count = 0;
    uint32_t mask = 0; ///< capacity - 1 (capacity is a power of two)
    std::vector<Value> store;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    Value &operator[](size_t i) { return data[(head + i) & mask]; }
    const Value &
    operator[](size_t i) const
    {
        return data[(head + i) & mask];
    }
    Value &front() { return data[head]; }
    const Value &front() const { return data[head]; }

    void
    push_back(Value v)
    {
        if (!data || count > mask)
            grow(data ? 2 * (mask + 1) : 64);
        data[(head + count) & mask] = v;
        ++count;
    }

    void
    pop_front()
    {
        head = (head + 1) & mask;
        --count;
    }

    /** Drop the first @p n values (deque erase(begin, begin + n)). */
    void
    erase_front(size_t n)
    {
        head = (head + static_cast<uint32_t>(n)) & mask;
        count -= static_cast<uint32_t>(n);
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Guarantee room for @p cap values without any future grow(). */
    void
    reserve(uint32_t cap)
    {
        if (cap > 0 && (!data || mask + 1 < cap))
            grow(detail_roundUp(cap));
    }

  private:
    static uint32_t
    detail_roundUp(uint32_t v)
    {
        uint32_t c = 64;
        while (c < v)
            c *= 2;
        return c;
    }

    void
    grow(uint32_t cap)
    {
        std::vector<Value> next(cap);
        for (uint32_t i = 0; i < count; ++i)
            next[i] = data[(head + i) & mask];
        store = std::move(next);
        data = store.data();
        head = 0;
        mask = cap - 1;
    }
};

/** One stream's execution state for the current issue. */
struct StreamExec
{
    const dfg::Stream *st = nullptr;
    int regionIdx = -1;
    // Pregenerated per-issue address (or value) sequences.
    std::vector<int64_t> addrs;
    std::vector<int64_t> idxAddrs;
    size_t pos = 0;
    PortSim *target = nullptr;       // reads
    ValueRing writeBuf;              // writes/atomics: values from port
    int writeBufCap = 32;
    int64_t nextReady = 0;           // scalar-fallback throttle
    bool openDone = false;           // open-ended write finished
    /** Index space, resolved once at build (indirect kinds only). */
    AddressSpace *idxSpace = nullptr;

    bool
    readsDone() const
    {
        return pos >= addrs.size();
    }

    bool
    done() const
    {
        switch (st->kind) {
          case dfg::StreamKind::LinearWrite:
          case dfg::StreamKind::IndirectWrite:
          case dfg::StreamKind::AtomicUpdate:
            return (pos >= addrs.size() && writeBuf.empty()) ||
                   (st->openEnded && openDone && writeBuf.empty());
          default:
            return readsDone();
        }
    }
};

/** Instruction simulation state. */
struct InstSim
{
    const dfg::Vertex *vx = nullptr;
    std::vector<Pipe *> inPipes;  // null for immediates
    std::vector<Value> imms;
    std::vector<Pipe *> outPipes;
    Value acc = 0;
    int64_t fires = 0;
    int64_t lastFire = -1'000'000;
    adg::NodeId pe = adg::kInvalidNode;
    /** PE is temporally shared (resolved at build; saves a node lookup
     *  on every fire attempt). */
    bool sharedPe = false;

    bool
    operandsReady(int64_t now) const
    {
        for (size_t i = 0; i < inPipes.size(); ++i)
            if (inPipes[i] && !inPipes[i]->ready(now))
                return false;
        return true;
    }

    Value
    operandValue(size_t i) const
    {
        return inPipes[i] ? inPipes[i]->front() : imms[i];
    }
};

inline bool
OutPortSim::writeSinksRoom() const
{
    for (const OutSink &s : sinks) {
        if (s.kind == OutSink::Kind::Write && s.wants() &&
            static_cast<int>(s.write->writeBuf.size()) + lanes >
                s.write->writeBufCap)
            return false;
    }
    return true;
}

inline void
OutPortSim::deliverElement(Value v)
{
    for (OutSink &s : sinks) {
        bool want = s.wants();
        ++s.seen;
        if (!want)
            continue;
        ++s.taken;
        if (s.kind == OutSink::Kind::Write) {
            s.write->writeBuf.push_back(v);
        } else if (s.kind == OutSink::Kind::Forward) {
            s.fwdQueue->push(v);
        } else {
            s.target->deliver(v);
        }
    }
}

inline bool
OutPortSim::tryFire(int64_t now)
{
    for (Pipe *p : lanePipes)
        if (!p->ready(now))
            return false;
    bool keep = outputEvery > 0 ? ((fires + 1) % outputEvery == 0)
                                : false;
    if (keep || outputEvery == -1) {
        if (!writeSinksRoom())
            return false;
        if (keep && !sinksAccept(lanes))
            return false;
    }
    scratch.clear();
    for (Pipe *p : lanePipes) {
        scratch.push_back(p->front());
        p->pop();
    }
    ++fires;
    if (outputEvery == -1) {
        lastVec = scratch;
        lastValid = true;
    } else if (keep) {
        for (Value v : scratch)
            deliverElement(v);
    }
    return true;
}

/** Region issue/lifecycle state. */
enum class RegionState {
    WaitDep,      ///< waiting on via-memory producer regions
    WaitCmd,      ///< control core issuing stream commands
    Running,
    Finalizing,   ///< last-value delivery + write drain
    DoneIssue,
    Complete
};

inline const char *
regionStateName(RegionState st)
{
    switch (st) {
      case RegionState::WaitDep: return "wait-dep";
      case RegionState::WaitCmd: return "wait-cmd";
      case RegionState::Running: return "running";
      case RegionState::Finalizing: return "finalizing";
      case RegionState::DoneIssue: return "done-issue";
      case RegionState::Complete: return "complete";
    }
    return "?";
}

struct RegionSim
{
    const dfg::Region *reg = nullptr;
    int idx = -1;
    RegionState state = RegionState::WaitCmd;
    int64_t stateUntil = 0;
    // Re-issue enumeration over outer loops (outermost first).
    std::vector<int64_t> outerIdx;
    int64_t lastActivity = 0;
    int quiesceWindow = 16;
    int64_t endCycle = 0;

    std::vector<PortSim> inPorts;      // by vertex id (sparse)
    std::vector<OutPortSim> outPorts;  // by vertex id (sparse)
    std::vector<InstSim> insts;
    std::vector<std::unique_ptr<Pipe>> pipes;
    std::vector<StreamExec> streams;   // by stream id
    std::vector<int> waitOnRegions;    // region-level dependences
    int64_t completedIssues = 0;

    /// @name Build-time hot-loop caches (contents never change after
    /// Machine::build; both the dense oracle and the sparse fast path
    /// iterate these instead of re-filtering per cycle)
    /// @{
    std::vector<int> realInPorts;      ///< vertex ids with lane pipes
    std::vector<int> realOutPorts;     ///< vertex ids with lane pipes
    std::vector<int> genStreams;       ///< Const/Iota stream ids
    std::vector<int> fallbackStreams;  ///< scalar-fallback stream ids
    std::vector<int> throttledPorts;   ///< in-port ids, minPopInterval>0
    /** (instruction index, op latency) of accumulate instructions —
     *  the only instructions whose firing is gated on a future time. */
    std::vector<std::pair<int, int>> accInsts;
    /// @}

    bool
    allReadsDone() const
    {
        for (const StreamExec &se : streams) {
            const dfg::Stream &st = *se.st;
            if (st.kind == dfg::StreamKind::LinearRead ||
                st.kind == dfg::StreamKind::IndirectRead ||
                st.kind == dfg::StreamKind::Const ||
                st.kind == dfg::StreamKind::Iota) {
                if (!se.readsDone())
                    return false;
            }
        }
        return true;
    }

    bool
    allWritesDone() const
    {
        for (const StreamExec &se : streams) {
            const dfg::Stream &st = *se.st;
            if (st.kind == dfg::StreamKind::LinearWrite ||
                st.kind == dfg::StreamKind::IndirectWrite ||
                st.kind == dfg::StreamKind::AtomicUpdate) {
                if (!se.done())
                    return false;
            }
        }
        return true;
    }
};

/**
 * The generic (interpreted) instruction fire attempt — the semantic
 * reference every compiled micro-op kind must match bit-exactly. Used
 * by the dense/sparse tick path and by compiled-plan steps that stay
 * on the generic path (stream-join control).
 */
inline void
genericFire(RegionSim &rs, InstSim &is, int64_t now, bool &activity,
            int64_t *peFiredCycle)
{
    const dfg::Vertex &vx = *is.vx;
    if (!is.operandsReady(now))
        return;
    // Accumulators feed their own register back: the next firing must
    // wait for the op's latency (limits FP-accumulate chains to II=L).
    if (vx.isAccumulate() &&
        now - is.lastFire < opInfo(vx.op).latency)
        return;
    for (Pipe *p : is.outPipes)
        if (!p->canPush())
            return;

    // Shared-PE arbitration: one fire per shared PE per cycle. The
    // stamp array is epoch-keyed by cycle, so there is no per-cycle
    // clearing (and no map lookup).
    if (is.sharedPe) {
        int64_t &stamp = peFiredCycle[static_cast<size_t>(is.pe)];
        if (stamp == now)
            return;
        stamp = now;
    }

    is.lastFire = now;
    Value result;
    bool emit = true;
    if (vx.ctrl.active()) {
        // Stream-join control.
        Value a = is.operandValue(0);
        Value b = vx.operands.size() > 1 ? is.operandValue(1) : 0;
        Value cval = vx.operands.size() > 2 ? is.operandValue(2) : 0;
        // Natural-arity computation (extra ctrl operand excluded).
        int arity = opInfo(vx.op).numOperands;
        result = evalOp(vx.op, a, arity >= 2 ? b : 0,
                        arity >= 3 ? cval : 0,
                        vx.isAccumulate() ? &is.acc : nullptr);
        int ctl;
        if (vx.ctrl.source == dfg::CtrlSpec::Source::Self) {
            ctl = static_cast<int>(result & 7);
        } else {
            ctl = static_cast<int>(
                is.operandValue(
                    static_cast<size_t>(vx.ctrl.ctrlOperand)) & 7);
        }
        emit = vx.ctrl.emits(ctl);
        for (size_t i = 0; i < is.inPipes.size(); ++i) {
            if (!is.inPipes[i])
                continue;
            if (vx.ctrl.pops(static_cast<int>(i), ctl))
                is.inPipes[i]->pop();
        }
    } else if (vx.selfAcc) {
        Value v = is.operandValue(0);
        is.acc = evalOp(vx.op, is.acc, v, 0, nullptr);
        result = is.acc;
        for (Pipe *p : is.inPipes)
            if (p)
                p->pop();
        ++is.fires;
        if (vx.accResetEvery > 0 && is.fires % vx.accResetEvery == 0) {
            // Reset after this result was produced.
            for (Pipe *out : is.outPipes)
                out->push(now, result);
            is.acc = vx.accInit;
            rs.lastActivity = now;
            activity = true;
            return;
        }
        for (Pipe *out : is.outPipes)
            out->push(now, result);
        rs.lastActivity = now;
        activity = true;
        return;
    } else {
        Value a = is.operandValue(0);
        Value b = vx.operands.size() > 1 ? is.operandValue(1) : 0;
        Value cc = vx.operands.size() > 2 ? is.operandValue(2) : 0;
        result = evalOp(vx.op, a, b, cc,
                        vx.isAccumulate() ? &is.acc : nullptr);
        for (Pipe *p : is.inPipes)
            if (p)
                p->pop();
    }
    ++is.fires;
    if (emit)
        for (Pipe *out : is.outPipes)
            out->push(now, result);
    rs.lastActivity = now;
    activity = true;
}

} // namespace detail

/**
 * Internal simulate entry point that can borrow an external arena for
 * the machine's ring/plan allocations (SimBatch uses this to share one
 * arena across a whole batch of designs). @p arena may be null; when
 * given, the caller must keep it alive for the duration of the call
 * and must not run two machines against it concurrently.
 */
SimResult simulateShared(const dfg::DecoupledProgram &prog,
                         const mapper::Schedule &sched, const adg::Adg &adg,
                         MemImage &mem, const SimOptions &opts,
                         SimArena *arena);

} // namespace dsa::sim

#endif // DSA_SIM_MACHINE_STATE_H
