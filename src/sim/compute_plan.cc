#include "sim/compute_plan.h"

namespace dsa::sim::detail {

using dfg::Vertex;

RegionPlan
buildRegionPlan(RegionSim &rs, int64_t *peFiredCycle, SimArena &arena)
{
    RegionPlan plan;
    size_t total = rs.realInPorts.size() + rs.insts.size() +
                   rs.realOutPorts.size();
    plan.steps = arena.allocArray<PlanStep>(total);
    plan.numSteps = static_cast<int>(total);

    auto pipeArray = [&](const std::vector<Pipe *> &pipes) -> Pipe ** {
        Pipe **arr = arena.allocArray<Pipe *>(pipes.size());
        for (size_t i = 0; i < pipes.size(); ++i)
            arr[i] = pipes[i];
        return arr;
    };

    int n = 0;
    // Input ports, in the interpreted tick's realInPorts order.
    for (int v : rs.realInPorts) {
        PortSim &ps = rs.inPorts[static_cast<size_t>(v)];
        PlanStep s{};
        s.port = &ps;
        if (ps.lanes == 1 && ps.reuse <= 1 && ps.minPopInterval == 0) {
            s.kind = PlanStep::PortSimple;
            s.outs = pipeArray(ps.lanePipes[0]);
            s.nOut = static_cast<uint8_t>(ps.lanePipes[0].size());
        } else {
            s.kind = PlanStep::PortGeneric;
        }
        plan.steps[n++] = s;
    }

    // Instructions, in index order.
    for (InstSim &is : rs.insts) {
        const Vertex &vx = *is.vx;
        PlanStep s{};
        s.inst = &is;
        s.fn = opFunction(vx.op);
        s.peStamp = is.sharedPe
            ? &peFiredCycle[static_cast<size_t>(is.pe)]
            : nullptr;
        size_t arity = vx.operands.size();
        if (vx.ctrl.active() || arity > 3 || arity == 0) {
            s.kind = PlanStep::InstGeneric;
        } else {
            s.nIn = static_cast<uint8_t>(arity);
            for (size_t i = 0; i < arity; ++i) {
                s.in[i] = is.inPipes[i];
                s.imm[i] = is.imms[i];
            }
            s.outs = pipeArray(is.outPipes);
            s.nOut = static_cast<uint8_t>(is.outPipes.size());
            s.latency =
                static_cast<uint8_t>(opInfo(vx.op).latency);
            if (vx.selfAcc) {
                s.kind = PlanStep::InstSelfAcc;
                s.accResetEvery = vx.accResetEvery;
                s.accInit = vx.accInit;
            } else if (vx.isAccumulate()) {
                s.kind = PlanStep::InstAcc;
            } else {
                s.kind = PlanStep::InstSimple;
            }
        }
        plan.steps[n++] = s;
    }

    // Output ports, in the interpreted tick's realOutPorts order.
    for (int v : rs.realOutPorts) {
        OutPortSim &op = rs.outPorts[static_cast<size_t>(v)];
        PlanStep s{};
        s.outPort = &op;
        if (op.outputEvery == 1) {
            s.kind = PlanStep::OutSimple;
            s.outs = pipeArray(op.lanePipes);
            s.nOut = static_cast<uint8_t>(op.lanePipes.size());
        } else if (op.outputEvery == -1) {
            s.kind = PlanStep::OutLast;
            s.outs = pipeArray(op.lanePipes);
            s.nOut = static_cast<uint8_t>(op.lanePipes.size());
        } else if (op.outputEvery > 1) {
            s.kind = PlanStep::OutEvery;
            s.outs = pipeArray(op.lanePipes);
            s.nOut = static_cast<uint8_t>(op.lanePipes.size());
        } else {
            s.kind = PlanStep::OutGeneric;
        }
        plan.steps[n++] = s;
    }

    DSA_ASSERT(n == plan.numSteps, "plan step count mismatch");
    return plan;
}

/**
 * Shared body of runPlan / runPlanRecord. The Rec instantiation
 * additionally sets per-step action bits; the hot non-recording
 * instantiation compiles the bookkeeping out entirely.
 */
template <bool Rec>
static void
runPlanT(RegionSim &rs, const RegionPlan &plan, int64_t now,
         bool &activity, int64_t *peFiredCycle, uint64_t &fired64,
         uint64_t &latched64)
{
    bool fired = false;
    PlanStep *steps = plan.steps;
    for (int i = 0; i < plan.numSteps; ++i) {
        PlanStep &s = steps[i];
        switch (s.kind) {
          case PlanStep::PortSimple: {
            PortSim &ps = *s.port;
            if (ps.reuseLeft == 0) {
                // Stateful refill: latch the next element even if a
                // downstream pipe rejects the fire this cycle (the
                // interpreted tryFire consumes the buffer the same
                // way).
                if (ps.bufCount == 0)
                    break;
                ps.current[0] = ps.buf[ps.bufHead];
                ps.bufHead = (ps.bufHead + 1) & ps.bufMask;
                --ps.bufCount;
                ps.reuseLeft = 1;
                if constexpr (Rec)
                    latched64 |= uint64_t{1} << i;
            }
            bool room = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->canPush()) {
                    room = false;
                    break;
                }
            if (!room)
                break;
            Value v = ps.current[0];
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->push(now, v);
            ps.reuseLeft = 0;
            ps.lastPop = now;
            ++ps.pops;
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::PortGeneric:
            if (s.port->tryFire(now)) {
                fired = true;
                if constexpr (Rec)
                    fired64 |= uint64_t{1} << i;
            }
            break;
          case PlanStep::InstSimple: {
            InstSim &is = *s.inst;
            bool ready = true;
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j] && !s.in[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            bool room = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->canPush()) {
                    room = false;
                    break;
                }
            if (!room)
                break;
            if (s.peStamp) {
                if (*s.peStamp == now)
                    break;
                *s.peStamp = now;
            }
            is.lastFire = now;
            Value a = s.in[0] ? s.in[0]->front() : s.imm[0];
            Value b = s.nIn > 1
                ? (s.in[1] ? s.in[1]->front() : s.imm[1]) : 0;
            Value c = s.nIn > 2
                ? (s.in[2] ? s.in[2]->front() : s.imm[2]) : 0;
            Value r = s.fn(a, b, c, nullptr);
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j])
                    s.in[j]->pop();
            ++is.fires;
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->push(now, r);
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::InstAcc: {
            InstSim &is = *s.inst;
            // Pure gates, cheapest first (the interpreted path checks
            // operands first; conjunction order is unobservable).
            if (now - is.lastFire < s.latency)
                break;
            bool ready = true;
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j] && !s.in[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            bool room = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->canPush()) {
                    room = false;
                    break;
                }
            if (!room)
                break;
            if (s.peStamp) {
                if (*s.peStamp == now)
                    break;
                *s.peStamp = now;
            }
            is.lastFire = now;
            Value a = s.in[0] ? s.in[0]->front() : s.imm[0];
            Value b = s.nIn > 1
                ? (s.in[1] ? s.in[1]->front() : s.imm[1]) : 0;
            Value c = s.nIn > 2
                ? (s.in[2] ? s.in[2]->front() : s.imm[2]) : 0;
            Value r = s.fn(a, b, c, &is.acc);
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j])
                    s.in[j]->pop();
            ++is.fires;
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->push(now, r);
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::InstSelfAcc: {
            InstSim &is = *s.inst;
            if (now - is.lastFire < s.latency)
                break;
            bool ready = true;
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j] && !s.in[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            bool room = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->canPush()) {
                    room = false;
                    break;
                }
            if (!room)
                break;
            if (s.peStamp) {
                if (*s.peStamp == now)
                    break;
                *s.peStamp = now;
            }
            is.lastFire = now;
            Value v = s.in[0] ? s.in[0]->front() : s.imm[0];
            is.acc = s.fn(is.acc, v, 0, nullptr);
            Value r = is.acc;
            for (int j = 0; j < s.nIn; ++j)
                if (s.in[j])
                    s.in[j]->pop();
            ++is.fires;
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->push(now, r);
            if (s.accResetEvery > 0 &&
                is.fires % s.accResetEvery == 0)
                is.acc = s.accInit;
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::InstGeneric:
            genericFire(rs, *s.inst, now, activity, peFiredCycle);
            break;
          case PlanStep::OutSimple: {
            OutPortSim &op = *s.outPort;
            bool ready = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            if (!op.writeSinksRoom())
                break;
            if (!op.sinksAccept(op.lanes))
                break;
            for (int j = 0; j < s.nOut; ++j) {
                Value v = s.outs[j]->front();
                s.outs[j]->pop();
                op.deliverElement(v);
            }
            ++op.fires;
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::OutLast: {
            OutPortSim &op = *s.outPort;
            bool ready = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            if (!op.writeSinksRoom())
                break;
            // Latch (don't deliver): finalizeIssue emits the last
            // vector. Writing lanes in place skips the interpreted
            // path's scratch copy + vector assignment.
            if (op.lastVec.size() != static_cast<size_t>(s.nOut))
                op.lastVec.resize(s.nOut);
            for (int j = 0; j < s.nOut; ++j) {
                op.lastVec[static_cast<size_t>(j)] = s.outs[j]->front();
                s.outs[j]->pop();
            }
            ++op.fires;
            op.lastValid = true;
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::OutEvery: {
            OutPortSim &op = *s.outPort;
            bool ready = true;
            for (int j = 0; j < s.nOut; ++j)
                if (!s.outs[j]->ready(now)) {
                    ready = false;
                    break;
                }
            if (!ready)
                break;
            bool keep = (op.fires + 1) % op.outputEvery == 0;
            if (keep) {
                if (!op.writeSinksRoom())
                    break;
                if (!op.sinksAccept(op.lanes))
                    break;
                for (int j = 0; j < s.nOut; ++j) {
                    Value v = s.outs[j]->front();
                    s.outs[j]->pop();
                    op.deliverElement(v);
                }
            } else {
                // Decimated fire: pop and discard, no scratch staging.
                for (int j = 0; j < s.nOut; ++j)
                    s.outs[j]->pop();
            }
            ++op.fires;
            fired = true;
            if constexpr (Rec)
                fired64 |= uint64_t{1} << i;
            break;
          }
          case PlanStep::OutGeneric:
            if (s.outPort->tryFire(now)) {
                fired = true;
                if constexpr (Rec)
                    fired64 |= uint64_t{1} << i;
            }
            break;
        }
    }
    if (fired) {
        rs.lastActivity = now;
        activity = true;
    }
}

void
runPlan(RegionSim &rs, const RegionPlan &plan, int64_t now,
        bool &activity, int64_t *peFiredCycle)
{
    uint64_t f = 0, l = 0;
    runPlanT<false>(rs, plan, now, activity, peFiredCycle, f, l);
}

void
runPlanRecord(RegionSim &rs, const RegionPlan &plan, int64_t now,
              bool &activity, int64_t *peFiredCycle, uint64_t &fired,
              uint64_t &latched)
{
    fired = 0;
    latched = 0;
    runPlanT<true>(rs, plan, now, activity, peFiredCycle, fired,
                   latched);
}

} // namespace dsa::sim::detail
