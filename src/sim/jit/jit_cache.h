/**
 * @file
 * Persistent on-disk object cache for JIT-compiled simulation kernels,
 * following the eval-cache store's durability conventions (see
 * `dse/cache_store.h`): single-writer files claimed via O_EXCL lock
 * files, atomic publish by rename, a checksummed sidecar manifest per
 * object, and quarantine-don't-crash loads — a corrupt `.so` or torn
 * manifest costs cache warmth, never correctness and never a crash.
 *
 * Layout of a cache directory (one per abi version + uid by default):
 *   obj-<key>.so        the compiled kernel (published by rename)
 *   obj-<key>.meta      checksummed manifest: key, abi, so size/hash,
 *                       ADG fingerprint, compiler version, flags
 *   obj-<key>.lock      O_EXCL compile claim, holds the owner pid;
 *                       stale (dead-owner) locks are broken
 *   quar-*              quarantined corrupt entries, kept for autopsy
 *
 * The <key> is content-addressed: a hash of the generated source, the
 * compiler identity, and the kernel ABI version (see jit_runtime).
 * Readers validate the manifest checksum, the recorded object hash,
 * and the abi before ever dlopen()ing a cached file, so workers
 * sharing the directory can race freely: exactly one wins the lock
 * and compiles; everyone else reuses the published object or, if they
 * find a half-written/corrupt entry, quarantines it and moves on.
 */

#ifndef DSA_SIM_JIT_JIT_CACHE_H
#define DSA_SIM_JIT_JIT_CACHE_H

#include <string>

#include "base/status.h"
#include "sim/jit/jit_stats.h"

namespace dsa::sim::jit {

/** Manifest payload recorded next to each published object. */
struct ObjectMeta
{
    std::string key;         ///< cache key (hex)
    std::string fingerprint; ///< canonical ADG fingerprint (info only)
    std::string compiler;    ///< compiler identity line
    std::string flags;       ///< compile flags used
};

/** Default shared cache dir: $DSA_SIM_JIT_DIR, else a per-uid,
 *  per-abi-version directory under $TMPDIR (default /tmp). */
std::string defaultCacheDir();

std::string objectPath(const std::string &dir, const std::string &key);
std::string metaPath(const std::string &dir, const std::string &key);

/** mkdir -p the cache directory. */
Status ensureCacheDir(const std::string &dir);

enum class ProbeResult {
    Miss,        ///< no (validated) object present
    Hit,         ///< *soPath names a validated object
    Quarantined, ///< a corrupt entry was found and set aside
};

/**
 * Look for a published, validated object for @p key. A present but
 * invalid entry (torn manifest, checksum mismatch, abi mismatch, size
 * mismatch — or an injected `jit.object.corrupt` fault) is renamed to
 * a `quar-` name so it is never re-served, and Quarantined is
 * returned (with a diagnostic in @p diag). Bumps @p stats.
 */
ProbeResult probeObject(const std::string &dir, const std::string &key,
                        JitStats &stats, std::string *soPath,
                        std::string *diag);

/**
 * Atomically publish @p tmpSo (a finished object inside @p dir) as
 * obj-<key>.so with its checksummed manifest. Object first, manifest
 * last, both by rename — a reader either sees a complete entry or no
 * manifest at all.
 */
Status publishObject(const std::string &dir, const std::string &key,
                     const std::string &tmpSo, const ObjectMeta &meta);

/**
 * The single-writer compile claim: an O_EXCL lock file holding the
 * owner pid. A lock whose owner is dead is stale and is broken
 * (unlink + retake). Losing the race is not an error — the loser
 * simply re-probes for the winner's published object.
 */
class CompileLock
{
  public:
    CompileLock() = default;
    ~CompileLock() { release(); }

    CompileLock(const CompileLock &) = delete;
    CompileLock &operator=(const CompileLock &) = delete;

    /** True when this process now owns the compile claim for @p key. */
    bool tryAcquire(const std::string &dir, const std::string &key);

    bool held() const { return held_; }

    /** Unlink the lock file (idempotent; also run by the destructor). */
    void release();

  private:
    bool held_ = false;
    std::string path_;
};

} // namespace dsa::sim::jit

#endif // DSA_SIM_JIT_JIT_CACHE_H
