/**
 * @file
 * Process-wide counters for the JIT simulation tier: how many kernel
 * requests were served from the in-memory registry, loaded from the
 * on-disk object cache, compiled fresh, or degraded (compile/dlopen
 * failure, quarantined object). Snapshots are plain value structs so
 * callers (DSE results, --sim-stats, tests) can diff before/after.
 */

#ifndef DSA_SIM_JIT_JIT_STATS_H
#define DSA_SIM_JIT_JIT_STATS_H

#include <cstdint>

namespace dsa::sim::jit {

struct JitStats
{
    int64_t requests = 0;       ///< acquire() calls (per armed program)
    int64_t memHits = 0;        ///< served by the in-process registry
    int64_t diskHits = 0;       ///< dlopen'd from the object cache
    int64_t compiles = 0;       ///< compiler invocations that succeeded
    int64_t compileFailures = 0;///< compiler missing/failed/faulted
    int64_t dlopenFailures = 0; ///< object built/loaded but not mappable
    int64_t quarantined = 0;    ///< corrupt cache entries set aside
    int64_t lockWaits = 0;      ///< lost an O_EXCL compile race, reused
    double compileMs = 0.0;     ///< total wall time inside the compiler

    JitStats
    operator-(const JitStats &o) const
    {
        JitStats d;
        d.requests = requests - o.requests;
        d.memHits = memHits - o.memHits;
        d.diskHits = diskHits - o.diskHits;
        d.compiles = compiles - o.compiles;
        d.compileFailures = compileFailures - o.compileFailures;
        d.dlopenFailures = dlopenFailures - o.dlopenFailures;
        d.quarantined = quarantined - o.quarantined;
        d.lockWaits = lockWaits - o.lockWaits;
        d.compileMs = compileMs - o.compileMs;
        return d;
    }
};

} // namespace dsa::sim::jit

#endif // DSA_SIM_JIT_JIT_STATS_H
