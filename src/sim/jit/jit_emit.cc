#include "sim/jit/jit_emit.h"

namespace dsa::sim::jit {

using detail::OutPortSim;
using detail::OutSink;
using detail::Pipe;
using detail::PlanStep;
using detail::PortSim;
using detail::StreamExec;
using dfg::StreamKind;

namespace {
std::string
num(int64_t v)
{
    return std::to_string(v);
}
} // namespace

KernelBuilder::KernelBuilder() = default;

void
KernelBuilder::line(const std::string &s)
{
    body_ += "    ";
    body_ += s;
    body_ += '\n';
}

int
KernelBuilder::stateSlot(StateRef::Kind k, void *p, bool writeback)
{
    // Mutable slots dedup by host lvalue: every action touching the
    // same ring head must read/write the same local.
    for (size_t i = 0; i < state_.size(); ++i)
        if (state_[i].kind == k && state_[i].p == p && p != nullptr)
            return static_cast<int>(i);
    StateRef r;
    r.kind = k;
    r.p = p;
    r.writeback = writeback;
    state_.push_back(r);
    return static_cast<int>(state_.size()) - 1;
}

int
KernelBuilder::constSlot(int64_t v)
{
    StateRef r;
    r.kind = StateRef::Const;
    r.constV = v;
    state_.push_back(r);
    return static_cast<int>(state_.size()) - 1;
}

KernelBuilder::PipeLoc &
KernelBuilder::pipe(Pipe *p)
{
    auto it = pipes_.find(p);
    if (it != pipes_.end())
        return it->second;
    PipeLoc loc;
    PtrRef pr;
    pr.kind = PtrRef::PipeVals;
    pr.obj = p;
    ptrs_.push_back(pr);
    loc.id = static_cast<int>(ptrs_.size()) - 1;
    loc.head = stateSlot(StateRef::U32, &p->head, true);
    loc.count = stateSlot(StateRef::U32, &p->count, true);
    loc.mask = constSlot(p->mask);
    return pipes_.emplace(p, loc).first->second;
}

KernelBuilder::PortLoc &
KernelBuilder::port(PortSim *ps)
{
    auto it = ports_.find(ps);
    if (it != ports_.end())
        return it->second;
    PortLoc loc;
    PtrRef pr;
    pr.kind = PtrRef::PortBuf;
    pr.obj = ps;
    ptrs_.push_back(pr);
    loc.id = static_cast<int>(ptrs_.size()) - 1;
    loc.head = stateSlot(StateRef::U32, &ps->bufHead, true);
    loc.count = stateSlot(StateRef::U32, &ps->bufCount, true);
    loc.mask = constSlot(ps->bufMask);
    return ports_.emplace(ps, loc).first->second;
}

int
KernelBuilder::portCur(PortSim *ps)
{
    PortLoc &loc = port(ps);
    if (loc.cur < 0)
        loc.cur = stateSlot(StateRef::U64, &ps->current[0], true);
    return loc.cur;
}

KernelBuilder::RingLoc &
KernelBuilder::ring(StreamExec *se)
{
    auto it = rings_.find(se);
    if (it != rings_.end())
        return it->second;
    RingLoc loc;
    PtrRef pr;
    pr.kind = PtrRef::RingData;
    pr.obj = se;
    ptrs_.push_back(pr);
    loc.id = static_cast<int>(ptrs_.size()) - 1;
    loc.head = stateSlot(StateRef::U32, &se->writeBuf.head, true);
    loc.count = stateSlot(StateRef::U32, &se->writeBuf.count, true);
    loc.mask = constSlot(se->writeBuf.mask);
    return rings_.emplace(se, loc).first->second;
}

KernelBuilder::SpaceLoc &
KernelBuilder::space(AddressSpace *sp)
{
    auto it = spaces_.find(sp);
    if (it != spaces_.end())
        return it->second;
    SpaceLoc loc;
    PtrRef pr;
    pr.kind = PtrRef::SpaceBytes;
    pr.obj = sp;
    bytes_.push_back(pr);
    loc.id = static_cast<int>(bytes_.size()) - 1;
    loc.size = constSlot(sp->size());
    return spaces_.emplace(sp, loc).first->second;
}

int
KernelBuilder::lastVec(OutPortSim *op, int lanes)
{
    auto it = lastVecs_.find(op);
    if (it != lastVecs_.end())
        return it->second;
    PtrRef pr;
    pr.kind = PtrRef::LastVec;
    pr.obj = op;
    pr.n = lanes;
    ptrs_.push_back(pr);
    int id = static_cast<int>(ptrs_.size()) - 1;
    lastVecs_.emplace(op, id);
    return id;
}

int
KernelBuilder::addrArr(StreamExec *se, bool idx)
{
    auto key = std::make_pair(se, idx ? 1 : 0);
    auto it = addrArrs_.find(key);
    if (it != addrArrs_.end())
        return it->second;
    PtrRef pr;
    pr.kind = idx ? PtrRef::IdxAddrs : PtrRef::Addrs;
    pr.obj = se;
    addrs_.push_back(pr);
    int id = static_cast<int>(addrs_.size()) - 1;
    addrArrs_.emplace(key, id);
    return id;
}

int
KernelBuilder::acc(detail::InstSim *is)
{
    auto it = accs_.find(is);
    if (it != accs_.end())
        return it->second;
    int slot = stateSlot(StateRef::U64, &is->acc, true);
    accs_.emplace(is, slot);
    return slot;
}

int
KernelBuilder::fn(OpFn f)
{
    auto it = fnIdx_.find(f);
    if (it != fnIdx_.end())
        return it->second;
    fns_.push_back(f);
    int id = static_cast<int>(fns_.size()) - 1;
    fnIdx_.emplace(f, id);
    return id;
}

int
KernelBuilder::trapSite()
{
    return trapSites_++;
}

std::string
KernelBuilder::pipePushStmt(Pipe *p, const std::string &val)
{
    PipeLoc &q = pipe(p);
    return "P" + num(q.id) + "[(s" + num(q.head) + " + s" +
           num(q.count) + ") & (u64)k" + num(q.mask) + "] = " + val +
           "; ++s" + num(q.count) + ";";
}

std::string
KernelBuilder::pipeFrontExpr(Pipe *p)
{
    PipeLoc &q = pipe(p);
    return "P" + num(q.id) + "[s" + num(q.head) + "]";
}

std::string
KernelBuilder::pipePopStmt(Pipe *p)
{
    PipeLoc &q = pipe(p);
    return "s" + num(q.head) + " = (s" + num(q.head) +
           " + 1) & (u64)k" + num(q.mask) + "; --s" + num(q.count) +
           ";";
}

std::string
KernelBuilder::operand(const PlanStep &s, int i)
{
    if (s.in[i])
        return pipeFrontExpr(s.in[i]);
    return "(u64)k" + num(constSlot(static_cast<int64_t>(s.imm[i])));
}

void
KernelBuilder::popOperands(const PlanStep &s)
{
    for (int j = 0; j < s.nIn; ++j)
        if (s.in[j])
            line(pipePopStmt(s.in[j]));
}

void
KernelBuilder::pushOuts(const PlanStep &s, const std::string &val)
{
    for (int j = 0; j < s.nOut; ++j)
        line(pipePushStmt(s.outs[j], val));
}

void
KernelBuilder::latch(PortSim *ps)
{
    ++actions_;
    PortLoc &t = port(ps);
    int cur = portCur(ps);
    line("{ s" + num(cur) + " = P" + num(t.id) + "[s" + num(t.head) +
         "]; s" + num(t.head) + " = (s" + num(t.head) +
         " + 1) & (u64)k" + num(t.mask) + "; --s" + num(t.count) +
         "; }");
}

void
KernelBuilder::fire(const PlanStep &s)
{
    ++actions_;
    int cur = portCur(s.port);
    line("{ const u64 v = s" + num(cur) + ";");
    for (int j = 0; j < s.nOut; ++j)
        line("  " + pipePushStmt(s.outs[j], "v"));
    line("}");
}

void
KernelBuilder::latchFire(const PlanStep &s)
{
    ++actions_;
    PortLoc &t = port(s.port);
    int cur = portCur(s.port);
    line("{ const u64 v = P" + num(t.id) + "[s" + num(t.head) +
         "]; s" + num(cur) + " = v; s" + num(t.head) + " = (s" +
         num(t.head) + " + 1) & (u64)k" + num(t.mask) + "; --s" +
         num(t.count) + ";");
    for (int j = 0; j < s.nOut; ++j)
        line("  " + pipePushStmt(s.outs[j], "v"));
    line("}");
}

void
KernelBuilder::inst(const PlanStep &s, bool withAcc)
{
    ++actions_;
    line("{ const u64 va = " + operand(s, 0) + ";");
    line("  const u64 vb = " +
         (s.nIn > 1 ? operand(s, 1) : std::string("0")) + ";");
    line("  const u64 vc = " +
         (s.nIn > 2 ? operand(s, 2) : std::string("0")) + ";");
    std::string accArg = withAcc ? "&s" + num(acc(s.inst))
                                 : std::string("(u64*)0");
    line("  const u64 r = F[" + num(fn(s.fn)) + "](va, vb, vc, " +
         accArg + ");");
    popOperands(s);
    pushOuts(s, "r");
    line("}");
}

void
KernelBuilder::inst2(const PlanStep &s, OpCode op)
{
    ++actions_;
    if (!s.in[0] || !s.in[1]) {
        ok_ = false;
        return;
    }
    line("{ const u64 va = " + pipeFrontExpr(s.in[0]) + ";");
    line("  const u64 vb = " + pipeFrontExpr(s.in[1]) + ";");
    switch (op) {
      case OpCode::FAdd:
        line("  const u64 r = db(fd(va) + fd(vb));");
        break;
      case OpCode::FMul:
        line("  const u64 r = db(fd(va) * fd(vb));");
        break;
      case OpCode::Add:
        line("  const u64 r = va + vb;");
        break;
      case OpCode::Mul:
        line("  const u64 r = (u64)((i64)va * (i64)vb);");
        break;
      default:
        ok_ = false;
        return;
    }
    line("  " + pipePopStmt(s.in[0]));
    line("  " + pipePopStmt(s.in[1]));
    pushOuts(s, "r");
    line("}");
}

void
KernelBuilder::selfAcc(const PlanStep &s, bool inlineFAdd, bool reset)
{
    ++actions_;
    int a = acc(s.inst);
    line("{ const u64 v = " + operand(s, 0) + ";");
    if (inlineFAdd)
        line("  s" + num(a) + " = db(fd(s" + num(a) + ") + fd(v));");
    else
        line("  s" + num(a) + " = F[" + num(fn(s.fn)) + "](s" +
             num(a) + ", v, 0, (u64*)0);");
    line("  const u64 r = s" + num(a) + ";");
    popOperands(s);
    pushOuts(s, "r");
    if (reset)
        line("  s" + num(a) + " = (u64)k" +
             num(constSlot(static_cast<int64_t>(s.accInit))) + ";");
    line("}");
}

void
KernelBuilder::sinkPushes(OutPortSim *op, const std::string &val)
{
    for (OutSink &sk : op->sinks) {
        if (!sk.wants())
            continue;
        if (sk.kind == OutSink::Kind::Write) {
            RingLoc &w = ring(sk.write);
            line("  P" + num(w.id) + "[(s" + num(w.head) + " + s" +
                 num(w.count) + ") & (u64)k" + num(w.mask) + "] = " +
                 val + "; ++s" + num(w.count) + ";");
        } else if (sk.kind == OutSink::Kind::Recurrence) {
            PortLoc &t = port(sk.target);
            line("  P" + num(t.id) + "[(s" + num(t.head) + " + s" +
                 num(t.count) + ") & (u64)k" + num(t.mask) + "] = " +
                 val + "; ++s" + num(t.count) + ";");
        } else {
            // Forward sinks feed machine-level queues the kernel does
            // not model; eligible regions never have them, but keep
            // the guard honest.
            ok_ = false;
            return;
        }
    }
}

void
KernelBuilder::outDeliver(const PlanStep &s)
{
    ++actions_;
    for (int j = 0; j < s.nOut; ++j) {
        line("{ const u64 v = " + pipeFrontExpr(s.outs[j]) + ";");
        line("  " + pipePopStmt(s.outs[j]));
        sinkPushes(s.outPort, "v");
        if (!ok_)
            return;
        line("}");
    }
}

void
KernelBuilder::outDiscard(const PlanStep &s)
{
    ++actions_;
    for (int j = 0; j < s.nOut; ++j)
        line(pipePopStmt(s.outs[j]));
}

void
KernelBuilder::outLatch(const PlanStep &s)
{
    ++actions_;
    int lv = lastVec(s.outPort, s.nOut);
    for (int j = 0; j < s.nOut; ++j) {
        line("P" + num(lv) + "[" + num(j) + "] = " +
             pipeFrontExpr(s.outs[j]) + ";");
        line(pipePopStmt(s.outs[j]));
    }
}

void
KernelBuilder::deliver(const StreamRef &sr, int32_t n)
{
    ++actions_;
    const std::string N = num(n);
    auto guard = [&](const std::string &addr, int eb, SpaceLoc &sp) {
        line("  if (" + addr + " < 0 || " + addr + " + " + num(eb) +
             " > k" + num(sp.size) + ") trap(" + num(trapSite()) +
             ");");
    };
    switch (sr.kind) {
      case StreamKind::LinearRead: {
        SpaceLoc &sp = space(sr.space);
        PortLoc &t = port(sr.se->target);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int a = addrArr(sr.se, false);
        line("{ const i64* a = A" + num(a) + " + (i64)s" + num(pos) +
             ";");
        line("  for (i64 i = 0; i < " + N + "; ++i) {");
        line("    const i64 ad = a[i];");
        line("  if (ad < 0 || ad + " + num(sr.elemB) + " > k" +
             num(sp.size) + ") trap(" + num(trapSite()) + ");");
        line("    u64 v = 0; __builtin_memcpy(&v, B" + num(sp.id) +
             " + ad, " + num(sr.elemB) + ");");
        line("    P" + num(t.id) + "[(s" + num(t.head) + " + s" +
             num(t.count) + " + (u64)i) & (u64)k" + num(t.mask) +
             "] = v;");
        line("  }");
        line("  s" + num(t.count) + " += " + N + "; s" + num(pos) +
             " += " + N + "; }");
        break;
      }
      case StreamKind::IndirectRead: {
        SpaceLoc &sp = space(sr.space);
        SpaceLoc &isp = space(sr.idxSpace);
        PortLoc &t = port(sr.se->target);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int ia = addrArr(sr.se, true);
        int base = constSlot(sr.base);
        line("{ for (i64 i = 0; i < " + N + "; ++i) {");
        line("    const i64 xa = A" + num(ia) + "[(i64)s" + num(pos) +
             " + i];");
        guard("xa", sr.idxElemB, isp);
        line("    u64 xv = 0; __builtin_memcpy(&xv, B" + num(isp.id) +
             " + xa, " + num(sr.idxElemB) + ");");
        line("    const i64 ad = k" + num(base) + " + (i64)xv * " +
             num(sr.elemB) + ";");
        guard("ad", sr.elemB, sp);
        line("    u64 v = 0; __builtin_memcpy(&v, B" + num(sp.id) +
             " + ad, " + num(sr.elemB) + ");");
        line("    P" + num(t.id) + "[(s" + num(t.head) + " + s" +
             num(t.count) + ") & (u64)k" + num(t.mask) +
             "] = v; ++s" + num(t.count) + ";");
        line("  }");
        line("  s" + num(pos) + " += " + N + "; }");
        break;
      }
      case StreamKind::LinearWrite: {
        SpaceLoc &sp = space(sr.space);
        RingLoc &w = ring(sr.se);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int a = addrArr(sr.se, false);
        line("{ const i64* a = A" + num(a) + " + (i64)s" + num(pos) +
             ";");
        line("  for (i64 i = 0; i < " + N + "; ++i) {");
        line("    const i64 ad = a[i];");
        line("  if (ad < 0 || ad + " + num(sr.elemB) + " > k" +
             num(sp.size) + ") trap(" + num(trapSite()) + ");");
        line("    const u64 v = P" + num(w.id) + "[(s" + num(w.head) +
             " + (u64)i) & (u64)k" + num(w.mask) + "];");
        line("    __builtin_memcpy(B" + num(sp.id) + " + ad, &v, " +
             num(sr.elemB) + ");");
        line("  }");
        line("  s" + num(w.head) + " = (s" + num(w.head) + " + " + N +
             ") & (u64)k" + num(w.mask) + "; s" + num(w.count) +
             " -= " + N + ";");
        line("  s" + num(pos) + " += " + N + "; }");
        break;
      }
      case StreamKind::IndirectWrite:
      case StreamKind::AtomicUpdate: {
        bool atomic = sr.kind == StreamKind::AtomicUpdate;
        SpaceLoc &sp = space(sr.space);
        SpaceLoc &isp = space(sr.idxSpace);
        RingLoc &w = ring(sr.se);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int ia = addrArr(sr.se, true);
        int base = constSlot(sr.base);
        line("{ for (i64 i = 0; i < " + N + "; ++i) {");
        line("    const i64 xa = A" + num(ia) + "[(i64)s" + num(pos) +
             " + i];");
        guard("xa", sr.idxElemB, isp);
        line("    u64 xv = 0; __builtin_memcpy(&xv, B" + num(isp.id) +
             " + xa, " + num(sr.idxElemB) + ");");
        line("    const i64 ad = k" + num(base) + " + (i64)xv * " +
             num(sr.elemB) + ";");
        guard("ad", sr.elemB, sp);
        line("    u64 v = P" + num(w.id) + "[s" + num(w.head) +
             "]; s" + num(w.head) + " = (s" + num(w.head) +
             " + 1) & (u64)k" + num(w.mask) + "; --s" + num(w.count) +
             ";");
        if (atomic) {
            line("    u64 o = 0; __builtin_memcpy(&o, B" +
                 num(sp.id) + " + ad, " + num(sr.elemB) + ");");
            line("    v = F[" + num(fn(sr.updateFn)) +
                 "](o, v, 0, (u64*)0);");
        }
        line("    __builtin_memcpy(B" + num(sp.id) + " + ad, &v, " +
             num(sr.elemB) + ");");
        line("  }");
        line("  s" + num(pos) + " += " + N + "; }");
        break;
      }
      case StreamKind::Const: {
        PortLoc &t = port(sr.se->target);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int cv = constSlot(static_cast<int64_t>(sr.constValue));
        line("{ const u64 v = (u64)k" + num(cv) + ";");
        line("  for (i64 i = 0; i < " + N + "; ++i)");
        line("    P" + num(t.id) + "[(s" + num(t.head) + " + s" +
             num(t.count) + " + (u64)i) & (u64)k" + num(t.mask) +
             "] = v;");
        line("  s" + num(t.count) + " += " + N + "; s" + num(pos) +
             " += " + N + "; }");
        break;
      }
      case StreamKind::Iota: {
        PortLoc &t = port(sr.se->target);
        int pos = stateSlot(StateRef::Size, &sr.se->pos, true);
        int a = addrArr(sr.se, false);
        line("{ const i64* a = A" + num(a) + " + (i64)s" + num(pos) +
             ";");
        line("  for (i64 i = 0; i < " + N + "; ++i)");
        line("    P" + num(t.id) + "[(s" + num(t.head) + " + s" +
             num(t.count) + " + (u64)i) & (u64)k" + num(t.mask) +
             "] = (u64)a[i];");
        line("  s" + num(t.count) + " += " + N + "; s" + num(pos) +
             " += " + N + "; }");
        break;
      }
      default:
        ok_ = false;
        break;
    }
}

void
KernelBuilder::endCycle()
{
    body_ += '\n';
}

Emitted
KernelBuilder::finish()
{
    Emitted em;
    if (!ok_)
        return em;
    std::string src;
    src.reserve(body_.size() + 4096);
    src += "// generated by the dsagen jit simulation tier (abi v";
    src += num(kAbiVersion);
    src += ")\n";
    src += "typedef unsigned long long u64;\n";
    src += "typedef long long i64;\n";
    src += "typedef u64 (*OpFn)(u64, u64, u64, u64*);\n";
    src += "typedef void (*TrapFn)(int);\n";
    src += "static inline double fd(u64 v) { double d; "
           "__builtin_memcpy(&d, &v, 8); return d; }\n";
    src += "static inline u64 db(double d) { u64 v; "
           "__builtin_memcpy(&v, &d, 8); return v; }\n";
    src += "extern \"C\" void ";
    src += kKernelSymbol;
    src += "(i64 m, i64* S, u64* const* PT, const i64* const* AT,\n";
    src += "    unsigned char* const* BT, const OpFn* F, TrapFn "
           "trap_)\n{\n";
    // Trap wrapper: the host callback aborts; tell the optimizer so
    // the guarded loads stay well-formed past a failed guard.
    src += "  auto trap = [&](int site) { trap_(site); "
           "__builtin_trap(); };\n";
    // Prologue: every table entry the body references becomes a
    // local, so ring cursors live in registers across the whole
    // chunk.
    for (size_t i = 0; i < ptrs_.size(); ++i)
        src += "  u64* const P" + num(static_cast<int64_t>(i)) +
               " = PT[" + num(static_cast<int64_t>(i)) + "];\n";
    for (size_t i = 0; i < addrs_.size(); ++i)
        src += "  const i64* const A" + num(static_cast<int64_t>(i)) +
               " = AT[" + num(static_cast<int64_t>(i)) + "];\n";
    for (size_t i = 0; i < bytes_.size(); ++i)
        src += "  unsigned char* const B" +
               num(static_cast<int64_t>(i)) + " = BT[" +
               num(static_cast<int64_t>(i)) + "];\n";
    for (size_t i = 0; i < state_.size(); ++i) {
        const StateRef &r = state_[i];
        if (r.kind == StateRef::Const)
            src += "  const i64 k" + num(static_cast<int64_t>(i)) +
                   " = S[" + num(static_cast<int64_t>(i)) + "];\n";
        else
            src += "  u64 s" + num(static_cast<int64_t>(i)) +
                   " = (u64)S[" + num(static_cast<int64_t>(i)) +
                   "];\n";
    }
    src += "  for (i64 K = 0; K < m; ++K) {\n";
    src += body_;
    src += "  }\n";
    for (size_t i = 0; i < state_.size(); ++i)
        if (state_[i].writeback)
            src += "  S[" + num(static_cast<int64_t>(i)) +
                   "] = (i64)s" + num(static_cast<int64_t>(i)) +
                   ";\n";
    src += "}\n";

    em.source = std::move(src);
    em.state = std::move(state_);
    em.ptrs = std::move(ptrs_);
    em.addrs = std::move(addrs_);
    em.bytes = std::move(bytes_);
    em.fns = std::move(fns_);
    return em;
}

} // namespace dsa::sim::jit
