/**
 * @file
 * C++ source emission for the JIT simulation tier: lower one armed
 * steady-state period program (the replay tier's micro-action list)
 * into a self-contained translation unit exporting a single C-ABI
 * kernel that executes `m` whole periods of straight-line, fixed-
 * operand code — no dispatch, no virtual pipes, every mask/arity/
 * immediate-shape baked.
 *
 * The generated kernel owns only the *value* mutations of the period
 * (pipe/port/ring occupancy, accumulators, stream cursors, memory
 * bytes); everything the interpreted replay loop also defers to chunk
 * end (timestamps, fire/pop counters, sink skip/take counters, memory
 * byte totals) stays host-side, so the kernel and the interpreted
 * loop are drop-in replacements for each other — bit-exactly.
 *
 * ABI: the kernel reads/writes four caller-built tables —
 *   S: int64 scalars (mutable ring heads/counts, accumulators, stream
 *      cursors; plus arm-time constants: masks, immediates, sizes)
 *   P: Value* arrays (pipe rings, port buffers, write rings, lastVec)
 *   A: const int64* arrays (pregenerated address/index sequences)
 *   B: byte base pointers (address spaces)
 *   F: pre-dispatched opcode evaluators (host OpFn pointers)
 * plus a trap callback for out-of-bounds memory access (mirrors the
 * interpreter's DSA_ASSERT abort; never returns). Because every
 * runtime quantity flows through the tables, the source text is a
 * function of program *structure* only — mutated designs with the
 * same steady-state shape share one compiled object.
 */

#ifndef DSA_SIM_JIT_JIT_EMIT_H
#define DSA_SIM_JIT_JIT_EMIT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfg/stream.h"
#include "isa/opcode.h"
#include "sim/compute_plan.h"
#include "sim/machine_state.h"

namespace dsa::sim::jit {

/** Kernel trap callback: out-of-bounds access diagnostic; must abort. */
using TrapFn = void (*)(int site);

/** C ABI of a generated kernel (u64 == Value at the ABI level). */
using KernelFn = void (*)(long long m, long long *S, Value *const *P,
                          const long long *const *A,
                          unsigned char *const *B, const OpFn *F,
                          TrapFn trap);

/** Bump when the generated-code contract changes (cache key input). */
constexpr int kAbiVersion = 1;
constexpr const char *kKernelSymbol = "dsa_jit_kernel";

/** How to (re)fill one S-table scalar before each kernel call. */
struct StateRef
{
    enum Kind : uint8_t {
        Const, ///< fixed at arm time (masks, immediates, space sizes)
        U32,   ///< *(uint32_t*)p — ring heads/counts
        U64,   ///< *(uint64_t*)p — latched values, accumulators
        Size,  ///< *(size_t*)p — stream cursors
    };
    Kind kind = Const;
    bool writeback = false; ///< kernel mutates it: copy back after call
    void *p = nullptr;
    int64_t constV = 0;
};

/** How to fill one pointer-table entry before each kernel call. */
struct PtrRef
{
    enum Kind : uint8_t {
        PipeVals,   ///< P: Pipe::vals
        PortBuf,    ///< P: PortSim::buf
        RingData,   ///< P: StreamExec::writeBuf storage
        LastVec,    ///< P: OutPortSim::lastVec (resized to n first)
        Addrs,      ///< A: StreamExec::addrs.data()
        IdxAddrs,   ///< A: StreamExec::idxAddrs.data()
        SpaceBytes, ///< B: AddressSpace backing bytes (mutable)
    };
    Kind kind = PipeVals;
    void *obj = nullptr;
    int n = 0; ///< LastVec: lane count
};

/** Emission result: source text + the table-binding recipe. */
struct Emitted
{
    std::string source;
    std::vector<StateRef> state; ///< S layout
    std::vector<PtrRef> ptrs;    ///< P layout
    std::vector<PtrRef> addrs;   ///< A layout
    std::vector<PtrRef> bytes;   ///< B layout
    std::vector<OpFn> fns;       ///< F contents (stable for the arm)
};

/** JIT-facing view of one replayed stream delivery binding (the
 *  replay tier's private slot struct, flattened). */
struct StreamRef
{
    dfg::StreamKind kind = dfg::StreamKind::LinearRead;
    int elemB = 0;
    int idxElemB = 0;
    int64_t base = 0;
    OpFn updateFn = nullptr;
    Value constValue = 0; ///< Const generators
    detail::StreamExec *se = nullptr;
    AddressSpace *space = nullptr;
    AddressSpace *idxSpace = nullptr;
};

/**
 * Builds one kernel: the caller replays the armed period program
 * through the action methods below (one call per micro-action, in
 * program order), then takes the finished source + binding recipe
 * with finish(). Any shape the emitter cannot lower bit-exactly
 * (forward sinks, unexpected stream kinds) flips ok() to false; the
 * caller then simply stays on the interpreted replay loop.
 */
class KernelBuilder
{
  public:
    KernelBuilder();

    /// @name One call per period micro-action, in program order.
    /// Semantics mirror the interpreted replay loop case-for-case.
    /// @{
    void latch(detail::PortSim *ps);
    void fire(const detail::PlanStep &s);
    void latchFire(const detail::PlanStep &s);
    void inst(const detail::PlanStep &s, bool withAcc);
    /** Devirtualized two-pipe-operand ALU: op is one of
     *  FAdd/FMul/Add/Mul (the replay tier's inline quartet). */
    void inst2(const detail::PlanStep &s, OpCode op);
    void selfAcc(const detail::PlanStep &s, bool inlineFAdd, bool reset);
    void outDeliver(const detail::PlanStep &s);
    void outDiscard(const detail::PlanStep &s);
    void outLatch(const detail::PlanStep &s);
    void deliver(const StreamRef &sr, int32_t n);
    /// @}

    /** Marks the end of one period (separator comment only). */
    void endCycle();

    bool ok() const { return ok_; }
    /** Number of actions emitted so far (size guard for callers). */
    int actions() const { return actions_; }

    /** Assemble the final translation unit + binding recipe. */
    Emitted finish();

  private:
    struct PipeLoc
    {
        int id;
        int head, count; ///< S slots (mutable)
        int mask;        ///< S slot (const)
    };
    struct PortLoc
    {
        int id;
        int head, count; ///< S slots (mutable)
        int mask;        ///< S slot (const)
        int cur = -1;    ///< S slot for current[0], lazy
    };
    struct RingLoc
    {
        int id;
        int head, count; ///< S slots (mutable)
        int mask;        ///< S slot (const)
    };
    struct SpaceLoc
    {
        int id;   ///< B slot
        int size; ///< S slot (const)
    };

    int stateSlot(StateRef::Kind k, void *p, bool writeback);
    int constSlot(int64_t v);
    PipeLoc &pipe(detail::Pipe *p);
    PortLoc &port(detail::PortSim *ps);
    int portCur(detail::PortSim *ps);
    RingLoc &ring(detail::StreamExec *se);
    SpaceLoc &space(AddressSpace *sp);
    int lastVec(detail::OutPortSim *op, int lanes);
    int addrArr(detail::StreamExec *se, bool idx);
    int acc(detail::InstSim *is);
    int fn(OpFn f);
    int trapSite();

    /** Emitted expression for operand i of an instruction step (pipe
     *  front or arm-time-constant immediate). */
    std::string operand(const detail::PlanStep &s, int i);
    void popOperands(const detail::PlanStep &s);
    void pushOuts(const detail::PlanStep &s, const std::string &val);
    /** Sink appends for one delivered element (Write/Recurrence only;
     *  a Forward sink flips ok_). */
    void sinkPushes(detail::OutPortSim *op, const std::string &val);
    std::string pipePushStmt(detail::Pipe *p, const std::string &val);
    std::string pipeFrontExpr(detail::Pipe *p);
    std::string pipePopStmt(detail::Pipe *p);
    void line(const std::string &s);

    bool ok_ = true;
    int actions_ = 0;
    int trapSites_ = 0;
    std::string body_;
    std::vector<StateRef> state_;
    std::vector<PtrRef> ptrs_, addrs_, bytes_;
    std::vector<OpFn> fns_;
    std::map<detail::Pipe *, PipeLoc> pipes_;
    std::map<detail::PortSim *, PortLoc> ports_;
    std::map<detail::StreamExec *, RingLoc> rings_;
    std::map<AddressSpace *, SpaceLoc> spaces_;
    std::map<detail::OutPortSim *, int> lastVecs_;
    std::map<std::pair<detail::StreamExec *, int>, int> addrArrs_;
    std::map<detail::InstSim *, int> accs_;
    std::map<OpFn, int> fnIdx_;
};

} // namespace dsa::sim::jit

#endif // DSA_SIM_JIT_JIT_EMIT_H
