#include "sim/jit/jit_runtime.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/fault.h"
#include "base/hashing.h"
#include "base/logging.h"
#include "sim/jit/jit_cache.h"

namespace dsa::sim::jit {

namespace {

constexpr const char *kCompileFlags =
    "-O2 -fPIC -shared -std=c++17 -w";

bool
syncMode()
{
    static const bool v = [] {
        const char *e = std::getenv("DSA_SIM_JIT_SYNC");
        return e && *e && *e != '0';
    }();
    return v;
}

/** Run @p cmd through the shell, capturing combined output; true on
 *  exit status 0. */
bool
runCommand(const std::string &cmd, std::string &out)
{
    out.clear();
    FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return false;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    int st = ::pclose(p);
    return st != -1 && WIFEXITED(st) && WEXITSTATUS(st) == 0;
}

std::string
firstLine(const std::string &s)
{
    size_t eol = s.find('\n');
    std::string line = eol == std::string::npos ? s : s.substr(0, eol);
    if (line.size() > 200)
        line.resize(200);
    return line;
}

std::string
shellQuote(const std::string &s)
{
    std::string q = "'";
    for (char c : s) {
        if (c == '\'')
            q += "'\\''";
        else
            q += c;
    }
    q += "'";
    return q;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

struct JitRuntime::Impl
{
    struct Entry
    {
        enum State { Cold, Pending, Ready, Failed };
        State state = Cold;
        KernelFn fn = nullptr;
        bool compileRequested = false;
        std::string diag;
    };

    struct Job
    {
        std::string dir, key, source, fingerprint;
        bool allowCompile = false;
    };

    mutable std::mutex mu;
    std::condition_variable cv;      ///< worker wakeup
    std::condition_variable doneCv;  ///< sync-mode waiters
    std::map<std::string, Entry> entries; ///< keyed "dir|key"
    std::deque<Job> jobs;
    JitStats stats;
    std::thread worker;
    bool workerStarted = false;
    bool stopping = false;
    bool cxxProbed = false;
    std::string cxx;    ///< compiler command ("" = none usable)
    std::string cxxId;  ///< its --version first line

    void
    probeCompilerLocked()
    {
        if (cxxProbed)
            return;
        cxxProbed = true;
        std::vector<std::string> cands;
        if (const char *e = std::getenv("DSA_JIT_CXX"); e && *e)
            cands.push_back(e);
        if (const char *e = std::getenv("CXX"); e && *e)
            cands.push_back(e);
        cands.push_back("c++");
        cands.push_back("g++");
        cands.push_back("clang++");
        for (const std::string &c : cands) {
            std::string out;
            if (runCommand(shellQuote(c) + " --version 2>/dev/null",
                           out) &&
                !firstLine(out).empty()) {
                cxx = c;
                cxxId = firstLine(out);
                return;
            }
        }
    }

    void
    ensureWorkerLocked()
    {
        if (workerStarted)
            return;
        workerStarted = true;
        worker = std::thread([this] { run(); });
    }

    void
    run()
    {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            cv.wait(lk, [&] { return stopping || !jobs.empty(); });
            if (stopping && jobs.empty())
                return;
            Job job = std::move(jobs.front());
            jobs.pop_front();
            lk.unlock();
            Entry done = process(job);
            lk.lock();
            Entry &e = entries[job.dir + "|" + job.key];
            // A Cold verdict must not clobber an upgrade that raced in
            // behind us: if compile permission arrived while we were
            // probing, requeue instead of parking.
            if (done.state == Entry::Cold && e.compileRequested) {
                Job again = job;
                again.allowCompile = true;
                jobs.push_back(std::move(again));
                continue;
            }
            e.state = done.state;
            e.fn = done.fn;
            e.diag = done.diag;
            doneCv.notify_all();
        }
    }

    /** Load obj at @p path, honoring the dlopen fault site. Never
     *  dlclose: kernels must outlive every machine using them. */
    bool
    loadObject(const std::string &path, KernelFn &fn, std::string &diag)
    {
        if (fault::shouldFire("jit.dlopen.fail")) {
            diag = "fault-injected dlopen failure";
            return false;
        }
        void *h = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (!h) {
            const char *e = ::dlerror();
            diag = std::string("dlopen: ") + (e ? e : "unknown error");
            return false;
        }
        void *sym = ::dlsym(h, kKernelSymbol);
        if (!sym) {
            const char *e = ::dlerror();
            diag = std::string("dlsym: ") + (e ? e : "symbol missing");
            return false;
        }
        fn = reinterpret_cast<KernelFn>(sym);
        return true;
    }

    /** The whole native path for one key, off-thread: probe cache,
     *  maybe compile, dlopen. Returns the terminal entry state. */
    Entry
    process(const Job &job)
    {
        Entry out;
        auto fail = [&](const char *kind, const std::string &why,
                        int64_t JitStats::*ctr) {
            std::lock_guard<std::mutex> g(mu);
            stats.*ctr += 1;
            out.state = Entry::Failed;
            out.diag = std::string(kind) + ": " + why;
            DSA_WARN("jit: ", out.diag, " (key ", job.key,
                     "); staying on interpreted replay");
            return out;
        };

        if (Status st = ensureCacheDir(job.dir); !st.ok())
            return fail("cache", st.toString(),
                        &JitStats::compileFailures);

        std::string soPath, diag;
        {
            JitStats local;
            ProbeResult pr =
                probeObject(job.dir, job.key, local, &soPath, &diag);
            {
                std::lock_guard<std::mutex> g(mu);
                stats.quarantined += local.quarantined;
                if (pr == ProbeResult::Hit)
                    ++stats.diskHits;
            }
            if (pr == ProbeResult::Hit) {
                if (loadObject(soPath, out.fn, diag)) {
                    out.state = Entry::Ready;
                    return out;
                }
                return fail("dlopen", diag, &JitStats::dlopenFailures);
            }
        }

        if (!job.allowCompile) {
            out.state = Entry::Cold;
            return out;
        }

        if (fault::shouldFire("jit.compile.fail"))
            return fail("compile", "fault-injected compile failure",
                        &JitStats::compileFailures);

        std::string cxxCmd, cxxVer;
        {
            std::lock_guard<std::mutex> g(mu);
            probeCompilerLocked();
            cxxCmd = cxx;
            cxxVer = cxxId;
        }
        if (cxxCmd.empty())
            return fail("compile", "no working C++ compiler found",
                        &JitStats::compileFailures);

        CompileLock lock;
        if (!lock.tryAcquire(job.dir, job.key)) {
            // Lost the O_EXCL race: wait for the winner to publish,
            // then reuse its object. Bounded — a dead or wedged
            // winner degrades us to the interpreted tier, not a hang.
            {
                std::lock_guard<std::mutex> g(mu);
                ++stats.lockWaits;
            }
            for (int spin = 0; spin < 500; ++spin) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                JitStats local;
                if (probeObject(job.dir, job.key, local, &soPath,
                                &diag) == ProbeResult::Hit) {
                    {
                        std::lock_guard<std::mutex> g(mu);
                        ++stats.diskHits;
                    }
                    if (loadObject(soPath, out.fn, diag)) {
                        out.state = Entry::Ready;
                        return out;
                    }
                    return fail("dlopen", diag,
                                &JitStats::dlopenFailures);
                }
                if (lock.tryAcquire(job.dir, job.key))
                    break; // winner died without publishing: take over
            }
            if (!lock.held())
                return fail("compile",
                            "timed out waiting for a racing compile",
                            &JitStats::compileFailures);
        }

        // We own the claim. Re-probe once under the lock (the previous
        // owner may have published between our probe and the take).
        {
            JitStats local;
            if (probeObject(job.dir, job.key, local, &soPath, &diag) ==
                ProbeResult::Hit) {
                lock.release();
                {
                    std::lock_guard<std::mutex> g(mu);
                    ++stats.diskHits;
                }
                if (loadObject(soPath, out.fn, diag)) {
                    out.state = Entry::Ready;
                    return out;
                }
                return fail("dlopen", diag, &JitStats::dlopenFailures);
            }
        }

        std::string pid = std::to_string(static_cast<long>(::getpid()));
        std::string src = job.dir + "/src-" + job.key + "-" + pid + ".cc";
        std::string tmpSo = job.dir + "/tmp-" + job.key + "-" + pid + ".so";
        {
            FILE *f = std::fopen(src.c_str(), "w");
            if (!f)
                return fail("compile", "cannot write kernel source",
                            &JitStats::compileFailures);
            std::fwrite(job.source.data(), 1, job.source.size(), f);
            std::fclose(f);
        }

        double t0 = nowMs();
        std::string log;
        bool okc = runCommand(shellQuote(cxxCmd) + " " + kCompileFlags +
                                  " " + shellQuote(src) + " -o " +
                                  shellQuote(tmpSo) + " 2>&1",
                              log);
        double elapsed = nowMs() - t0;
        // DSA_SIM_JIT_KEEP_SRC=1: leave src-<key>-<pid>.cc behind for
        // inspection (debugging the emitter / perf work).
        if (const char *keep = std::getenv("DSA_SIM_JIT_KEEP_SRC");
            !(keep && *keep && *keep != '0'))
            ::unlink(src.c_str());
        if (!okc) {
            ::unlink(tmpSo.c_str());
            return fail("compile", firstLine(log),
                        &JitStats::compileFailures);
        }

        ObjectMeta meta;
        meta.key = job.key;
        meta.fingerprint = job.fingerprint;
        meta.compiler = cxxVer;
        meta.flags = kCompileFlags;
        if (Status st = publishObject(job.dir, job.key, tmpSo, meta);
            !st.ok()) {
            ::unlink(tmpSo.c_str());
            return fail("compile", "publish: " + st.toString(),
                        &JitStats::compileFailures);
        }
        lock.release();
        {
            std::lock_guard<std::mutex> g(mu);
            ++stats.compiles;
            stats.compileMs += elapsed;
        }
        if (loadObject(objectPath(job.dir, job.key), out.fn, diag))
            out.state = Entry::Ready;
        else
            return fail("dlopen", diag, &JitStats::dlopenFailures);
        return out;
    }
};

JitRuntime &
JitRuntime::instance()
{
    static JitRuntime rt;
    return rt;
}

JitRuntime::Impl *
JitRuntime::impl()
{
    // Lazy so a process that never jits pays nothing.
    static std::once_flag once;
    std::call_once(once, [this] { impl_ = new Impl; });
    return impl_;
}

JitRuntime::~JitRuntime()
{
    if (!impl_)
        return;
    {
        std::lock_guard<std::mutex> g(impl_->mu);
        impl_->stopping = true;
        impl_->jobs.clear();
    }
    impl_->cv.notify_all();
    if (impl_->worker.joinable())
        impl_->worker.join();
    // impl_ (and every loaded object) leaks deliberately: kernels may
    // still be referenced by machines torn down after us.
}

bool
JitRuntime::hostSupported()
{
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    return true;
#else
    // Generated kernels assume little-endian memcpy element access.
    return false;
#endif
}

const std::string &
JitRuntime::compilerId()
{
    Impl *im = impl();
    std::lock_guard<std::mutex> g(im->mu);
    im->probeCompilerLocked();
    return im->cxxId;
}

std::string
JitRuntime::makeKey(const std::string &source,
                    const std::string &compilerId, uint64_t optionsHash)
{
    uint64_t h = xxhash64(source.data(), source.size(), /*seed=*/0x1515);
    h = hashCombine(h, xxhash64(compilerId.data(), compilerId.size(), 0));
    h = hashCombine(h, static_cast<uint64_t>(kAbiVersion));
    h = hashCombine(h, optionsHash);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

KernelFn
JitRuntime::acquire(const std::string &dir, const std::string &key,
                    const std::string &source,
                    const std::function<std::string()> &fingerprint,
                    bool allowCompile)
{
    if (!hostSupported())
        return nullptr;
    Impl *im = impl();
    std::unique_lock<std::mutex> lk(im->mu);
    ++im->stats.requests;
    std::string id = dir + "|" + key;
    auto it = im->entries.find(id);
    if (it != im->entries.end()) {
        Impl::Entry &e = it->second;
        if (allowCompile)
            e.compileRequested = true;
        if (e.state == Impl::Entry::Ready) {
            ++im->stats.memHits;
            return e.fn;
        }
        if (e.state == Impl::Entry::Failed)
            return nullptr;
        if (e.state == Impl::Entry::Cold && allowCompile) {
            // Threshold crossed after the probe-only pass: upgrade.
            e.state = Impl::Entry::Pending;
            im->jobs.push_back({dir, key, source,
                                fingerprint ? fingerprint()
                                            : std::string(),
                                true});
            im->ensureWorkerLocked();
            im->cv.notify_all();
        } else if (e.state == Impl::Entry::Cold) {
            return nullptr;
        }
    } else {
        Impl::Entry e;
        e.state = Impl::Entry::Pending;
        e.compileRequested = allowCompile;
        im->entries.emplace(id, e);
        im->jobs.push_back({dir, key, source,
                            fingerprint ? fingerprint() : std::string(),
                            allowCompile});
        im->ensureWorkerLocked();
        im->cv.notify_all();
    }
    if (!syncMode())
        return nullptr;
    im->doneCv.wait(lk, [&] {
        Impl::Entry &e = im->entries[id];
        return e.state != Impl::Entry::Pending;
    });
    Impl::Entry &e = im->entries[id];
    if (e.state == Impl::Entry::Ready) {
        ++im->stats.memHits;
        return e.fn;
    }
    return nullptr;
}

std::string
JitRuntime::diagnostic(const std::string &dir, const std::string &key)
{
    Impl *im = impl();
    std::lock_guard<std::mutex> g(im->mu);
    auto it = im->entries.find(dir + "|" + key);
    return it == im->entries.end() ? std::string() : it->second.diag;
}

JitStats
JitRuntime::stats() const
{
    Impl *im = const_cast<JitRuntime *>(this)->impl();
    std::lock_guard<std::mutex> g(im->mu);
    return im->stats;
}

extern "C" void
dsaJitTrap(int site)
{
    DSA_PANIC("jit kernel out-of-bounds trap (site ", site, ")");
}

} // namespace dsa::sim::jit
