#include "sim/jit/jit_cache.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "base/fault.h"
#include "base/hashing.h"
#include "base/logging.h"
#include "base/subprocess.h" // errnoStatus
#include "sim/jit/jit_emit.h" // kAbiVersion

namespace dsa::sim::jit {

namespace {

constexpr const char *kMetaMagic = "dsagen-jit-meta v1";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Whole-file read; false on any I/O failure. */
bool
readFile(const std::string &path, std::string &out)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

/** Move a corrupt entry aside so it is never re-served. */
void
quarantine(const std::string &dir, const std::string &key,
           const std::string &why, JitStats &stats)
{
    std::string tag = dir + "/quar-" + key + "-" +
                      std::to_string(static_cast<long>(::getpid()));
    // Manifest first: once it is gone no reader will trust the object.
    ::rename(metaPath(dir, key).c_str(), (tag + ".meta").c_str());
    ::rename(objectPath(dir, key).c_str(), (tag + ".so").c_str());
    ++stats.quarantined;
    DSA_WARN("jit cache: quarantined object ", key, " (", why, ")");
}

/** One "k v" line of the manifest; value may contain spaces. */
bool
metaLine(const std::string &text, const char *field, std::string &out)
{
    std::string prefix = std::string(field) + " ";
    size_t at = 0;
    while (at < text.size()) {
        size_t eol = text.find('\n', at);
        if (eol == std::string::npos)
            eol = text.size();
        if (text.compare(at, prefix.size(), prefix) == 0) {
            out = text.substr(at + prefix.size(), eol - at - prefix.size());
            return true;
        }
        at = eol + 1;
    }
    return false;
}

} // namespace

std::string
defaultCacheDir()
{
    if (const char *e = std::getenv("DSA_SIM_JIT_DIR"); e && *e)
        return e;
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
    while (!base.empty() && base.back() == '/')
        base.pop_back();
    return base + "/dsagen-jit-v" + std::to_string(kAbiVersion) +
           "-uid" + std::to_string(static_cast<long>(::getuid()));
}

std::string
objectPath(const std::string &dir, const std::string &key)
{
    return dir + "/obj-" + key + ".so";
}

std::string
metaPath(const std::string &dir, const std::string &key)
{
    return dir + "/obj-" + key + ".meta";
}

Status
ensureCacheDir(const std::string &dir)
{
    if (dir.empty())
        return Status::invalidArgument("empty jit cache dir");
    // mkdir -p: create each prefix, tolerating pre-existing components.
    for (size_t i = 1; i <= dir.size(); ++i) {
        if (i != dir.size() && dir[i] != '/')
            continue;
        std::string prefix = dir.substr(0, i);
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return errnoStatus("jit.cache.mkdir", errno);
    }
    struct ::stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return Status::invalidArgument("jit cache path '" + dir +
                                       "' is not a directory");
    return {};
}

ProbeResult
probeObject(const std::string &dir, const std::string &key,
            JitStats &stats, std::string *soPath, std::string *diag)
{
    std::string mpath = metaPath(dir, key);
    std::string opath = objectPath(dir, key);
    std::string meta;
    if (!readFile(mpath, meta)) {
        // No manifest => nothing published (an orphan .so from a
        // killed writer is invisible until someone re-publishes).
        return ProbeResult::Miss;
    }

    auto bad = [&](const std::string &why) {
        if (diag)
            *diag = why;
        quarantine(dir, key, why, stats);
        return ProbeResult::Quarantined;
    };

    // Manifest self-check: last line is "sum <xxhash64 of preceding>".
    size_t sumAt = meta.rfind("sum ");
    if (sumAt == std::string::npos || (sumAt != 0 && meta[sumAt - 1] != '\n'))
        return bad("manifest missing checksum line");
    std::string sumLine = meta.substr(sumAt + 4);
    while (!sumLine.empty() &&
           (sumLine.back() == '\n' || sumLine.back() == '\r'))
        sumLine.pop_back();
    uint64_t want = xxhash64(meta.data(), sumAt, /*seed=*/0);
    if (sumLine != hex64(want))
        return bad("manifest checksum mismatch");

    std::string field;
    if (!metaLine(meta, "magic", field) || field != kMetaMagic)
        return bad("manifest magic mismatch");
    if (!metaLine(meta, "key", field) || field != key)
        return bad("manifest key mismatch");
    if (!metaLine(meta, "abi", field) ||
        field != std::to_string(kAbiVersion))
        return bad("manifest abi mismatch");
    std::string soSize, soHash;
    if (!metaLine(meta, "so-size", field) || (soSize = field).empty() ||
        !metaLine(meta, "so-hash", field) || (soHash = field).empty())
        return bad("manifest incomplete");

    std::string so;
    if (!readFile(opath, so))
        return bad("object unreadable");
    if (std::to_string(so.size()) != soSize)
        return bad("object size mismatch");
    if (hex64(xxhash64(so.data(), so.size(), /*seed=*/0)) != soHash)
        return bad("object checksum mismatch");
    if (fault::shouldFire("jit.object.corrupt"))
        return bad("fault-injected object corruption");

    if (soPath)
        *soPath = opath;
    return ProbeResult::Hit;
}

Status
publishObject(const std::string &dir, const std::string &key,
              const std::string &tmpSo, const ObjectMeta &meta)
{
    std::string so;
    if (!readFile(tmpSo, so))
        return errnoStatus("jit.cache.read-tmp", errno);

    // Object first (rename within the cache dir), manifest last: a
    // reader either finds a complete entry or no manifest at all.
    std::string opath = objectPath(dir, key);
    if (::rename(tmpSo.c_str(), opath.c_str()) != 0)
        return errnoStatus("jit.cache.publish-so", errno);

    std::string body;
    body += std::string("magic ") + kMetaMagic + "\n";
    body += "key " + key + "\n";
    body += "abi " + std::to_string(kAbiVersion) + "\n";
    body += "so-size " + std::to_string(so.size()) + "\n";
    body += "so-hash " + hex64(xxhash64(so.data(), so.size(), 0)) + "\n";
    body += "fp " + meta.fingerprint + "\n";
    body += "compiler " + meta.compiler + "\n";
    body += "flags " + meta.flags + "\n";
    body += "sum " + hex64(xxhash64(body.data(), body.size(), 0)) + "\n";

    std::string tmpMeta = metaPath(dir, key) + ".tmp-" +
                          std::to_string(static_cast<long>(::getpid()));
    int fd = ::open(tmpMeta.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
    if (fd < 0)
        return errnoStatus("jit.cache.meta-open", errno);
    size_t off = 0;
    while (off < body.size()) {
        ssize_t n = ::write(fd, body.data() + off, body.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmpMeta.c_str());
            return errnoStatus("jit.cache.meta-write", err);
        }
        off += static_cast<size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmpMeta.c_str(), metaPath(dir, key).c_str()) != 0) {
        int err = errno;
        ::unlink(tmpMeta.c_str());
        return errnoStatus("jit.cache.publish-meta", err);
    }
    return {};
}

bool
CompileLock::tryAcquire(const std::string &dir, const std::string &key)
{
    DSA_ASSERT(!held_, "compile lock reacquired while held");
    std::string path = dir + "/obj-" + key + ".lock";
    for (int attempt = 0; attempt < 2; ++attempt) {
        int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0666);
        if (fd >= 0) {
            std::string pid =
                std::to_string(static_cast<long>(::getpid())) + "\n";
            ssize_t n = ::write(fd, pid.data(), pid.size());
            (void)n;
            ::close(fd);
            held_ = true;
            path_ = path;
            return true;
        }
        if (errno != EEXIST)
            return false;
        // Someone holds the claim. Break it only if its owner is dead.
        std::string owner;
        long ownerPid = 0;
        if (readFile(path, owner))
            ownerPid = std::atol(owner.c_str());
        if (ownerPid > 0 && (::kill(static_cast<pid_t>(ownerPid), 0) == 0 ||
                             errno != ESRCH))
            return false; // live owner (or unknowable): lose the race
        if (ownerPid == 0 && !owner.empty())
            return false; // unparsable owner: be conservative
        ::unlink(path.c_str());
        // Retry once: another contender may win the retake, which is
        // fine — exactly one compiler per key either way.
    }
    return false;
}

void
CompileLock::release()
{
    if (!held_)
        return;
    ::unlink(path_.c_str());
    held_ = false;
    path_.clear();
}

} // namespace dsa::sim::jit
