/**
 * @file
 * Process-wide JIT runtime for the simulation tier: turns generated
 * kernel source into callable native functions, asynchronously.
 *
 * acquire() is the only entry point the simulator uses. It is
 * non-blocking by design: the first call for a key registers it and
 * hands the heavy work (cache probe, compiler invocation, dlopen) to
 * a single background worker thread, returning nullptr; the armed
 * region keeps replaying through the interpreted loop until a later
 * call finds the kernel Ready. When anything on the native path fails
 * — no compiler on the host, a compile error, a dlopen failure, an
 * injected fault — the entry parks in Failed with a diagnostic and
 * the simulation permanently (and silently, beyond a log line)
 * continues on the interpreted replay tier: bit-identical results,
 * just slower.
 *
 * Keys are content-addressed — hash(source text, compiler identity,
 * kernel ABI version, sim-options hash) — so every design whose armed
 * period lowers to the same source shares one object, in memory and
 * on disk. The on-disk side is `jit_cache`; loaded objects are never
 * dlclose()d (kernels may be executing on other threads at exit; the
 * bounded leak is deliberate).
 *
 * Env knobs:
 *   DSA_SIM_JIT_DIR    object cache directory override
 *   DSA_SIM_JIT_SYNC   =1: acquire() blocks until the kernel is
 *                      terminal (Ready/Failed) — deterministic tests
 *   DSA_JIT_CXX        compiler override (else $CXX, c++, g++, clang++)
 *   DSA_SIM_JIT_KEEP_SRC  =1: keep the generated src-<key>-<pid>.cc
 *                      beside the cache (debugging the emitter)
 *
 * Fault sites (DSA_FAULT): jit.compile.fail, jit.dlopen.fail, and —
 * in jit_cache — jit.object.corrupt.
 */

#ifndef DSA_SIM_JIT_JIT_RUNTIME_H
#define DSA_SIM_JIT_JIT_RUNTIME_H

#include <cstdint>
#include <functional>
#include <string>

#include "sim/jit/jit_emit.h"
#include "sim/jit/jit_stats.h"

namespace dsa::sim::jit {

class JitRuntime
{
  public:
    static JitRuntime &instance();

    /** Static host gate: little-endian with dlopen support. */
    static bool hostSupported();

    /**
     * Compiler identity line (e.g. the first line of `$CXX
     * --version`), discovered once per process; empty when no working
     * compiler exists — callers may still acquire(): cached objects
     * built elsewhere remain loadable.
     */
    const std::string &compilerId();

    /** Content-addressed cache key for a generated kernel. */
    static std::string makeKey(const std::string &source,
                               const std::string &compilerId,
                               uint64_t optionsHash);

    /**
     * Fetch-or-start the kernel for @p key. Returns the callable
     * function when Ready, nullptr otherwise. @p allowCompile gates
     * invoking the compiler (the hot-threshold upgrade); a previous
     * probe-only request is upgraded by a later allowCompile call.
     * With DSA_SIM_JIT_SYNC=1 the call blocks until terminal.
     *
     * @p fingerprint is invoked at most once, and only when this call
     * starts a new background job for the key: the ADG fingerprint is
     * informational manifest metadata, and computing it costs tens of
     * microseconds — warm acquires (memory hits, repeat requests)
     * must not pay that on every Machine.
     */
    KernelFn acquire(const std::string &dir, const std::string &key,
                     const std::string &source,
                     const std::function<std::string()> &fingerprint,
                     bool allowCompile);

    /** Last recorded failure diagnostic for @p key ("" when none). */
    std::string diagnostic(const std::string &dir,
                           const std::string &key);

    JitStats stats() const;

    ~JitRuntime();

  private:
    JitRuntime() = default;
    struct Impl;
    Impl *impl();

    Impl *impl_ = nullptr;
};

/** Kernel OOB trap callback: logs the site and aborts (the native
 *  analogue of the interpreter's always-on bounds DSA_ASSERT). */
extern "C" void dsaJitTrap(int site);

} // namespace dsa::sim::jit

#endif // DSA_SIM_JIT_JIT_RUNTIME_H
