#include "sim/report.h"

#include <sstream>

#include "base/table.h"

namespace dsa::sim {

std::string
utilizationReport(const SimResult &result, const adg::Adg &adg)
{
    std::ostringstream os;
    if (!result.ok) {
        os << "simulation failed: " << result.error << "\n";
        return os.str();
    }
    os << "cycles: " << result.cycles << "\n\n";

    Table pes({"PE", "fires", "activity"});
    for (const auto &[node, fires] : result.peFires) {
        double act = result.cycles
            ? static_cast<double>(fires) / result.cycles : 0;
        pes.addRow({adg.node(node).name, std::to_string(fires),
                    Table::fmt(100 * act, 1) + "%"});
    }
    os << pes.render() << "\n";

    Table mems({"memory", "bytes", "avg B/cycle", "peak B/cycle"});
    for (const auto &[node, bytes] : result.memBytes) {
        const auto &m = adg.node(node).mem();
        double avg = result.cycles
            ? static_cast<double>(bytes) / result.cycles : 0;
        mems.addRow({adg.node(node).name, std::to_string(bytes),
                     Table::fmt(avg, 2), std::to_string(m.widthBytes)});
    }
    os << mems.render();

    Table regions({"region", "fires", "end cycle"});
    for (size_t r = 0; r < result.regions.size(); ++r)
        regions.addRow({std::to_string(r),
                        std::to_string(result.regions[r].fires),
                        std::to_string(result.regions[r].endCycle)});
    os << "\n" << regions.render();
    return os.str();
}

} // namespace dsa::sim
