#include "sim/memory_image.h"

#include "base/logging.h"

namespace dsa::sim {

void
AddressSpace::ensure(int64_t bytes)
{
    if (bytes > static_cast<int64_t>(bytes_.size()))
        bytes_.resize(static_cast<size_t>(bytes), 0);
}

MemImage
MemImage::build(const ir::KernelSource &kernel, const ir::ArrayStore &store,
                const compiler::Placement &placement)
{
    MemImage img;
    for (const auto &decl : kernel.arrays) {
        const auto &loc = placement.loc(decl.name);
        AddressSpace &sp = img.space(loc.space);
        sp.ensure(loc.baseBytes + decl.length * decl.elemBytes + 64);
        const auto &data = store.data(decl.name);
        for (int64_t i = 0; i < decl.length; ++i)
            sp.store(loc.baseBytes + i * decl.elemBytes, decl.elemBytes,
                     data[static_cast<size_t>(i)]);
    }
    // Headroom so zero-length spaces still exist.
    img.main.ensure(64);
    img.spad.ensure(64);
    return img;
}

void
MemImage::extract(const ir::KernelSource &kernel,
                  const compiler::Placement &placement,
                  ir::ArrayStore &store) const
{
    for (const auto &decl : kernel.arrays) {
        const auto &loc = placement.loc(decl.name);
        const AddressSpace &sp = space(loc.space);
        auto &data = store.data(decl.name);
        for (int64_t i = 0; i < decl.length; ++i) {
            Value v = sp.load(loc.baseBytes + i * decl.elemBytes,
                              decl.elemBytes);
            // Sign-extend sub-word integers (floats are 8-byte).
            if (decl.elemBytes < 8 && !decl.isFloat) {
                int shift = 64 - decl.elemBytes * 8;
                v = static_cast<Value>(
                    (static_cast<int64_t>(v << shift)) >> shift);
            }
            data[static_cast<size_t>(i)] = v;
        }
    }
}

} // namespace dsa::sim
