/**
 * @file
 * Compiled steady-state tier: at sim-build time each mapped region's
 * dataflow is lowered into a flattened *compute plan* — a fixed array
 * of micro-ops in exactly the order the interpreted tick visits the
 * region's ports, instructions, and output ports. Every micro-op
 * carries resolved operand pipe pointers, a pre-dispatched opcode
 * function, and (for shared PEs) a direct arbitration-stamp slot, so
 * a steady-state region cycle runs as straight-line C++ with no
 * NodeId lookups, no opInfo/evalOp dispatch, and no per-tick operand
 * vector walks.
 *
 * Semantics contract: running a region's plan for one cycle is
 * bit-exact with the interpreted `tickRegion` body for the
 * Running-state port/instruction/out-port sweep. Anything the plan
 * cannot specialize (stream-join control) becomes an InstGeneric step
 * that calls the shared generic fire routine, so the contract holds
 * by construction. The simulator's oracle chain (dense -> sparse ->
 * compiled) enforces it end to end via SimOptions::checkCompiled.
 */

#ifndef DSA_SIM_COMPUTE_PLAN_H
#define DSA_SIM_COMPUTE_PLAN_H

#include <cstdint>

#include "base/logging.h"
#include "isa/opcode.h"
#include "sim/machine_state.h"

namespace dsa::sim::detail {

/** One specialized micro-op of a region's steady-state cycle. */
struct PlanStep
{
    enum Kind : uint8_t {
        /** Scalar input port: lanes==1, no reuse, no pop throttle. */
        PortSimple,
        /** Any other input port: delegate to PortSim::tryFire. */
        PortGeneric,
        /** Plain instruction: no control, no accumulator. */
        InstSimple,
        /** Acc/FAcc with register: operand + latency-gated refire. */
        InstAcc,
        /** Self-accumulating op (acc = op(acc, v)), optional reset. */
        InstSelfAcc,
        /** Stream-join control (or anything else unusual): delegate
         *  to the generic fire routine. */
        InstGeneric,
        /** Output port with outputEvery==1 (element-per-fire). */
        OutSimple,
        /** Last-only output port (outputEvery==-1): latches the final
         *  vector, delivered at issue finalization. */
        OutLast,
        /** Decimating output port (outputEvery==K>1): pops every
         *  fire, delivers every K-th. */
        OutEvery,
        /** Any other output port: delegate to OutPortSim::tryFire. */
        OutGeneric,
    };

    // Field order is deliberate: everything the per-cycle sweep and
    // the replay loop touch for pipe-operand steps (kind/arities,
    // element pointer, operand pipes, output array, fn) packs into
    // the first 64 bytes; immediates and accumulator config live in
    // the second cacheline.
    Kind kind = InstGeneric;
    uint8_t nIn = 0;       ///< instruction arity (InstSimple/Acc)
    uint8_t nOut = 0;      ///< entries in outs[]
    uint8_t latency = 0;   ///< InstAcc/InstSelfAcc refire gate
    union {
        PortSim *port;
        InstSim *inst;
        OutPortSim *outPort;
    };
    Pipe *in[3] = {};          ///< operand pipes (null => imm[i])
    Pipe **outs = nullptr;     ///< arena array: output pipes (ports/
                               ///  instructions); lane pipes (OutSimple)
    OpFn fn = nullptr;         ///< pre-dispatched opcode evaluator
    int64_t *peStamp = nullptr;  ///< shared-PE arbitration slot
    Value imm[3] = {};
    int64_t accResetEvery = 0;   ///< InstSelfAcc periodic reset
    Value accInit = 0;
};

/** A region's lowered steady-state cycle. */
struct RegionPlan
{
    PlanStep *steps = nullptr;
    int numSteps = 0;
};

/**
 * Lower @p rs into a compute plan. Pipes and instruction state are
 * referenced in place, so the plan is valid for the lifetime of the
 * owning machine; step storage comes from @p arena.
 */
RegionPlan buildRegionPlan(RegionSim &rs, int64_t *peFiredCycle,
                           SimArena &arena);

/**
 * Execute one steady-state cycle of @p plan: the port -> instruction
 * -> output-port sweep of the interpreted tick, bit-exactly. Sets
 * @p activity (and the region's lastActivity) iff anything fired.
 */
void runPlan(RegionSim &rs, const RegionPlan &plan, int64_t now,
             bool &activity, int64_t *peFiredCycle);

/**
 * As runPlan, but additionally records which steps acted this cycle:
 * bit i of @p fired is set when step i fired, bit i of @p latched when
 * a PortSimple step latched a fresh vector from its buffer (which
 * mutates port state even when the subsequent push is rejected). The
 * pair is the per-cycle half of a steady-state period trace; stream
 * deliveries are recorded by the caller. Plans with more than 64
 * steps are not traceable (the replay tier checks this bound).
 */
void runPlanRecord(RegionSim &rs, const RegionPlan &plan, int64_t now,
                   bool &activity, int64_t *peFiredCycle,
                   uint64_t &fired, uint64_t &latched);

/**
 * Replay one recorded step action with no gate evaluation: performs
 * exactly the state mutation runPlan would have performed for a step
 * whose gates passed (@p fired) and/or whose PortSimple refill ran
 * (@p latched). Only specialized step kinds are replayable; the
 * replay tier never arms a plan containing generic steps. Defined
 * inline: the replay inner loop calls it per recorded action, and the
 * call overhead would otherwise dominate the replayed cycle.
 */
inline void
fireStep(RegionSim &rs, PlanStep &s, int64_t now, bool fired,
         bool latched, int64_t *peFiredCycle)
{
    // Gate-free action replay. Each case performs exactly the state
    // mutation of the corresponding runPlanT case's success path; the
    // period-recurrence proof in the replay tier guarantees the gates
    // would have passed.
    (void)peFiredCycle;
    switch (s.kind) {
      case PlanStep::PortSimple: {
        PortSim &ps = *s.port;
        if (latched) {
            ps.current[0] = ps.buf[ps.bufHead];
            ps.bufHead = (ps.bufHead + 1) & ps.bufMask;
            --ps.bufCount;
            ps.reuseLeft = 1;
        }
        if (fired) {
            Value v = ps.current[0];
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->push(now, v);
            ps.reuseLeft = 0;
            ps.lastPop = now;
            ++ps.pops;
        }
        break;
      }
      case PlanStep::InstSimple:
      case PlanStep::InstAcc: {
        InstSim &is = *s.inst;
        if (s.peStamp)
            *s.peStamp = now;
        is.lastFire = now;
        Value a = s.in[0] ? s.in[0]->front() : s.imm[0];
        Value b = s.nIn > 1
            ? (s.in[1] ? s.in[1]->front() : s.imm[1]) : 0;
        Value c = s.nIn > 2
            ? (s.in[2] ? s.in[2]->front() : s.imm[2]) : 0;
        Value r = s.fn(a, b, c,
                       s.kind == PlanStep::InstAcc ? &is.acc : nullptr);
        for (int j = 0; j < s.nIn; ++j)
            if (s.in[j])
                s.in[j]->pop();
        ++is.fires;
        for (int j = 0; j < s.nOut; ++j)
            s.outs[j]->push(now, r);
        break;
      }
      case PlanStep::InstSelfAcc: {
        InstSim &is = *s.inst;
        if (s.peStamp)
            *s.peStamp = now;
        is.lastFire = now;
        Value v = s.in[0] ? s.in[0]->front() : s.imm[0];
        is.acc = s.fn(is.acc, v, 0, nullptr);
        Value r = is.acc;
        for (int j = 0; j < s.nIn; ++j)
            if (s.in[j])
                s.in[j]->pop();
        ++is.fires;
        for (int j = 0; j < s.nOut; ++j)
            s.outs[j]->push(now, r);
        if (s.accResetEvery > 0 && is.fires % s.accResetEvery == 0)
            is.acc = s.accInit;
        break;
      }
      case PlanStep::OutSimple: {
        OutPortSim &op = *s.outPort;
        for (int j = 0; j < s.nOut; ++j) {
            Value v = s.outs[j]->front();
            s.outs[j]->pop();
            op.deliverElement(v);
        }
        ++op.fires;
        break;
      }
      case PlanStep::OutLast: {
        OutPortSim &op = *s.outPort;
        if (op.lastVec.size() != static_cast<size_t>(s.nOut))
            op.lastVec.resize(s.nOut);
        for (int j = 0; j < s.nOut; ++j) {
            op.lastVec[static_cast<size_t>(j)] = s.outs[j]->front();
            s.outs[j]->pop();
        }
        ++op.fires;
        op.lastValid = true;
        break;
      }
      case PlanStep::OutEvery: {
        OutPortSim &op = *s.outPort;
        bool keep = (op.fires + 1) % op.outputEvery == 0;
        if (keep) {
            for (int j = 0; j < s.nOut; ++j) {
                Value v = s.outs[j]->front();
                s.outs[j]->pop();
                op.deliverElement(v);
            }
        } else {
            for (int j = 0; j < s.nOut; ++j)
                s.outs[j]->pop();
        }
        ++op.fires;
        break;
      }
      case PlanStep::PortGeneric:
      case PlanStep::InstGeneric:
      case PlanStep::OutGeneric:
        DSA_ASSERT(false, "generic plan step in a replayed period");
        break;
    }
    (void)rs;
}

} // namespace dsa::sim::detail

#endif // DSA_SIM_COMPUTE_PLAN_H
