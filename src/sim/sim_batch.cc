#include "sim/sim_batch.h"

#include <chrono>

#include "base/logging.h"
#include "sim/jit/jit_runtime.h"
#include "sim/machine_state.h"

namespace dsa::sim {

SimBatchResult
simulateBatch(const std::vector<SimJob> &jobs)
{
    SimBatchResult out;
    out.results.reserve(jobs.size());
    out.jobMs.reserve(jobs.size());
    SimArena arena;
    const jit::JitStats jitBase = jit::JitRuntime::instance().stats();
    auto start = std::chrono::steady_clock::now();
    for (const SimJob &job : jobs) {
        DSA_ASSERT(job.prog && job.sched && job.adg && job.mem,
                   "simulateBatch: incomplete job");
        auto t0 = std::chrono::steady_clock::now();
        out.results.push_back(simulateShared(*job.prog, *job.sched,
                                             *job.adg, *job.mem, job.opts,
                                             &arena));
        auto t1 = std::chrono::steady_clock::now();
        out.jobMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    auto end = std::chrono::steady_clock::now();
    out.wallMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    out.arenaBytes = arena.footprint();
    out.jitStats = jit::JitRuntime::instance().stats() - jitBase;
    return out;
}

} // namespace dsa::sim
