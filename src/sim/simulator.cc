#include "sim/simulator.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>

#include "base/logging.h"

namespace dsa::sim {

using adg::Adg;
using adg::NodeId;
using adg::NodeKind;
using adg::Sharing;
using dfg::CtrlSpec;
using dfg::LinearPattern;
using dfg::Region;
using dfg::Stream;
using dfg::StreamKind;
using dfg::Vertex;
using dfg::VertexId;
using dfg::VertexKind;

namespace {

/** A fixed-latency, bounded, in-order value pipe (a routed path). */
struct Pipe
{
    int latency = 1;
    int capacity = 8;
    std::deque<std::pair<int64_t, Value>> q;

    bool canPush() const { return static_cast<int>(q.size()) < capacity; }
    void push(int64_t now, Value v) { q.emplace_back(now + latency, v); }
    bool ready(int64_t now) const
    {
        return !q.empty() && q.front().first <= now;
    }
    Value front() const { return q.front().second; }
    void pop() { q.pop_front(); }
    bool empty() const { return q.empty(); }
};

struct StreamExec;
struct PortSim;

/**
 * A persistent forwarded-scalar channel. The queue survives the
 * consumer's per-issue port resets; a machine-level non-empty counter
 * lets the per-cycle pump skip the forward scan entirely while every
 * channel is drained (the common state).
 */
struct FwdQueue
{
    std::deque<Value> q;
    int *nonEmptyCount = nullptr;

    void
    push(Value v)
    {
        if (q.empty() && nonEmptyCount)
            ++*nonEmptyCount;
        q.push_back(v);
    }

    void
    pop()
    {
        q.pop_front();
        if (q.empty() && nonEmptyCount)
            --*nonEmptyCount;
    }

    Value front() const { return q.front(); }
    bool empty() const { return q.empty(); }
};

/** Where an output port's elements go. */
struct OutSink
{
    enum class Kind { Write, Recurrence, Forward };
    Kind kind = Kind::Write;
    int64_t skip = 0;     ///< skip this many elements first
    int64_t take = -1;    ///< then take this many (-1 = all)
    int64_t seen = 0;
    int64_t taken = 0;
    StreamExec *write = nullptr;  ///< Write sink
    PortSim *target = nullptr;    ///< Recurrence sink
    /**
     * Forward sink: values land in a persistent machine-level queue
     * (surviving the consumer's per-issue port resets) and are moved
     * into the consumer's port as it runs.
     */
    FwdQueue *fwdQueue = nullptr;

    bool wants() const { return seen >= skip && (take < 0 || taken < take); }
};

/** Input port (sync element) simulation state. */
struct PortSim
{
    int lanes = 1;
    int64_t reuse = 1;
    int capacity = 64;
    std::deque<Value> buffer;
    std::vector<Value> current;
    int64_t reuseLeft = 0;
    std::vector<std::vector<Pipe *>> lanePipes;
    int64_t minPopInterval = 0;
    int64_t lastPop = -1'000'000;
    int64_t pops = 0;

    bool
    roomFor(int n) const
    {
        return static_cast<int>(buffer.size()) + n <= capacity;
    }

    void
    deliver(Value v)
    {
        buffer.push_back(v);
    }

    bool
    tryFire(int64_t now)
    {
        if (reuseLeft == 0) {
            if (static_cast<int>(buffer.size()) < lanes)
                return false;
            current.assign(buffer.begin(), buffer.begin() + lanes);
            buffer.erase(buffer.begin(), buffer.begin() + lanes);
            reuseLeft = std::max<int64_t>(1, reuse);
        }
        if (now - lastPop < minPopInterval)
            return false;
        for (int l = 0; l < lanes; ++l)
            for (Pipe *p : lanePipes[l])
                if (!p->canPush())
                    return false;
        for (int l = 0; l < lanes; ++l)
            for (Pipe *p : lanePipes[l])
                p->push(now, current[static_cast<size_t>(l)]);
        --reuseLeft;
        lastPop = now;
        ++pops;
        return true;
    }

    void
    resetForIssue()
    {
        buffer.clear();
        current.clear();
        reuseLeft = 0;
    }
};

/** Output port simulation state. */
struct OutPortSim
{
    int lanes = 1;
    int64_t outputEvery = 1;
    std::vector<Pipe *> lanePipes;
    std::vector<OutSink> sinks;
    int64_t fires = 0;
    std::vector<Value> lastVec;
    bool lastValid = false;
    /** Source is an accumulator: its init value stands in when the
     *  issue produced no elements (zero-trip reductions). */
    bool hasFallback = false;
    Value fallbackInit = 0;

    bool
    sinksAccept(int n) const
    {
        for (const OutSink &s : sinks) {
            if (!s.wants())
                continue;
            // Writes are checked via their own buffer capacity and
            // forwards buffer in an unbounded queue.
            if (s.kind == OutSink::Kind::Recurrence && s.target &&
                !s.target->roomFor(n))
                return false;
        }
        return true;
    }

    void deliverElement(Value v);

    bool tryFire(int64_t now);

    void
    resetForIssue()
    {
        fires = 0;
        lastVec.clear();
        lastValid = false;
        for (OutSink &s : sinks) {
            s.seen = 0;
            s.taken = 0;
        }
    }
};

/** One stream's execution state for the current issue. */
struct StreamExec
{
    const Stream *st = nullptr;
    int regionIdx = -1;
    // Pregenerated per-issue address (or value) sequences.
    std::vector<int64_t> addrs;
    std::vector<int64_t> idxAddrs;
    size_t pos = 0;
    PortSim *target = nullptr;       // reads
    std::deque<Value> writeBuf;      // writes/atomics: values from port
    int writeBufCap = 32;
    int64_t nextReady = 0;           // scalar-fallback throttle
    bool openDone = false;           // open-ended write finished
    /** Index space, resolved once at build (indirect kinds only). */
    AddressSpace *idxSpace = nullptr;

    bool
    readsDone() const
    {
        return pos >= addrs.size();
    }

    bool
    done() const
    {
        switch (st->kind) {
          case StreamKind::LinearWrite:
          case StreamKind::IndirectWrite:
          case StreamKind::AtomicUpdate:
            return (pos >= addrs.size() && writeBuf.empty()) ||
                   (st->openEnded && openDone && writeBuf.empty());
          default:
            return readsDone();
        }
    }
};

/** Instruction simulation state. */
struct InstSim
{
    const Vertex *vx = nullptr;
    std::vector<Pipe *> inPipes;  // null for immediates
    std::vector<Value> imms;
    std::vector<Pipe *> outPipes;
    Value acc = 0;
    int64_t fires = 0;
    int64_t lastFire = -1'000'000;
    NodeId pe = adg::kInvalidNode;
    /** PE is temporally shared (resolved at build; saves a node lookup
     *  on every fire attempt). */
    bool sharedPe = false;

    bool
    operandsReady(int64_t now) const
    {
        for (size_t i = 0; i < inPipes.size(); ++i)
            if (inPipes[i] && !inPipes[i]->ready(now))
                return false;
        return true;
    }

    Value
    operandValue(size_t i) const
    {
        return inPipes[i] ? inPipes[i]->front() : imms[i];
    }
};

void
OutPortSim::deliverElement(Value v)
{
    for (OutSink &s : sinks) {
        bool want = s.wants();
        ++s.seen;
        if (!want)
            continue;
        ++s.taken;
        if (s.kind == OutSink::Kind::Write) {
            s.write->writeBuf.push_back(v);
        } else if (s.kind == OutSink::Kind::Forward) {
            s.fwdQueue->push(v);
        } else {
            s.target->deliver(v);
        }
    }
}

bool
OutPortSim::tryFire(int64_t now)
{
    for (Pipe *p : lanePipes)
        if (!p->ready(now))
            return false;
    bool keep = outputEvery > 0 ? ((fires + 1) % outputEvery == 0)
                                : false;
    if (keep || outputEvery == -1) {
        // Check write-sink buffer room.
        for (const OutSink &s : sinks) {
            if (s.kind == OutSink::Kind::Write && s.wants() &&
                static_cast<int>(s.write->writeBuf.size()) + lanes >
                    s.write->writeBufCap)
                return false;
        }
        if (keep && !sinksAccept(lanes))
            return false;
    }
    std::vector<Value> vec;
    for (Pipe *p : lanePipes) {
        vec.push_back(p->front());
        p->pop();
    }
    ++fires;
    if (outputEvery == -1) {
        lastVec = vec;
        lastValid = true;
    } else if (keep) {
        for (Value v : vec)
            deliverElement(v);
    }
    return true;
}

/** Expand a pattern with reissue adjustments applied. */
std::vector<int64_t>
expandPattern(const LinearPattern &base, int64_t baseShift,
              int64_t lenShift)
{
    LinearPattern p = base;
    p.baseBytes += baseShift;
    p.len1 += lenShift;
    return p.expandAddrs();
}

/** Region issue/lifecycle state. */
enum class RegionState {
    WaitDep,      ///< waiting on via-memory producer regions
    WaitCmd,      ///< control core issuing stream commands
    Running,
    Finalizing,   ///< last-value delivery + write drain
    DoneIssue,
    Complete
};

const char *
regionStateName(RegionState st)
{
    switch (st) {
      case RegionState::WaitDep: return "wait-dep";
      case RegionState::WaitCmd: return "wait-cmd";
      case RegionState::Running: return "running";
      case RegionState::Finalizing: return "finalizing";
      case RegionState::DoneIssue: return "done-issue";
      case RegionState::Complete: return "complete";
    }
    return "?";
}

struct RegionSim
{
    const Region *reg = nullptr;
    int idx = -1;
    RegionState state = RegionState::WaitCmd;
    int64_t stateUntil = 0;
    // Re-issue enumeration over outer loops (outermost first).
    std::vector<int64_t> outerIdx;
    int64_t lastActivity = 0;
    int quiesceWindow = 16;
    int64_t endCycle = 0;

    std::vector<PortSim> inPorts;      // by vertex id (sparse)
    std::vector<OutPortSim> outPorts;  // by vertex id (sparse)
    std::vector<InstSim> insts;
    std::vector<std::unique_ptr<Pipe>> pipes;
    std::vector<StreamExec> streams;   // by stream id
    std::vector<int> waitOnRegions;    // region-level dependences
    int64_t completedIssues = 0;

    /// @name Build-time hot-loop caches (contents never change after
    /// Machine::build; both the dense oracle and the sparse fast path
    /// iterate these instead of re-filtering per cycle)
    /// @{
    std::vector<int> realInPorts;      ///< vertex ids with lane pipes
    std::vector<int> realOutPorts;     ///< vertex ids with lane pipes
    std::vector<int> genStreams;       ///< Const/Iota stream ids
    std::vector<int> fallbackStreams;  ///< scalar-fallback stream ids
    std::vector<int> throttledPorts;   ///< in-port ids, minPopInterval>0
    /** (instruction index, op latency) of accumulate instructions —
     *  the only instructions whose firing is gated on a future time. */
    std::vector<std::pair<int, int>> accInsts;
    /// @}

    bool
    allReadsDone() const
    {
        for (const StreamExec &se : streams) {
            const Stream &st = *se.st;
            if (st.kind == StreamKind::LinearRead ||
                st.kind == StreamKind::IndirectRead ||
                st.kind == StreamKind::Const || st.kind == StreamKind::Iota) {
                if (!se.readsDone())
                    return false;
            }
        }
        return true;
    }

    bool
    allWritesDone() const
    {
        for (const StreamExec &se : streams) {
            const Stream &st = *se.st;
            if (st.kind == StreamKind::LinearWrite ||
                st.kind == StreamKind::IndirectWrite ||
                st.kind == StreamKind::AtomicUpdate) {
                if (!se.done())
                    return false;
            }
        }
        return true;
    }
};

/** The whole-machine simulation. */
class Machine
{
  public:
    Machine(const dfg::DecoupledProgram &prog, const mapper::Schedule &sched,
            const Adg &adg, MemImage &mem, const SimOptions &opts)
        : prog_(prog), sched_(sched), adg_(adg), mem_(mem), opts_(opts)
    {
        build();
    }

    SimResult run();

  private:
    void build();
    void buildRegion(int r);
    void startIssue(RegionSim &rs, int64_t now,
                    const std::map<int, int64_t> *ivsOverride = nullptr);
    void finalizeIssue(RegionSim &rs, int64_t now);
    bool advanceIssue(RegionSim &rs);
    void tickStreams(int64_t now, bool &activity);
    void tickRegion(RegionSim &rs, int64_t now, bool &activity);
    void fireInstruction(RegionSim &rs, InstSim &is, int64_t now,
                         bool &activity);
    /** Phase-script / configuration-group controller; true when any
     *  controller state (script cursor, active group) moved. */
    bool tickSequencer(int64_t now);
    /** Move forwarded scalars into starving consumer ports. */
    void pumpForwards(int64_t now, bool &activity);
    /** Whole program retired? */
    bool allDone() const;
    /** Periodic DSA_SIM_TRACE state dump. */
    void traceDump(int64_t now) const;

    /** The original dense time-stepped loop (the oracle). */
    SimResult runDense();
    /** Event-driven loop: active-set ticking + idle-cycle skipping. */
    SimResult runSparse();
    /**
     * Earliest future cycle (> @p now) at which anything *time-gated*
     * can change: command-issue/reconfiguration deadlines, routed-path
     * arrivals, pop-interval and accumulate-latency throttles,
     * scalar-fallback stream throttles, quiesce/drain windows. Every
     * other transition is driven by same-cycle activity, so a cycle
     * with no progress and no event before this time stays idle.
     * INT64_MAX when nothing is pending (a true deadlock).
     */
    int64_t nextEventTime(int64_t now) const;
    /** Record a region lifecycle transition (keeps the sparse loop's
     *  progress flag and active-region list in sync). */
    void setState(RegionSim &rs, RegionState st);
    /** Regions not yet retired (ascending), rebuilt when stale. */
    void refreshActiveRegions();

    int64_t issueOverhead(const RegionSim &rs) const;
    bool forwardsSatisfied(const RegionSim &rs) const;
    /** Region retired everything it will ever run. */
    bool regionDone(const RegionSim &rs) const;
    /** Fill per-region/PE/memory stats (success and abort paths). */
    void fillStats(SimResult &res, int64_t now) const;
    /** Diagnostic naming stalled regions, ports, FIFO occupancies. */
    std::string stallDiagnostic(int64_t now, int64_t lastProgress) const;
    bool seq_ = false;

    /** Per-memory-node plan: space pointer, bandwidth parameters, and
     *  the (region, stream) pairs bound to it, all resolved at build
     *  so the per-cycle arbitration never re-derives them. */
    struct MemPlan
    {
        NodeId node = adg::kInvalidNode;
        AddressSpace *space = nullptr;
        int widthBytes = 0;
        int numBanks = 1;
        int64_t bytes = 0;  ///< moved so far (reporting)
        /** (region index, stream id), in dense scan order. */
        std::vector<std::pair<int, int>> streams;
    };

    const dfg::DecoupledProgram &prog_;
    const mapper::Schedule &sched_;
    const Adg &adg_;
    MemImage &mem_;
    SimOptions opts_;
    std::vector<RegionSim> regions_;
    /** Shared-PE arbitration: cycle of the PE's last fire, indexed by
     *  NodeId (epoch-stamped; nothing to clear per cycle). */
    std::vector<int64_t> peFiredCycle_;
    /** Persistent forwarded-scalar queues (one per Forward). */
    std::vector<FwdQueue> fwdQueues_;
    /** Forward queues currently holding values (pump gate). */
    int fwdNonEmpty_ = 0;
    /** Sequential phase-script cursor. */
    size_t scriptPos_ = 0;
    bool scriptEntryActive_ = false;
    /** Outer-iv override for the script-selected issue. */
    std::map<int, int64_t> scriptIvs_;
    /** Currently-loaded configuration group. */
    int activeGroup_ = 0;
    /** Fabric unavailable until this cycle (reconfiguration). */
    int64_t reconfigUntil_ = 0;
    /** Cycles to load one configuration. */
    int64_t reconfigCycles_ = 0;
    /** Memory plans in aliveNodes(Memory) order. */
    std::vector<MemPlan> memPlans_;
    /** Any region changed lifecycle state this cycle (sparse-loop
     *  progress detection; the dense oracle keeps its snapshot). */
    bool stateChanged_ = false;
    /** Regions in {WaitDep, WaitCmd, Running, Finalizing}. */
    std::vector<int> activeRegions_;
    bool activeDirty_ = true;
};

int64_t
Machine::issueOverhead(const RegionSim &rs) const
{
    const auto &ctrl = adg_.control();
    int cmds = static_cast<int>(rs.reg->streams.size());
    return static_cast<int64_t>(cmds / std::max(0.1, ctrl.cmdIssueIpc)) +
           ctrl.cmdLatency;
}

bool
Machine::forwardsSatisfied(const RegionSim &rs) const
{
    // A region may not retire its issue while an incoming forward's
    // producer could still deliver values for it.
    for (const auto &f : prog_.forwards) {
        if (f.dstRegion != rs.idx)
            continue;
        const RegionSim &src = regions_[f.srcRegion];
        bool done = src.state == RegionState::Complete ||
                    (seq_ && src.completedIssues > rs.completedIssues);
        if (!done)
            return false;
    }
    return true;
}

void
Machine::build()
{
    seq_ = prog_.sequential && !prog_.phaseScript.empty();
    // Rough bitstream size: ~48 bits of config per component.
    int64_t aliveCount = 0;
    for (NodeId id = 0; id < adg_.nodeIdBound(); ++id)
        if (adg_.nodeAlive(id))
            ++aliveCount;
    reconfigCycles_ =
        aliveCount * 48 / std::max(1, adg_.control().configBitsPerCycle);
    regions_.resize(prog_.regions.size());
    for (size_t r = 0; r < prog_.regions.size(); ++r)
        buildRegion(static_cast<int>(r));

    // Forwards: out-port sinks into persistent queues pumped into the
    // destination region's port as it consumes.
    fwdQueues_.resize(prog_.forwards.size());
    for (FwdQueue &fq : fwdQueues_)
        fq.nonEmptyCount = &fwdNonEmpty_;
    for (size_t fi = 0; fi < prog_.forwards.size(); ++fi) {
        const auto &f = prog_.forwards[fi];
        RegionSim &src = regions_[f.srcRegion];
        RegionSim &dst = regions_[f.dstRegion];
        OutSink sink;
        sink.kind = OutSink::Kind::Forward;
        sink.fwdQueue = &fwdQueues_[fi];
        src.outPorts[f.srcPort].sinks.push_back(sink);
        if (f.viaMemory)
            dst.waitOnRegions.push_back(f.srcRegion);
    }
    // Cross-region array dependences (disjoint nests): full ordering.
    for (size_t r = 0; r < prog_.regions.size(); ++r)
        for (int dep : prog_.regions[r].dependsOn)
            regions_[r].waitOnRegions.push_back(dep);

    // Flat PE-fire stamps (epoch = cycle number; nothing to clear).
    peFiredCycle_.assign(static_cast<size_t>(adg_.nodeIdBound()), -1);

    // Per-region hot-loop caches: everything the per-cycle code would
    // otherwise re-derive by filtering (which ports are real, which
    // streams are generators / scalar-fallback, which instructions are
    // latency-gated accumulators).
    for (RegionSim &rs : regions_) {
        for (size_t v = 0; v < rs.inPorts.size(); ++v) {
            if (rs.inPorts[v].lanePipes.empty())
                continue;
            rs.realInPorts.push_back(static_cast<int>(v));
            if (rs.inPorts[v].minPopInterval > 0)
                rs.throttledPorts.push_back(static_cast<int>(v));
        }
        for (size_t v = 0; v < rs.outPorts.size(); ++v)
            if (!rs.outPorts[v].lanePipes.empty())
                rs.realOutPorts.push_back(static_cast<int>(v));
        for (size_t i = 0; i < rs.insts.size(); ++i)
            if (rs.insts[i].vx->isAccumulate())
                rs.accInsts.emplace_back(
                    static_cast<int>(i),
                    opInfo(rs.insts[i].vx->op).latency);
        for (StreamExec &se : rs.streams) {
            const Stream &st = *se.st;
            if (st.kind == StreamKind::Const ||
                st.kind == StreamKind::Iota)
                rs.genStreams.push_back(st.id);
            if (st.scalarFallback)
                rs.fallbackStreams.push_back(st.id);
            if (st.kind == StreamKind::IndirectRead ||
                st.kind == StreamKind::IndirectWrite ||
                st.kind == StreamKind::AtomicUpdate)
                se.idxSpace = &mem_.space(st.idxSpace);
        }
    }

    // Memory plans: per alive memory node, the streams it serves in
    // the same scan order as the naive alive-memories x regions x
    // streams sweep, with the stream->memory binding ("mine") already
    // decided — so per-cycle arbitration outcomes are identical.
    for (NodeId m : adg_.aliveNodes(NodeKind::Memory)) {
        const auto &mem = adg_.node(m).mem();
        MemPlan plan;
        plan.node = m;
        plan.widthBytes = mem.widthBytes;
        plan.numBanks = std::max(1, mem.numBanks);
        plan.space = &mem_.space(mem.kind == adg::MemKind::Main
                                     ? dfg::MemSpace::Main
                                     : dfg::MemSpace::Spad);
        for (RegionSim &rs : regions_) {
            const auto &rsch = sched_.regions[rs.idx];
            for (StreamExec &se : rs.streams) {
                const Stream &st = *se.st;
                if (!st.touchesMemory())
                    continue;
                bool mine = rs.reg->serialized
                    ? (st.space == dfg::MemSpace::Main) ==
                          (mem.kind == adg::MemKind::Main)
                    : rsch.streamMap[st.id] == m;
                if (mine)
                    plan.streams.emplace_back(rs.idx, st.id);
            }
        }
        memPlans_.push_back(std::move(plan));
    }
}

void
Machine::buildRegion(int r)
{
    const Region &reg = prog_.regions[r];
    const auto &rsch = sched_.regions[r];
    RegionSim &rs = regions_[r];
    rs.reg = &reg;
    rs.idx = r;
    rs.inPorts.resize(reg.dfg.numVertices());
    rs.outPorts.resize(reg.dfg.numVertices());
    rs.streams.resize(reg.streams.size());
    rs.outerIdx.assign(reg.outerLoops.size(), 0);

    // Route length lookup.
    auto routeLen = [&](VertexId consumer, int opIdx) -> int {
        auto it = rsch.routes.find({consumer, opIdx});
        if (it == rsch.routes.end())
            return 1;
        return std::max(1, static_cast<int>(it->second.size()));
    };

    // Size the per-region pools once (pipes hand out stable pointers,
    // so reserving is about allocation churn, not correctness).
    size_t numInsts = 0;
    size_t numEdges = 0;
    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind == VertexKind::Instruction)
            ++numInsts;
        for (const auto &op : vx.operands)
            if (!op.isImm())
                ++numEdges;
    }
    rs.insts.reserve(numInsts);
    rs.pipes.reserve(numEdges);

    // Instruction sims (indexed later through a map).
    std::map<VertexId, size_t> instIdx;
    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind != VertexKind::Instruction)
            continue;
        instIdx[vx.id] = rs.insts.size();
        rs.insts.emplace_back();
        InstSim &is = rs.insts.back();
        is.vx = &vx;
        is.acc = vx.accInit;
        is.pe = reg.serialized ? adg::kInvalidNode : rsch.vertexMap[vx.id];
        is.sharedPe = is.pe != adg::kInvalidNode &&
                      adg_.node(is.pe).pe().sharing == Sharing::Shared;
    }

    // Pipes for every value edge.
    auto makePipe = [&](int latency) -> Pipe * {
        rs.pipes.push_back(std::make_unique<Pipe>());
        Pipe *p = rs.pipes.back().get();
        p->latency = std::max(1, latency);
        p->capacity = p->latency + 8;
        return p;
    };

    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind == VertexKind::InputPort) {
            PortSim &ps = rs.inPorts[vx.id];
            ps.lanes = vx.lanes;
            ps.reuse = vx.reuse;
            ps.lanePipes.assign(vx.lanes, {});
            ps.capacity = std::max(64, vx.lanes * 8);
            if (reg.serialized)
                ps.minPopInterval =
                    std::max(1, reg.serialDependenceLatency);
            continue;
        }
        // Instruction or output port: wire operand pipes.
        std::vector<Pipe *> inPipes;
        std::vector<Value> imms;
        for (size_t i = 0; i < vx.operands.size(); ++i) {
            const auto &op = vx.operands[i];
            if (op.isImm()) {
                inPipes.push_back(nullptr);
                imms.push_back(op.imm);
                continue;
            }
            const Vertex &src = reg.dfg.vertex(op.src);
            int lat = routeLen(vx.id, static_cast<int>(i));
            if (src.kind == VertexKind::Instruction)
                lat += opInfo(src.op).latency;
            Pipe *p = makePipe(lat);
            inPipes.push_back(p);
            imms.push_back(0);
            if (src.kind == VertexKind::InputPort) {
                rs.inPorts[op.src].lanePipes[op.srcLane].push_back(p);
            } else {
                rs.insts[instIdx[op.src]].outPipes.push_back(p);
            }
        }
        if (vx.kind == VertexKind::Instruction) {
            InstSim &is = rs.insts[instIdx[vx.id]];
            is.inPipes = std::move(inPipes);
            is.imms = std::move(imms);
        } else {
            OutPortSim &op = rs.outPorts[vx.id];
            op.lanes = vx.lanes;
            op.outputEvery = vx.outputEvery;
            // Zero-trip reductions fall back to the accumulator's init.
            if (vx.operands.size() == 1 && !vx.operands[0].isImm()) {
                const Vertex &src = reg.dfg.vertex(vx.operands[0].src);
                if (src.isAccumulate()) {
                    op.hasFallback = true;
                    op.fallbackInit = src.accInit;
                }
            }
            op.lanePipes = std::move(inPipes);
            DSA_ASSERT(std::none_of(op.lanePipes.begin(),
                                    op.lanePipes.end(),
                                    [](Pipe *p) { return !p; }),
                       "output port with immediate operand");
        }
    }

    // Streams.
    for (const Stream &st : reg.streams) {
        StreamExec &se = rs.streams[st.id];
        se.st = &st;
        se.regionIdx = r;
        if (st.feedsInput() && st.kind != StreamKind::Recurrence)
            se.target = &rs.inPorts[st.port];
    }
    // Attach write/recurrence sinks to output ports.
    for (const Stream &st : reg.streams) {
        StreamExec &se = rs.streams[st.id];
        switch (st.kind) {
          case StreamKind::LinearWrite: {
            OutSink sink;
            sink.kind = OutSink::Kind::Write;
            sink.skip = st.skipFirst;
            sink.write = &se;
            rs.outPorts[st.port].sinks.push_back(sink);
            break;
          }
          case StreamKind::IndirectWrite:
          case StreamKind::AtomicUpdate: {
            OutSink sink;
            sink.kind = OutSink::Kind::Write;
            sink.skip = st.skipFirst;
            sink.write = &se;
            rs.outPorts[st.valuePort].sinks.push_back(sink);
            break;
          }
          case StreamKind::Recurrence: {
            OutSink sink;
            sink.kind = OutSink::Kind::Recurrence;
            sink.skip = st.skipFirst;
            sink.take = st.recurrenceCount;
            sink.target = &rs.inPorts[st.port];
            rs.outPorts[st.srcPort].sinks.push_back(sink);
            break;
          }
          default:
            break;
        }
    }

    // Quiescence window: longest pipe + margin. The pipe set is fixed
    // after build, so this is a per-region constant (used to be
    // recomputed on every issue).
    int maxLat = 1;
    for (const auto &p : rs.pipes)
        maxLat = std::max(maxLat, p->latency);
    rs.quiesceWindow = maxLat + 8;
}

void
Machine::startIssue(RegionSim &rs, int64_t now,
                    const std::map<int, int64_t> *ivsOverride)
{
    const Region &reg = *rs.reg;
    // Outer-loop induction values for this issue.
    std::map<int, int64_t> ivs;
    if (ivsOverride) {
        ivs = *ivsOverride;
    } else {
        for (size_t i = 0; i < reg.outerLoops.size(); ++i)
            ivs[reg.outerLoops[i].first] = rs.outerIdx[i];
    }

    auto shifts = [&](const std::map<int, int64_t> &coeffs) {
        int64_t s = 0;
        for (const auto &[id, c] : coeffs) {
            auto it = ivs.find(id);
            if (it != ivs.end())
                s += c * it->second;
        }
        return s;
    };

    for (StreamExec &se : rs.streams) {
        const Stream &st = *se.st;
        se.pos = 0;
        se.writeBuf.clear();
        se.openDone = false;
        se.nextReady = now;
        int64_t lenShift = shifts(st.reissueLenCoeffs);
        switch (st.kind) {
          case StreamKind::LinearRead:
          case StreamKind::LinearWrite:
            se.addrs = expandPattern(st.pattern,
                                     shifts(st.reissueCoeffs), lenShift);
            break;
          case StreamKind::IndirectRead:
          case StreamKind::IndirectWrite:
          case StreamKind::AtomicUpdate:
            se.idxAddrs = expandPattern(st.idxPattern,
                                        shifts(st.idxReissueCoeffs),
                                        lenShift);
            se.addrs.assign(se.idxAddrs.size(), 0);  // filled at gather
            break;
          case StreamKind::Const:
            se.addrs.assign(static_cast<size_t>(st.constCount), 0);
            break;
          case StreamKind::Iota:
            se.addrs = expandPattern(st.pattern, 0, lenShift);
            break;
          case StreamKind::Recurrence:
            // Handled through the out-port sink; nothing to enumerate.
            se.addrs.clear();
            break;
        }
    }
    // Reset ports and accumulators for a fresh issue (but keep
    // recurrence-fed data on non-first issues? — recurrences only
    // exist within a single folded issue, so a full reset is right).
    for (auto &ps : rs.inPorts)
        ps.resetForIssue();
    for (auto &op : rs.outPorts)
        op.resetForIssue();
    for (auto &is : rs.insts) {
        is.acc = is.vx->accInit;
        is.fires = 0;
        // Flush stale pipe contents.
        for (Pipe *p : is.outPipes)
            p->q.clear();
        for (Pipe *p : is.inPipes)
            if (p)
                p->q.clear();
    }
    rs.lastActivity = now;
    setState(rs, RegionState::Running);
}

void
Machine::finalizeIssue(RegionSim &rs, int64_t now)
{
    // Deliver final values of last-only output ports.
    for (auto &op : rs.outPorts) {
        if (op.outputEvery == -1 && !op.lastValid && op.hasFallback &&
            !op.lanePipes.empty()) {
            op.lastVec.assign(static_cast<size_t>(op.lanes),
                              op.fallbackInit);
            op.lastValid = true;
        }
        if (op.outputEvery == -1 && op.lastValid) {
            for (Value v : op.lastVec)
                op.deliverElement(v);
            op.lastValid = false;
        }
    }
    // Open-ended writes learn their end.
    for (StreamExec &se : rs.streams)
        if (se.st->openEnded)
            se.openDone = true;
    rs.lastActivity = now;
    setState(rs, RegionState::Finalizing);
}

bool
Machine::advanceIssue(RegionSim &rs)
{
    const Region &reg = *rs.reg;
    for (int i = static_cast<int>(rs.outerIdx.size()) - 1; i >= 0; --i) {
        if (++rs.outerIdx[i] < reg.outerLoops[i].second)
            return true;
        rs.outerIdx[i] = 0;
    }
    return false;
}

void
Machine::tickStreams(int64_t now, bool &activity)
{
    // Per-memory bandwidth arbitration over build-time plans. The plan
    // lists each memory's streams in the naive sweep's scan order with
    // the stream->memory binding already decided, so the arbitration
    // outcome (who gets the bytes) is identical to the original
    // alive-memories x regions x streams triple loop.
    for (MemPlan &mp : memPlans_) {
        int budget = mp.widthBytes;
        const int startBudget = budget;
        int bankBudget = mp.numBanks;
        AddressSpace &space = *mp.space;
        for (const auto &[ri, sid] : mp.streams) {
            if (budget <= 0)
                break;  // never recovers within a cycle
            RegionSim &rs = regions_[ri];
            if (rs.state != RegionState::Running &&
                rs.state != RegionState::Finalizing)
                continue;
            StreamExec &se = rs.streams[sid];
            const Stream &st = *se.st;
            int elemB = st.pattern.elemBytes;
            auto throttled = [&]() {
                if (!st.scalarFallback)
                    return false;
                if (now < se.nextReady)
                    return true;
                return false;
            };
            auto consumeThrottle = [&]() {
                if (st.scalarFallback)
                    se.nextReady = now + opts_.scalarElementInterval;
            };
            switch (st.kind) {
              case StreamKind::LinearRead:
                while (!se.readsDone() && budget >= elemB &&
                       se.target->roomFor(1) && !throttled()) {
                    se.target->deliver(
                        space.load(se.addrs[se.pos], elemB));
                    ++se.pos;
                    budget -= elemB;
                    consumeThrottle();
                    activity = true;
                    if (st.scalarFallback)
                        break;
                }
                break;
              case StreamKind::IndirectRead: {
                AddressSpace &idxSpace = *se.idxSpace;
                while (!se.readsDone() &&
                       budget >= elemB + st.idxElemBytes &&
                       bankBudget > 0 && se.target->roomFor(1) &&
                       !throttled()) {
                    int64_t idxV = static_cast<int64_t>(idxSpace.load(
                        se.idxAddrs[se.pos], st.idxElemBytes));
                    int64_t addr =
                        st.pattern.baseBytes + idxV * elemB;
                    se.target->deliver(space.load(addr, elemB));
                    ++se.pos;
                    budget -= elemB + st.idxElemBytes;
                    --bankBudget;
                    consumeThrottle();
                    activity = true;
                    if (st.scalarFallback)
                        break;
                }
                break;
              }
              case StreamKind::LinearWrite:
                while (!se.writeBuf.empty() && budget >= elemB &&
                       se.pos < se.addrs.size() && !throttled()) {
                    space.store(se.addrs[se.pos], elemB,
                                se.writeBuf.front());
                    se.writeBuf.pop_front();
                    ++se.pos;
                    budget -= elemB;
                    consumeThrottle();
                    activity = true;
                    if (st.scalarFallback)
                        break;
                }
                break;
              case StreamKind::IndirectWrite:
              case StreamKind::AtomicUpdate: {
                AddressSpace &idxSpace = *se.idxSpace;
                bool atomic = st.kind == StreamKind::AtomicUpdate;
                int cost = elemB + st.idxElemBytes +
                           (atomic ? elemB : 0);
                while (!se.writeBuf.empty() && budget >= cost &&
                       bankBudget > 0 && se.pos < se.addrs.size() &&
                       !throttled()) {
                    int64_t idxV = static_cast<int64_t>(idxSpace.load(
                        se.idxAddrs[se.pos], st.idxElemBytes));
                    int64_t addr =
                        st.pattern.baseBytes + idxV * elemB;
                    Value v = se.writeBuf.front();
                    se.writeBuf.pop_front();
                    if (atomic) {
                        Value old = space.load(addr, elemB);
                        v = evalOp(st.updateOp, old, v, 0, nullptr);
                    }
                    space.store(addr, elemB, v);
                    ++se.pos;
                    budget -= cost;
                    --bankBudget;
                    consumeThrottle();
                    activity = true;
                    if (st.scalarFallback)
                        break;
                }
                break;
              }
              default:
                break;
            }
        }
        mp.bytes += startBudget - budget;
    }

    // Memory-less generators: const / iota.
    for (RegionSim &rs : regions_) {
        if (rs.genStreams.empty() || rs.state != RegionState::Running)
            continue;
        for (int sid : rs.genStreams) {
            StreamExec &se = rs.streams[sid];
            const Stream &st = *se.st;
            if (st.kind == StreamKind::Const) {
                while (!se.readsDone() && se.target->roomFor(1)) {
                    se.target->deliver(st.constValue);
                    ++se.pos;
                    activity = true;
                }
            } else {
                int pushed = 0;
                while (!se.readsDone() && se.target->roomFor(1) &&
                       pushed < 8) {
                    se.target->deliver(
                        static_cast<Value>(se.addrs[se.pos]));
                    ++se.pos;
                    ++pushed;
                    activity = true;
                }
            }
        }
    }
}

void
Machine::fireInstruction(RegionSim &rs, InstSim &is, int64_t now,
                         bool &activity)
{
    const Vertex &vx = *is.vx;
    if (!is.operandsReady(now))
        return;
    // Accumulators feed their own register back: the next firing must
    // wait for the op's latency (limits FP-accumulate chains to II=L).
    if (vx.isAccumulate() &&
        now - is.lastFire < opInfo(vx.op).latency)
        return;
    for (Pipe *p : is.outPipes)
        if (!p->canPush())
            return;

    // Shared-PE arbitration: one fire per shared PE per cycle. The
    // stamp array is epoch-keyed by cycle, so there is no per-cycle
    // clearing (and no map lookup).
    if (is.sharedPe) {
        int64_t &stamp = peFiredCycle_[static_cast<size_t>(is.pe)];
        if (stamp == now)
            return;
        stamp = now;
    }

    is.lastFire = now;
    Value result;
    bool emit = true;
    if (vx.ctrl.active()) {
        // Stream-join control.
        Value a = is.operandValue(0);
        Value b = vx.operands.size() > 1 ? is.operandValue(1) : 0;
        Value cval = vx.operands.size() > 2 ? is.operandValue(2) : 0;
        // Natural-arity computation (extra ctrl operand excluded).
        int arity = opInfo(vx.op).numOperands;
        result = evalOp(vx.op, a, arity >= 2 ? b : 0,
                        arity >= 3 ? cval : 0,
                        vx.isAccumulate() ? &is.acc : nullptr);
        int ctl;
        if (vx.ctrl.source == CtrlSpec::Source::Self) {
            ctl = static_cast<int>(result & 7);
        } else {
            ctl = static_cast<int>(
                is.operandValue(
                    static_cast<size_t>(vx.ctrl.ctrlOperand)) & 7);
        }
        emit = vx.ctrl.emits(ctl);
        for (size_t i = 0; i < is.inPipes.size(); ++i) {
            if (!is.inPipes[i])
                continue;
            if (vx.ctrl.pops(static_cast<int>(i), ctl))
                is.inPipes[i]->pop();
        }
    } else if (vx.selfAcc) {
        Value v = is.operandValue(0);
        is.acc = evalOp(vx.op, is.acc, v, 0, nullptr);
        result = is.acc;
        for (Pipe *p : is.inPipes)
            if (p)
                p->pop();
        ++is.fires;
        if (vx.accResetEvery > 0 && is.fires % vx.accResetEvery == 0) {
            // Reset after this result was produced.
            for (Pipe *out : is.outPipes)
                out->push(now, result);
            is.acc = vx.accInit;
            rs.lastActivity = now;
            activity = true;
            return;
        }
        for (Pipe *out : is.outPipes)
            out->push(now, result);
        rs.lastActivity = now;
        activity = true;
        return;
    } else {
        Value a = is.operandValue(0);
        Value b = vx.operands.size() > 1 ? is.operandValue(1) : 0;
        Value cc = vx.operands.size() > 2 ? is.operandValue(2) : 0;
        result = evalOp(vx.op, a, b, cc,
                        vx.isAccumulate() ? &is.acc : nullptr);
        for (Pipe *p : is.inPipes)
            if (p)
                p->pop();
    }
    ++is.fires;
    if (emit)
        for (Pipe *out : is.outPipes)
            out->push(now, result);
    rs.lastActivity = now;
    activity = true;
}

void
Machine::tickRegion(RegionSim &rs, int64_t now, bool &activity)
{
    switch (rs.state) {
      case RegionState::WaitDep: {
        if (prog_.regions[rs.idx].configGroup != activeGroup_)
            return;  // fabric holds a different configuration
        bool ready = true;
        for (int dep : rs.waitOnRegions)
            ready &= regions_[dep].state == RegionState::Complete;
        if (ready) {
            setState(rs, RegionState::WaitCmd);
            rs.stateUntil = now + issueOverhead(rs);
        }
        return;
      }
      case RegionState::WaitCmd:
        if (prog_.regions[rs.idx].configGroup != activeGroup_)
            return;
        if (now >= rs.stateUntil && now >= reconfigUntil_)
            startIssue(rs, now, seq_ ? &scriptIvs_ : nullptr);
        return;
      case RegionState::Complete:
      case RegionState::DoneIssue:
        return;
      case RegionState::Running:
      case RegionState::Finalizing:
        break;
    }

    for (int v : rs.realInPorts) {
        if (rs.inPorts[v].tryFire(now)) {  // one vector per port/cycle
            rs.lastActivity = now;
            activity = true;
        }
    }
    for (auto &is : rs.insts)
        fireInstruction(rs, is, now, activity);
    for (int v : rs.realOutPorts) {
        if (rs.outPorts[v].tryFire(now)) {
            rs.lastActivity = now;
            activity = true;
        }
    }

    if (rs.state == RegionState::Running) {
        if (rs.allReadsDone() && forwardsSatisfied(rs) &&
            now - rs.lastActivity > rs.quiesceWindow)
            finalizeIssue(rs, now);
    } else if (rs.state == RegionState::Finalizing) {
        if (rs.allWritesDone() || now - rs.lastActivity >
                                      4 * rs.quiesceWindow + 64) {
            // Move to the next issue (or complete).
            ++rs.completedIssues;
            if (seq_) {
                // The phase-script controller schedules the next issue.
                setState(rs, RegionState::DoneIssue);
                rs.endCycle = now;
            } else if (advanceIssue(rs)) {
                setState(rs, RegionState::WaitCmd);
                int64_t overhead = rs.reg->drainBetweenReissues
                    ? issueOverhead(rs)
                    : std::max<int64_t>(1, issueOverhead(rs) / 4);
                rs.stateUntil = now + overhead;
            } else {
                setState(rs, RegionState::Complete);
                rs.endCycle = now;
            }
        }
    }
}

void
Machine::setState(RegionSim &rs, RegionState st)
{
    rs.state = st;
    stateChanged_ = true;
    activeDirty_ = true;
}

void
Machine::refreshActiveRegions()
{
    activeRegions_.clear();
    for (const RegionSim &rs : regions_)
        if (rs.state != RegionState::Complete &&
            rs.state != RegionState::DoneIssue)
            activeRegions_.push_back(rs.idx);
    activeDirty_ = false;
}

bool
Machine::tickSequencer(int64_t now)
{
    size_t prevScriptPos = scriptPos_;
    bool prevScriptEntry = scriptEntryActive_;
    int prevGroup = activeGroup_;

    if (seq_) {
        // Sequential phase-script controller.
        if (scriptEntryActive_) {
            RegionSim &cur =
                regions_[prog_.phaseScript[scriptPos_].region];
            if (cur.state == RegionState::DoneIssue) {
                scriptEntryActive_ = false;
                ++scriptPos_;
            }
        }
        if (!scriptEntryActive_ &&
            scriptPos_ < prog_.phaseScript.size()) {
            const auto &e = prog_.phaseScript[scriptPos_];
            RegionSim &rs = regions_[e.region];
            scriptIvs_.clear();
            for (const auto &[id, v] : e.ivs)
                scriptIvs_[id] = v;
            int g = prog_.regions[e.region].configGroup;
            if (g != activeGroup_) {
                activeGroup_ = g;
                reconfigUntil_ = now + reconfigCycles_;
            }
            setState(rs, RegionState::WaitCmd);
            rs.stateUntil = now + issueOverhead(rs);
            scriptEntryActive_ = true;
        }
    } else {
        // Advance the configuration when the active group retires.
        bool groupDone = true;
        bool anyLater = false;
        int nextGroup = INT_MAX;
        for (RegionSim &rs : regions_) {
            int g = prog_.regions[rs.idx].configGroup;
            if (g == activeGroup_ &&
                rs.state != RegionState::Complete)
                groupDone = false;
            if (g > activeGroup_ &&
                rs.state != RegionState::Complete) {
                anyLater = true;
                nextGroup = std::min(nextGroup, g);
            }
        }
        if (groupDone && anyLater) {
            activeGroup_ = nextGroup;
            reconfigUntil_ = now + reconfigCycles_;
        }
    }

    return scriptPos_ != prevScriptPos ||
           scriptEntryActive_ != prevScriptEntry ||
           activeGroup_ != prevGroup;
}

void
Machine::pumpForwards(int64_t now, bool &activity)
{
    // Pump forwarded scalars into starving consumer ports. The counter
    // gate makes this free while every channel is drained (the common
    // state between producer bursts).
    if (fwdNonEmpty_ == 0)
        return;
    for (size_t fi = 0; fi < prog_.forwards.size(); ++fi) {
        FwdQueue &q = fwdQueues_[fi];
        if (q.empty())
            continue;
        const auto &f = prog_.forwards[fi];
        RegionSim &dst = regions_[f.dstRegion];
        if (dst.state != RegionState::Running &&
            dst.state != RegionState::Finalizing)
            continue;
        PortSim &port = dst.inPorts[f.dstPort];
        // Refill an idle staging buffer up to one vector's worth of
        // lanes — no further. The queue must outlive the consumer's
        // issues: anything still buffered in the port when an issue
        // retires is destroyed by resetForIssue(), so batching to port
        // *capacity* here would lose elements at issue boundaries, and
        // topping up while `reuseLeft > 0` would race the reuse
        // expiry. One vector per cycle matches the port's own fire
        // cadence exactly (and degenerates to the historical
        // one-element-per-cycle delivery for scalar ports).
        while (!q.empty() && port.reuseLeft == 0 &&
               static_cast<int>(port.buffer.size()) < port.lanes) {
            port.deliver(q.front());
            q.pop();
            dst.lastActivity = now;
            activity = true;
        }
    }
}

bool
Machine::allDone() const
{
    if (seq_)
        return scriptPos_ >= prog_.phaseScript.size() &&
               !scriptEntryActive_;
    for (const RegionSim &rs : regions_)
        if (rs.state != RegionState::Complete)
            return false;
    return true;
}

void
Machine::traceDump(int64_t now) const
{
    // DSA_SIM_TRACE=1 dumps periodic machine state (debugging aid).
    static const bool trace = std::getenv("DSA_SIM_TRACE") != nullptr;
    if (!trace || now % 64 != 0)
        return;
    for (const RegionSim &rs : regions_) {
        std::fprintf(stderr,
                     "[sim %lld] region %d state=%d lastAct=%lld",
                     static_cast<long long>(now), rs.idx,
                     static_cast<int>(rs.state),
                     static_cast<long long>(rs.lastActivity));
        for (const StreamExec &se : rs.streams)
            std::fprintf(stderr, " s%d:%zu/%zu(wb=%zu)",
                         se.st->id, se.pos, se.addrs.size(),
                         se.writeBuf.size());
        for (size_t v = 0; v < rs.inPorts.size(); ++v)
            if (!rs.inPorts[v].lanePipes.empty())
                std::fprintf(stderr, " p%zu:buf=%zu pops=%lld",
                             v, rs.inPorts[v].buffer.size(),
                             static_cast<long long>(
                                 rs.inPorts[v].pops));
        for (const InstSim &is : rs.insts)
            std::fprintf(stderr, " i%d:fires=%lld", is.vx->id,
                         static_cast<long long>(is.fires));
        std::fprintf(stderr, "\n");
    }
}

SimResult
Machine::run()
{
    if (seq_) {
        // The phase-script controller activates one issue at a time.
        for (RegionSim &rs : regions_)
            setState(rs, RegionState::DoneIssue);
    } else {
        // Regions with cross-region dependences wait; others start.
        for (RegionSim &rs : regions_) {
            if (!rs.waitOnRegions.empty()) {
                setState(rs, RegionState::WaitDep);
            } else {
                setState(rs, RegionState::WaitCmd);
                rs.stateUntil = issueOverhead(rs);
            }
        }
    }
    return opts_.sparse ? runSparse() : runDense();
}

SimResult
Machine::runDense()
{
    SimResult res;
    int64_t now = 0;
    // Deadlock watchdog: progress = any activity (port/instruction/
    // stream fire) or any controller/region state change this cycle.
    int64_t lastProgress = 0;
    std::vector<RegionState> prevStates(regions_.size());
    for (; now < opts_.maxCycles; ++now) {
        bool activity = false;
        for (size_t r = 0; r < regions_.size(); ++r)
            prevStates[r] = regions_[r].state;

        bool ctrlMoved = tickSequencer(now);
        pumpForwards(now, activity);
        tickStreams(now, activity);
        for (RegionSim &rs : regions_)
            tickRegion(rs, now, activity);

        traceDump(now);

        if (allDone())
            break;

        bool progress = activity || ctrlMoved;
        for (size_t r = 0; !progress && r < regions_.size(); ++r)
            progress = regions_[r].state != prevStates[r];
        if (progress)
            lastProgress = now;
        else if (opts_.progressWindow > 0 &&
                 now - lastProgress >= opts_.progressWindow) {
            res.ok = false;
            res.error = stallDiagnostic(now, lastProgress);
            res.status = Status::deadlock(res.error);
            fillStats(res, now);
            return res;
        }
        // Wall-clock watchdog, polled every 8192 cycles.
        if ((now & 0x1FFF) == 0 && opts_.deadline.expired()) {
            res.ok = false;
            res.error = "simulation wall-clock budget exhausted at cycle " +
                        std::to_string(now);
            res.status = Status::deadlineExceeded(res.error);
            fillStats(res, now);
            return res;
        }
    }
    if (now >= opts_.maxCycles) {
        res.ok = false;
        res.error = "simulation exceeded cycle limit (" +
                    std::to_string(opts_.maxCycles) + " cycles)";
        res.status = Status::resourceExhausted(res.error);
        fillStats(res, now);
        return res;
    }
    res.ok = true;
    fillStats(res, now);
    return res;
}

int64_t
Machine::nextEventTime(int64_t now) const
{
    int64_t next = INT64_MAX;
    auto consider = [&](int64_t t) {
        if (t > now && t < next)
            next = t;
    };
    for (int r : activeRegions_) {
        const RegionSim &rs = regions_[r];
        switch (rs.state) {
          case RegionState::WaitDep:
            // Released by a dependee completing or by a configuration
            // switch — both are progress events on the cycle they
            // happen, so the cycle after is always processed.
            break;
          case RegionState::WaitCmd:
            if (prog_.regions[rs.idx].configGroup == activeGroup_)
                consider(std::max(rs.stateUntil, reconfigUntil_));
            break;
          case RegionState::Running:
          case RegionState::Finalizing:
            // Quiesce / drain windows measured from last activity.
            if (rs.state == RegionState::Running)
                consider(rs.lastActivity + rs.quiesceWindow + 1);
            else
                consider(rs.lastActivity + 4 * rs.quiesceWindow + 64 +
                         1);
            // In-flight routed values (front = earliest arrival).
            for (const auto &p : rs.pipes)
                if (!p->q.empty())
                    consider(p->q.front().first);
            // Pop-interval throttles (serialized regions).
            for (int v : rs.throttledPorts) {
                const PortSim &ps = rs.inPorts[v];
                consider(ps.lastPop + ps.minPopInterval);
            }
            // Accumulator-latency fire gates.
            for (const auto &[i, lat] : rs.accInsts)
                consider(rs.insts[i].lastFire + lat);
            // Scalar-fallback stream throttles.
            for (int sid : rs.fallbackStreams) {
                const StreamExec &se = rs.streams[sid];
                if (!se.done())
                    consider(se.nextReady);
            }
            break;
          case RegionState::DoneIssue:
          case RegionState::Complete:
            break;  // not in the active list (defensive)
        }
    }
    return next;
}

SimResult
Machine::runSparse()
{
    SimResult res;
    int64_t now = 0;
    int64_t lastProgress = 0;
    const bool deadlineLimited = !opts_.deadline.unlimited();
    while (now < opts_.maxCycles) {
        bool activity = false;
        stateChanged_ = false;

        bool ctrlMoved = tickSequencer(now);
        // Refresh after the sequencer: in phase-script mode it is what
        // re-activates DoneIssue regions.
        if (activeDirty_)
            refreshActiveRegions();
        pumpForwards(now, activity);
        tickStreams(now, activity);
        for (int r : activeRegions_)
            tickRegion(regions_[r], now, activity);

        traceDump(now);

        if (allDone())
            break;

        // setState fires exactly on the transitions the dense loop's
        // before/after snapshot detects (no tick re-enters a state it
        // left within one cycle), so `progress` matches the oracle.
        bool progress = activity || ctrlMoved || stateChanged_;
        if (progress)
            lastProgress = now;
        else if (opts_.progressWindow > 0 &&
                 now - lastProgress >= opts_.progressWindow) {
            res.ok = false;
            res.error = stallDiagnostic(now, lastProgress);
            res.status = Status::deadlock(res.error);
            fillStats(res, now);
            return res;
        }
        if ((now & 0x1FFF) == 0 && opts_.deadline.expired()) {
            res.ok = false;
            res.error = "simulation wall-clock budget exhausted at cycle " +
                        std::to_string(now);
            res.status = Status::deadlineExceeded(res.error);
            fillStats(res, now);
            return res;
        }

        if (progress) {
            ++now;
            continue;
        }
        // Idle cycle: every skipped cycle would also be idle (state is
        // frozen and no time gate opens before the next event), so
        // jump straight to the earliest cycle anything can move,
        // clamped so the watchdogs fire on exactly the same cycle the
        // dense loop would fire them on.
        int64_t target = nextEventTime(now);
        if (opts_.progressWindow > 0)
            target = std::min(target,
                              lastProgress + opts_.progressWindow);
        if (deadlineLimited)
            target = std::min(target, ((now >> 13) + 1) << 13);
        target = std::min(target, opts_.maxCycles);
        now = std::max(now + 1, target);
    }
    if (now >= opts_.maxCycles) {
        res.ok = false;
        res.error = "simulation exceeded cycle limit (" +
                    std::to_string(opts_.maxCycles) + " cycles)";
        res.status = Status::resourceExhausted(res.error);
        fillStats(res, now);
        return res;
    }
    res.ok = true;
    fillStats(res, now);
    return res;
}

bool
Machine::regionDone(const RegionSim &rs) const
{
    // In sequential (phase-script) mode regions rest in DoneIssue
    // between issues and at the end of the script.
    return rs.state == RegionState::Complete ||
           (seq_ && rs.state == RegionState::DoneIssue);
}

void
Machine::fillStats(SimResult &res, int64_t now) const
{
    res.cycles = now;
    res.regions.clear();
    res.peFires.clear();
    for (const RegionSim &rs : regions_) {
        RegionSimStats st;
        st.complete = regionDone(rs);
        st.state = regionStateName(rs.state);
        st.endCycle = st.complete ? rs.endCycle : now;
        for (const auto &ps : rs.inPorts)
            st.fires = std::max(st.fires, ps.pops);
        res.regions.push_back(std::move(st));
        for (const InstSim &is : rs.insts)
            if (is.pe != adg::kInvalidNode)
                res.peFires[is.pe] += is.fires;
    }
    // One entry per alive memory node, zeros included (the plans cover
    // exactly the nodes the per-cycle accounting used to touch).
    res.memBytes.clear();
    for (const MemPlan &mp : memPlans_)
        res.memBytes[mp.node] = mp.bytes;
}

std::string
Machine::stallDiagnostic(int64_t now, int64_t lastProgress) const
{
    std::ostringstream os;
    os << "simulation deadlock: no progress for " << (now - lastProgress)
       << " cycles (at cycle " << now << ", config group " << activeGroup_
       << ")";
    if (seq_)
        os << ", phase script at entry " << scriptPos_ << "/"
           << prog_.phaseScript.size();
    os << "; stalled regions:";
    for (const RegionSim &rs : regions_) {
        if (regionDone(rs))
            continue;
        os << " region " << rs.idx << " [" << regionStateName(rs.state)
           << "]";
        if (!rs.waitOnRegions.empty()) {
            os << " waits-on{";
            for (size_t i = 0; i < rs.waitOnRegions.size(); ++i)
                os << (i ? "," : "") << rs.waitOnRegions[i];
            os << "}";
        }
        for (const StreamExec &se : rs.streams) {
            if (se.done())
                continue;
            os << " stream" << se.st->id << "=" << se.pos << "/"
               << se.addrs.size();
            if (!se.writeBuf.empty())
                os << "(writeBuf " << se.writeBuf.size() << "/"
                   << se.writeBufCap << ")";
        }
        for (size_t v = 0; v < rs.inPorts.size(); ++v) {
            const PortSim &ps = rs.inPorts[v];
            if (ps.lanePipes.empty())
                continue;
            os << " in-port" << v << "{buf " << ps.buffer.size() << "/"
               << ps.capacity << ", pops " << ps.pops << "}";
        }
        for (size_t v = 0; v < rs.outPorts.size(); ++v) {
            const OutPortSim &op = rs.outPorts[v];
            if (op.lanePipes.empty())
                continue;
            os << " out-port" << v << "{fires " << op.fires << "}";
        }
        os << ";";
    }
    return os.str();
}

/** First field that differs between two runs ("" when bit-identical). */
std::string
firstDivergence(const SimResult &dense, const SimResult &sparse,
                const MemImage &denseMem, const MemImage &sparseMem)
{
    auto num = [](int64_t v) { return std::to_string(v); };
    if (dense.ok != sparse.ok)
        return "ok: dense=" + num(dense.ok) + " sparse=" + num(sparse.ok);
    if (dense.status.code() != sparse.status.code())
        return "status: dense=" + dense.status.toString() +
               " sparse=" + sparse.status.toString();
    if (dense.error != sparse.error)
        return "error text: dense=\"" + dense.error + "\" sparse=\"" +
               sparse.error + "\"";
    if (dense.cycles != sparse.cycles)
        return "cycles: dense=" + num(dense.cycles) +
               " sparse=" + num(sparse.cycles);
    if (dense.regions.size() != sparse.regions.size())
        return "region count";
    for (size_t r = 0; r < dense.regions.size(); ++r) {
        const RegionSimStats &a = dense.regions[r];
        const RegionSimStats &b = sparse.regions[r];
        if (a.fires != b.fires || a.endCycle != b.endCycle ||
            a.complete != b.complete || a.state != b.state)
            return "region " + std::to_string(r) + " stats: dense " +
                   a.state + "/fires=" + num(a.fires) +
                   "/end=" + num(a.endCycle) + ", sparse " + b.state +
                   "/fires=" + num(b.fires) + "/end=" + num(b.endCycle);
    }
    if (dense.peFires != sparse.peFires)
        return "peFires map";
    if (dense.memBytes != sparse.memBytes)
        return "memBytes map";
    if (denseMem.main.bytes() != sparseMem.main.bytes())
        return "main memory contents";
    if (denseMem.spad.bytes() != sparseMem.spad.bytes())
        return "scratchpad contents";
    return "";
}

} // namespace

bool
sparseDefault()
{
    static const bool sparse = [] {
        const char *env = std::getenv("DSA_SIM_SPARSE");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return sparse;
}

SimResult
simulate(const dfg::DecoupledProgram &prog, const mapper::Schedule &sched,
         const Adg &adg, MemImage &mem, const SimOptions &opts)
{
    if (opts.checkSparse) {
        // Oracle cross-check: dense runs on a throwaway copy of the
        // memory image, sparse on the real one, and any divergence in
        // result or memory contents turns into an Internal error.
        MemImage denseMem = mem;
        SimOptions denseOpts = opts;
        denseOpts.sparse = false;
        denseOpts.checkSparse = false;
        Machine dm(prog, sched, adg, denseMem, denseOpts);
        SimResult denseRes = dm.run();

        SimOptions sparseOpts = opts;
        sparseOpts.sparse = true;
        sparseOpts.checkSparse = false;
        Machine sm(prog, sched, adg, mem, sparseOpts);
        SimResult sparseRes = sm.run();

        std::string diff =
            firstDivergence(denseRes, sparseRes, denseMem, mem);
        if (!diff.empty()) {
            sparseRes.ok = false;
            sparseRes.error =
                "sparse/dense simulator divergence: " + diff;
            sparseRes.status = Status::internal(sparseRes.error);
        }
        return sparseRes;
    }
    Machine m(prog, sched, adg, mem, opts);
    return m.run();
}

} // namespace dsa::sim
