#include "sim/simulator.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>

#include "adg/fingerprint.h"
#include "base/hashing.h"
#include "base/logging.h"
#include "sim/compute_plan.h"
#include "sim/jit/jit_cache.h"
#include "sim/jit/jit_emit.h"
#include "sim/jit/jit_runtime.h"
#include "sim/machine_state.h"

namespace dsa::sim {

using adg::Adg;
using adg::NodeId;
using adg::NodeKind;
using adg::Sharing;
using dfg::LinearPattern;
using dfg::Region;
using dfg::Stream;
using dfg::StreamKind;
using dfg::Vertex;
using dfg::VertexId;
using dfg::VertexKind;

using detail::FwdQueue;
using detail::InstSim;
using detail::OutPortSim;
using detail::OutSink;
using detail::Pipe;
using detail::PortSim;
using detail::RegionPlan;
using detail::RegionSim;
using detail::RegionState;
using detail::StreamExec;
using detail::regionStateName;

namespace {

/** Expand a pattern with reissue adjustments applied. */
std::vector<int64_t>
expandPattern(const LinearPattern &base, int64_t baseShift,
              int64_t lenShift)
{
    LinearPattern p = base;
    p.baseBytes += baseShift;
    p.len1 += lenShift;
    return p.expandAddrs();
}

/** The whole-machine simulation. */
class Machine
{
  public:
    Machine(const dfg::DecoupledProgram &prog, const mapper::Schedule &sched,
            const Adg &adg, MemImage &mem, const SimOptions &opts,
            SimArena *arena = nullptr)
        : prog_(prog), sched_(sched), adg_(adg), mem_(mem), opts_(opts),
          arena_(arena ? arena : &ownArena_)
    {
        arena_->reset();
        build();
    }

    SimResult run();

  private:
    void build();
    void buildRegion(int r);
    void startIssue(RegionSim &rs, int64_t now,
                    const std::map<int, int64_t> *ivsOverride = nullptr);
    void finalizeIssue(RegionSim &rs, int64_t now);
    bool advanceIssue(RegionSim &rs);
    void tickStreams(int64_t now, bool &activity);
    void tickRegion(RegionSim &rs, int64_t now, bool &activity);
    /** Running-state region tick through the compiled compute plan
     *  (bit-exact with tickRegion, minus the interpretive dispatch). */
    void tickCompiled(RegionSim &rs, int64_t now, bool &activity);
    /** Quiesce / drain phase transitions shared by the interpreted
     *  and compiled region ticks. */
    void regionPhaseTail(RegionSim &rs, int64_t now);
    /** Phase-script / configuration-group controller; true when any
     *  controller state (script cursor, active group) moved. */
    bool tickSequencer(int64_t now);
    /** Move forwarded scalars into starving consumer ports. */
    void pumpForwards(int64_t now, bool &activity);
    /** Whole program retired? */
    bool allDone() const;
    /** Periodic DSA_SIM_TRACE state dump. */
    void traceDump(int64_t now) const;

    /** The original dense time-stepped loop (the oracle). */
    SimResult runDense();
    /** Event-driven loop: active-set ticking + idle-cycle skipping. */
    SimResult runSparse();
    /**
     * Earliest future cycle (> @p now) at which anything *time-gated*
     * can change: command-issue/reconfiguration deadlines, routed-path
     * arrivals, pop-interval and accumulate-latency throttles,
     * scalar-fallback stream throttles, quiesce/drain windows. Every
     * other transition is driven by same-cycle activity, so a cycle
     * with no progress and no event before this time stays idle.
     * INT64_MAX when nothing is pending (a true deadlock).
     */
    int64_t nextEventTime(int64_t now) const;
    /**
     * Latest cycle (exclusive) the compiled steady window may run to:
     * the earliest wake-up of any waiting-for-command region in the
     * active configuration group. Within the window no skipped
     * controller or wait-state tick could have acted, so eliding them
     * is provably bit-exact. Valid immediately after a fully generic
     * cycle with no state/controller transition; every transition
     * closes the window.
     */
    int64_t burstHorizon() const;
    /** Record a region lifecycle transition (keeps the sparse loop's
     *  progress flag and active-region list in sync). */
    void setState(RegionSim &rs, RegionState st);
    /** Regions not yet retired (ascending), rebuilt when stale. */
    void refreshActiveRegions();

    int64_t issueOverhead(const RegionSim &rs) const;
    bool forwardsSatisfied(const RegionSim &rs) const;
    /** Region retired everything it will ever run. */
    bool regionDone(const RegionSim &rs) const;
    /** Fill per-region/PE/memory stats (success and abort paths). */
    void fillStats(SimResult &res, int64_t now) const;
    /** Diagnostic naming stalled regions, ports, FIFO occupancies. */
    std::string stallDiagnostic(int64_t now, int64_t lastProgress) const;
    bool seq_ = false;

    /** Per-memory-node plan: space pointer, bandwidth parameters, and
     *  the (region, stream) pairs bound to it, all resolved at build
     *  so the per-cycle arbitration never re-derives them. */
    struct MemPlan
    {
        NodeId node = adg::kInvalidNode;
        AddressSpace *space = nullptr;
        int widthBytes = 0;
        int numBanks = 1;
        int64_t bytes = 0;  ///< moved so far (reporting)
        /** One bound stream, pointers resolved at build (regions_ and
         *  each region's stream vector never resize after build). */
        struct Bound
        {
            RegionSim *rs = nullptr;
            StreamExec *se = nullptr;
            /** Period-replay record slot (see ReplaySlot), -1 when the
             *  owning region is not replay-eligible. */
            int recSlot = -1;
        };
        /** Streams in dense scan order. */
        std::vector<Bound> streams;
    };

    const dfg::DecoupledProgram &prog_;
    const mapper::Schedule &sched_;
    const Adg &adg_;
    MemImage &mem_;
    SimOptions opts_;
    std::vector<RegionSim> regions_;
    /** Shared-PE arbitration: cycle of the PE's last fire, indexed by
     *  NodeId (epoch-stamped; nothing to clear per cycle). */
    std::vector<int64_t> peFiredCycle_;
    /** Persistent forwarded-scalar queues (one per Forward). */
    std::vector<FwdQueue> fwdQueues_;
    /** Forward queues currently holding values (pump gate). */
    int fwdNonEmpty_ = 0;
    /** Sequential phase-script cursor. */
    size_t scriptPos_ = 0;
    bool scriptEntryActive_ = false;
    /** Outer-iv override for the script-selected issue. */
    std::map<int, int64_t> scriptIvs_;
    /** Currently-loaded configuration group. */
    int activeGroup_ = 0;
    /** Fabric unavailable until this cycle (reconfiguration). */
    int64_t reconfigUntil_ = 0;
    /** Cycles to load one configuration. */
    int64_t reconfigCycles_ = 0;
    /** Memory plans in aliveNodes(Memory) order. */
    std::vector<MemPlan> memPlans_;
    /** Any region changed lifecycle state this cycle (sparse-loop
     *  progress detection; the dense oracle keeps its snapshot). */
    bool stateChanged_ = false;
    /** Regions in {WaitDep, WaitCmd, Running, Finalizing}. */
    std::vector<int> activeRegions_;
    bool activeDirty_ = true;

    /** Ring/plan storage: external (batched) or machine-owned. */
    SimArena *arena_ = nullptr;
    SimArena ownArena_;
    /** Per-region compiled compute plans (sparse+compiled mode). */
    std::vector<RegionPlan> plans_;
    bool compiled_ = false;
    /** DSA_SIM_TRACE read once at build. */
    bool trace_ = false;
    /// @name Engine accounting (reported via SimResult)
    /// @{
    int64_t cyclesCompiled_ = 0;
    int64_t cyclesGeneric_ = 0;
    int64_t cyclesSkipped_ = 0;
    int64_t cyclesReplayed_ = 0;
    /// @}
    /** Cached nextEventTime(): stays valid across consecutive
     *  no-progress cycles (nothing that feeds it can change without
     *  progress), so clamped idle jumps don't rescan. */
    int64_t nextEventCache_ = 0;
    bool nextEventCacheValid_ = false;

    /// @name Steady-state period replay
    ///
    /// The fastest tier inside the compiled burst: when exactly one
    /// region is running, its plan is fully specialized (no generic
    /// steps, no fallback streams, no forwards), and the region's
    /// *gate-relevant* state — buffer occupancies, pipe arrival times
    /// relative to now, accumulate-latency gates, decimation/reset
    /// counter residues, clamped stream remainders — recurs with
    /// period p, then the next p cycles provably perform exactly the
    /// same action sequence as the last p (values differ, gates do
    /// not: no specialized gate reads a data value). The tier records
    /// one period's micro-action trace and replays it for m periods
    /// with zero gate evaluation, bounded so no stream runs low enough
    /// to perturb a gate and no watchdog/deadline check is displaced.
    /// @{

    enum class RpPhase : uint8_t { Off, Idle, Detect, Record, Armed };

    /** Pre-resolved per-stream replay binding, in tickStreams visit
     *  order (memory plans in scan order, then generators). */
    struct ReplaySlot
    {
        StreamExec *se = nullptr;
        AddressSpace *space = nullptr;     // null for generators
        AddressSpace *idxSpace = nullptr;  // indirect kinds
        StreamKind kind = StreamKind::LinearRead;
        int elemB = 0;
        int idxElemB = 0;
        int64_t base = 0;                  // indirect address base
        OpCode updateOp = OpCode::Add;     // atomic update
        OpFn updateFn = nullptr;           // pre-dispatched updateOp
        /** Upper bound on one cycle's element count: the snapshot
         *  clamps the stream remainder here (beyond it the remainder
         *  cannot influence any gate) and replay keeps at least this
         *  much slack so no recorded delivery turns remainder-bound. */
        int64_t maxN = 1;
    };

    /** One recorded cycle: step actions + a span of deliveries. */
    struct RpCycle
    {
        uint64_t fired = 0;
        uint64_t latched = 0;
        uint32_t dFirst = 0;
        uint32_t dCount = 0;
    };

    /**
     * One pre-decoded micro-action of the armed period. The hot
     * replay loop executes these value-only: no timestamps (pipe
     * arrival times are reconstructed at chunk end from the reference
     * relative times), no fire/pop counters (batched at chunk end
     * from per-step per-period counts), no arbitration stamps (stale
     * stamps compare unequal to every post-replay cycle, which is
     * exactly the live meaning). Residue-dependent behavior (OutEvery
     * keep/discard, self-acc periodic reset) is baked into flags —
     * the armed snapshot pins the residues, so the pattern is
     * period-invariant.
     */
    struct RpAction
    {
        enum Op : uint8_t {
            Latch,      ///< PortSimple buffer refill only
            Fire,       ///< PortSimple push (reuses latched value)
            LatchFire,  ///< refill + push in one cycle
            Inst,       ///< InstSimple / InstAcc via pre-bound fn
            /// @name Devirtualized InstSimple for the hottest ALU
            /// shapes (two pipe operands, no immediates): the fn
            /// pointer is matched back to its opcode at arm time so
            /// the replay loop runs the arithmetic inline.
            /// @{
            InstFAdd2,
            InstFMul2,
            InstAdd2,
            InstMul2,
            /// @}
            SelfAcc,    ///< acc = fn(acc, v); flags bit0 = reset after
            SelfAccF,   ///< SelfAcc with fn == FAdd, inline fp add
            OutDeliver, ///< OutSimple, or OutEvery on a keep cycle
            OutDiscard, ///< OutEvery on a decimated cycle
            OutLatch,   ///< OutLast: latch lastVec
            Deliver,    ///< stream delivery of n elements via slot idx
        };
        uint8_t op = Inst;
        uint8_t flags = 0;
        uint16_t idx = 0;  ///< plan step index or replay slot index
        int32_t n = 0;     ///< Deliver element count
    };

    /** Build per-region eligibility + slot bindings (end of build). */
    void buildReplayInfo();
    /** Serialize region r's gate-relevant state relative to @p now. */
    void collectSnapshot(int r, int64_t now, std::vector<int64_t> &v) const;
    /** Phase driver at the top of a burst cycle; returns the number of
     *  cycles consumed by replay (0 = execute the cycle normally). */
    int64_t replayTop(int64_t now, int64_t burstHzn,
                      bool deadlineLimited);
    /** Append the just-executed cycle to the period trace. */
    void recordCycleEnd(int64_t now);
    /** Decode the confirmed trace into the flat period program and
     *  the chunk-end fix-up tables (called at arm, @p now = period
     *  boundary whose live state is the reference). */
    void buildPeriodProgram(int r, int64_t now);
    /** Execute @p m recorded periods starting at @p now. */
    void replayRun(int64_t now, int64_t m);
    /** Replay one stream delivery of @p n elements (gate-free). */
    void execSlot(const ReplaySlot &sl, int32_t n, int64_t now);
    /** Drop transient detection state (cheap, keeps an armed trace). */
    void rpDemote(int64_t now);

    static constexpr int64_t kRpMaxPeriod = 2048;
    static constexpr int64_t kRpDetectWindow = 4096;
    static constexpr int64_t kRpRetryBackoff = 32768;
    static constexpr int64_t kRpArmedPatience = 4096;

    RpPhase rpPhase_ = RpPhase::Off;
    int rpRegion_ = -1;
    int64_t rpResumeAt_ = 0;
    int64_t rpDetectUntil_ = 0;
    int64_t rpRecordStart_ = 0;
    int64_t rpPeriod_ = 0;
    int64_t rpMisses_ = 0;
    /** Absolute cycle of the last progress inside the last replay. */
    int64_t rpProgress_ = 0;
    int64_t rpLastActiveOff_ = -1;
    bool recording_ = false;
    uint64_t rpFired_ = 0;
    uint64_t rpLatched_ = 0;
    std::unordered_map<uint64_t, int64_t> rpHashAt_;
    std::vector<int64_t> rpSnap_, rpRef_;
    std::vector<RpCycle> rpTrace_;
    std::vector<std::pair<uint16_t, int32_t>> rpDeliv_;
    /// @name Armed period program + chunk-end fix-up tables
    /// @{
    std::vector<RpAction> rpProg_;
    /** Per plan step: fires per period / latches per period / offset
     *  of the step's last fire within the period (-1 = never). */
    std::vector<int32_t> rpStepFires_, rpStepLatches_, rpStepLastOff_;
    /** PortSimple steps' reuseLeft at the period boundary. */
    std::vector<int8_t> rpStepReuse_;
    /** Offset of the last step-fire cycle within the period. */
    int64_t rpLastFireOff_ = -1;
    /** Reference pipe occupancy: every pipe's entry arrival times
     *  relative to the period boundary (unclamped — exact), flattened;
     *  pipe i's entries are rpPipeRel_[rpPipeStart_[i] ...). */
    std::vector<Pipe *> rpPipes_;
    std::vector<int32_t> rpPipeStart_;
    std::vector<int64_t> rpPipeRel_;
    /// @}
    std::vector<int32_t> recNBuf_;
    /** Per-cycle delivered-count sink during recording (else null). */
    int32_t *recN_ = nullptr;
    std::vector<int64_t> rpPerPeriodN_;
    std::vector<int64_t> rpBytesBase_;
    std::vector<int64_t> rpBytesPeriod_;
    std::vector<uint8_t> rpEligible_;
    std::vector<std::vector<ReplaySlot>> rpSlots_;
    /** genStreams-aligned record slots per region (-1 = untracked). */
    std::vector<std::vector<int>> genRecSlots_;
    /// @}

    /// @name JIT tier: native execution of the armed period program
    ///
    /// At arm time the period program is additionally lowered to C++
    /// (sim/jit/jit_emit) and handed to the process-wide JitRuntime;
    /// replayRun() dispatches whole chunks through the native kernel
    /// once it is Ready, interpreting until then. The kernel performs
    /// exactly the hot loop's value mutations; the chunk-end fix-ups
    /// stay host-side and are shared between both paths, plus two
    /// host-side extras the interpreted loop does per element (sink
    /// seen/taken counters, OutLast lastValid).
    /// @{

    /** Mark region @p r's freshly armed program as jit-candidate
     *  (cheap: actual lowering is deferred to jitTryNative so runs
     *  that never replay long enough to win never pay for it). */
    void jitArm(int r);
    /** Lower the armed program (source text, cache key) — the
     *  expensive half of arming, run at most once per arm and only
     *  once replay volume passes the amortization gate. */
    void jitLower();
    /** Run @p m periods through the native kernel; false = not ready
     *  (or not worth it), caller interprets. */
    bool jitTryNative(int64_t m);

    /** Amortization gate, in simulated-cycles-per-period-action:
     *  lower once the replay volume since the arm (cycles already
     *  replayed plus the chunk being offered) reaches this many cycles
     *  per action. Lowering costs roughly 0.7µs per action (text
     *  emission + key hashing) while native replay gains ~22ns/cycle
     *  over the interpreted loop, so break-even sits near 32
     *  cycles/action for a single run; 24 engages high-volume kernels
     *  (whose later chunks dwarf the lowering cost) one chunk earlier
     *  while still excluding one-shot programs whose entire replay
     *  is the same order as their action count. */
    static constexpr int64_t kJitLowerCyclesPerAction = 24;

    bool jitWanted_ = false; ///< opts + host allow the jit tier
    bool jitLowered_ = false; ///< lowering ran for the current arm
    int jitRegion_ = -1;      ///< region of the current arm
    int64_t jitArmReplayed0_ = 0; ///< cyclesReplayed_ at arm time
    int64_t cyclesJit_ = 0;
    std::string jitDir_;
    /** Canonical ADG fingerprint, computed only if acquire() starts a
     *  new compile job (manifest metadata; ~50µs structural walk). */
    std::string jitFp_;
    uint64_t jitOptsHash_ = 0;
    bool jitUsable_ = false; ///< armed program lowered successfully
    /** Minimum chunk size (in simulated cycles) worth running
     *  natively: every native call pays a table rebind proportional
     *  to the program's operand-table footprint, so short chunks are
     *  faster through the interpreted loop. Set at arm time. */
    int64_t jitMinChunkCycles_ = 0;
    jit::Emitted jitEm_;
    std::string jitKey_;
    jit::KernelFn jitFn_ = nullptr;
    /// Kernel argument tables, rebound before every native chunk.
    std::vector<long long> jitS_;
    std::vector<Value *> jitP_;
    std::vector<const long long *> jitA_;
    std::vector<unsigned char *> jitB_;
    /** OutLast ports in the program: lastValid set host-side. */
    std::vector<OutPortSim *> jitLastPorts_;
    /** Per-period sink counter deltas (deliverElement's ++seen/++taken
     *  batched: wants() is provably constant across the chunk). */
    struct JitSinkDelta
    {
        OutSink *sink = nullptr;
        int64_t seenPer = 0;
        int64_t takenPer = 0;
    };
    std::vector<JitSinkDelta> jitSinkDeltas_;
    /// @}
};

int64_t
Machine::issueOverhead(const RegionSim &rs) const
{
    const auto &ctrl = adg_.control();
    int cmds = static_cast<int>(rs.reg->streams.size());
    return static_cast<int64_t>(cmds / std::max(0.1, ctrl.cmdIssueIpc)) +
           ctrl.cmdLatency;
}

bool
Machine::forwardsSatisfied(const RegionSim &rs) const
{
    // A region may not retire its issue while an incoming forward's
    // producer could still deliver values for it.
    for (const auto &f : prog_.forwards) {
        if (f.dstRegion != rs.idx)
            continue;
        const RegionSim &src = regions_[f.srcRegion];
        bool done = src.state == RegionState::Complete ||
                    (seq_ && src.completedIssues > rs.completedIssues);
        if (!done)
            return false;
    }
    return true;
}

void
Machine::build()
{
    seq_ = prog_.sequential && !prog_.phaseScript.empty();
    // Rough bitstream size: ~48 bits of config per component.
    int64_t aliveCount = 0;
    for (NodeId id = 0; id < adg_.nodeIdBound(); ++id)
        if (adg_.nodeAlive(id))
            ++aliveCount;
    reconfigCycles_ =
        aliveCount * 48 / std::max(1, adg_.control().configBitsPerCycle);
    regions_.resize(prog_.regions.size());
    for (size_t r = 0; r < prog_.regions.size(); ++r)
        buildRegion(static_cast<int>(r));

    // Forwards: out-port sinks into persistent queues pumped into the
    // destination region's port as it consumes.
    fwdQueues_.resize(prog_.forwards.size());
    for (FwdQueue &fq : fwdQueues_)
        fq.nonEmptyCount = &fwdNonEmpty_;
    for (size_t fi = 0; fi < prog_.forwards.size(); ++fi) {
        const auto &f = prog_.forwards[fi];
        RegionSim &src = regions_[f.srcRegion];
        RegionSim &dst = regions_[f.dstRegion];
        OutSink sink;
        sink.kind = OutSink::Kind::Forward;
        sink.fwdQueue = &fwdQueues_[fi];
        src.outPorts[f.srcPort].sinks.push_back(sink);
        if (f.viaMemory)
            dst.waitOnRegions.push_back(f.srcRegion);
    }
    // Cross-region array dependences (disjoint nests): full ordering.
    for (size_t r = 0; r < prog_.regions.size(); ++r)
        for (int dep : prog_.regions[r].dependsOn)
            regions_[r].waitOnRegions.push_back(dep);

    // Flat PE-fire stamps (epoch = cycle number; nothing to clear).
    peFiredCycle_.assign(static_cast<size_t>(adg_.nodeIdBound()), -1);

    // Per-region hot-loop caches: everything the per-cycle code would
    // otherwise re-derive by filtering (which ports are real, which
    // streams are generators / scalar-fallback, which instructions are
    // latency-gated accumulators).
    for (RegionSim &rs : regions_) {
        for (size_t v = 0; v < rs.inPorts.size(); ++v) {
            if (rs.inPorts[v].lanePipes.empty())
                continue;
            rs.realInPorts.push_back(static_cast<int>(v));
            if (rs.inPorts[v].minPopInterval > 0)
                rs.throttledPorts.push_back(static_cast<int>(v));
        }
        for (size_t v = 0; v < rs.outPorts.size(); ++v)
            if (!rs.outPorts[v].lanePipes.empty())
                rs.realOutPorts.push_back(static_cast<int>(v));
        for (size_t i = 0; i < rs.insts.size(); ++i)
            if (rs.insts[i].vx->isAccumulate())
                rs.accInsts.emplace_back(
                    static_cast<int>(i),
                    opInfo(rs.insts[i].vx->op).latency);
        for (StreamExec &se : rs.streams) {
            const Stream &st = *se.st;
            if (st.kind == StreamKind::Const ||
                st.kind == StreamKind::Iota)
                rs.genStreams.push_back(st.id);
            if (st.scalarFallback)
                rs.fallbackStreams.push_back(st.id);
            if (st.kind == StreamKind::IndirectRead ||
                st.kind == StreamKind::IndirectWrite ||
                st.kind == StreamKind::AtomicUpdate)
                se.idxSpace = &mem_.space(st.idxSpace);
        }
    }

    // Memory plans: per alive memory node, the streams it serves in
    // the same scan order as the naive alive-memories x regions x
    // streams sweep, with the stream->memory binding ("mine") already
    // decided — so per-cycle arbitration outcomes are identical.
    for (NodeId m : adg_.aliveNodes(NodeKind::Memory)) {
        const auto &mem = adg_.node(m).mem();
        MemPlan plan;
        plan.node = m;
        plan.widthBytes = mem.widthBytes;
        plan.numBanks = std::max(1, mem.numBanks);
        plan.space = &mem_.space(mem.kind == adg::MemKind::Main
                                     ? dfg::MemSpace::Main
                                     : dfg::MemSpace::Spad);
        for (RegionSim &rs : regions_) {
            const auto &rsch = sched_.regions[rs.idx];
            for (StreamExec &se : rs.streams) {
                const Stream &st = *se.st;
                if (!st.touchesMemory())
                    continue;
                bool mine = rs.reg->serialized
                    ? (st.space == dfg::MemSpace::Main) ==
                          (mem.kind == adg::MemKind::Main)
                    : rsch.streamMap[st.id] == m;
                if (mine)
                    plan.streams.push_back({&rs, &se});
            }
        }
        memPlans_.push_back(std::move(plan));
    }

    trace_ = std::getenv("DSA_SIM_TRACE") != nullptr;

    // Compiled steady-state tier: lower each region's dataflow into a
    // flat micro-op plan (only meaningful under the event-driven loop;
    // the dense oracle never consults plans).
    compiled_ = opts_.sparse && opts_.compiled;
    jitWanted_ = compiled_ && opts_.jit &&
                 jit::JitRuntime::hostSupported();
    if (jitWanted_)
        jitDir_ = opts_.jitCacheDir.empty() ? jit::defaultCacheDir()
                                            : opts_.jitCacheDir;
    if (compiled_) {
        plans_.resize(regions_.size());
        for (size_t r = 0; r < regions_.size(); ++r)
            plans_[r] = detail::buildRegionPlan(
                regions_[r], peFiredCycle_.data(), *arena_);
        buildReplayInfo();
    }
}

void
Machine::buildReplayInfo()
{
    rpEligible_.assign(regions_.size(), 0);
    rpSlots_.assign(regions_.size(), {});
    genRecSlots_.assign(regions_.size(), {});
    // Forward-touched regions are never replayed: pumpForwards can
    // move values outside the recorded action set, and forward sinks
    // grow machine-level queues the snapshot does not cover.
    std::vector<uint8_t> fwdTouched(regions_.size(), 0);
    for (const auto &f : prog_.forwards) {
        fwdTouched[static_cast<size_t>(f.srcRegion)] = 1;
        fwdTouched[static_cast<size_t>(f.dstRegion)] = 1;
    }
    bool any = false;
    for (size_t r = 0; r < regions_.size(); ++r) {
        RegionSim &rs = regions_[r];
        const RegionPlan &plan = plans_[r];
        genRecSlots_[r].assign(rs.genStreams.size(), -1);
        if (plan.numSteps <= 0 || plan.numSteps > 64)
            continue;
        if (fwdTouched[r] || !rs.fallbackStreams.empty())
            continue;
        bool allSpecial = true;
        for (int i = 0; i < plan.numSteps && allSpecial; ++i) {
            auto k = plan.steps[i].kind;
            allSpecial = k != detail::PlanStep::PortGeneric &&
                         k != detail::PlanStep::InstGeneric &&
                         k != detail::PlanStep::OutGeneric;
        }
        if (!allSpecial)
            continue;
        // Bind record slots in exact tickStreams visit order.
        auto &slots = rpSlots_[r];
        bool ok = true;
        for (MemPlan &mp : memPlans_) {
            for (MemPlan::Bound &b : mp.streams) {
                if (b.rs != &rs || !ok)
                    continue;
                const Stream &st = *b.se->st;
                ReplaySlot sl;
                sl.se = b.se;
                sl.space = mp.space;
                sl.idxSpace = b.se->idxSpace;
                sl.kind = st.kind;
                sl.elemB = st.pattern.elemBytes;
                sl.idxElemB = st.idxElemBytes;
                sl.base = st.pattern.baseBytes;
                sl.updateOp = st.updateOp;
                sl.updateFn = opFunction(st.updateOp);
                int eb = std::max(1, sl.elemB);
                switch (st.kind) {
                  case StreamKind::LinearRead:
                    sl.maxN = std::min<int64_t>(
                        mp.widthBytes / eb, b.se->target->capacity);
                    break;
                  case StreamKind::IndirectRead:
                    sl.maxN = std::min<int64_t>(
                        std::min<int64_t>(
                            mp.widthBytes /
                                std::max(1, sl.elemB + sl.idxElemB),
                            mp.numBanks),
                        b.se->target->capacity);
                    break;
                  case StreamKind::LinearWrite:
                    sl.maxN = std::min<int64_t>(mp.widthBytes / eb,
                                                b.se->writeBufCap);
                    break;
                  case StreamKind::IndirectWrite:
                  case StreamKind::AtomicUpdate: {
                    int cost = sl.elemB + sl.idxElemB +
                               (st.kind == StreamKind::AtomicUpdate
                                    ? sl.elemB
                                    : 0);
                    sl.maxN = std::min<int64_t>(
                        std::min<int64_t>(
                            mp.widthBytes / std::max(1, cost),
                            mp.numBanks),
                        b.se->writeBufCap);
                    break;
                  }
                  default:
                    ok = false;
                    break;
                }
                if (!ok)
                    continue;
                sl.maxN = std::max<int64_t>(1, sl.maxN);
                b.recSlot = static_cast<int>(slots.size());
                slots.push_back(sl);
            }
        }
        for (size_t k = 0; k < rs.genStreams.size() && ok; ++k) {
            StreamExec &se =
                rs.streams[static_cast<size_t>(rs.genStreams[k])];
            ReplaySlot sl;
            sl.se = &se;
            sl.kind = se.st->kind;
            sl.maxN = se.st->kind == StreamKind::Const
                ? se.target->capacity
                : std::min<int64_t>(8, se.target->capacity);
            sl.maxN = std::max<int64_t>(1, sl.maxN);
            genRecSlots_[r][k] = static_cast<int>(slots.size());
            slots.push_back(sl);
        }
        if (!ok || slots.size() > 4096) {
            // Unbind: the region stays interpreted/per-cycle compiled.
            for (MemPlan &mp : memPlans_)
                for (MemPlan::Bound &b : mp.streams)
                    if (b.rs == &rs)
                        b.recSlot = -1;
            genRecSlots_[r].assign(rs.genStreams.size(), -1);
            slots.clear();
            continue;
        }
        rpEligible_[r] = 1;
        any = true;
    }
    rpPhase_ = any ? RpPhase::Idle : RpPhase::Off;
    rpResumeAt_ = 64;
}

namespace {
inline uint64_t
snapHash(const std::vector<int64_t> &v)
{
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (int64_t x : v) {
        h ^= static_cast<uint64_t>(x);
        h *= 1099511628211ull;
    }
    return h;
}

/** Value-only pipe push for the replay hot loop: no arrival-time
 *  store (times are reconstructed at chunk end from the reference
 *  relative occupancy captured at arm). */
inline void
pushVal(Pipe *p, Value v)
{
    p->vals[(p->head + p->count) & p->mask] = v;
    ++p->count;
}

/** Local bit-cast helpers (the opcode.cc ones are out of line). */
inline double
asF64(Value v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

inline Value
fromF64(double d)
{
    Value v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}
} // namespace

void
Machine::collectSnapshot(int r, int64_t now,
                         std::vector<int64_t> &v) const
{
    const RegionSim &rs = regions_[static_cast<size_t>(r)];
    const RegionPlan &plan = plans_[static_cast<size_t>(r)];
    v.clear();
    v.push_back(fwdNonEmpty_);
    // Quiesce gate: values past the window all behave identically,
    // now and on every later cycle (the clamp cannot mask a future
    // gate flip because the relative value only moves further past).
    v.push_back(std::max<int64_t>(rs.lastActivity - now,
                                  -(rs.quiesceWindow + 2)));
    for (const PortSim &ps : rs.inPorts) {
        v.push_back(ps.bufCount);
        v.push_back(ps.reuseLeft);
    }
    // Every routed value's arrival time, relative; entries already
    // ready saturate (ready() only compares <= now).
    for (const auto &p : rs.pipes) {
        v.push_back(p->count);
        for (uint32_t i = 0; i < p->count; ++i)
            v.push_back(std::max<int64_t>(
                p->times[(p->head + i) & p->mask] - now, -4));
    }
    for (int i = 0; i < plan.numSteps; ++i) {
        const detail::PlanStep &s = plan.steps[i];
        switch (s.kind) {
          case detail::PlanStep::InstAcc:
          case detail::PlanStep::InstSelfAcc:
            v.push_back(std::max<int64_t>(
                s.inst->lastFire - now, -1024));
            if (s.kind == detail::PlanStep::InstSelfAcc &&
                s.accResetEvery > 0)
                v.push_back(s.inst->fires % s.accResetEvery);
            break;
          case detail::PlanStep::OutSimple:
          case detail::PlanStep::OutLast:
          case detail::PlanStep::OutEvery: {
            const OutPortSim &op = *s.outPort;
            if (s.kind == detail::PlanStep::OutEvery)
                v.push_back(op.fires % op.outputEvery);
            for (const OutSink &sk : op.sinks) {
                v.push_back(std::min(sk.seen, sk.skip));
                v.push_back(sk.take < 0 ? -1 : sk.take - sk.taken);
            }
            break;
          }
          default:
            break;
        }
    }
    // Stream remainders clamp at maxN: beyond that bound the exact
    // count cannot change any per-cycle min() outcome, and the replay
    // chunk bound keeps at least maxN of slack.
    for (const ReplaySlot &sl : rpSlots_[static_cast<size_t>(r)]) {
        const StreamExec &se = *sl.se;
        int64_t rem = static_cast<int64_t>(se.addrs.size()) -
                      static_cast<int64_t>(se.pos);
        v.push_back(std::min(rem, sl.maxN));
        v.push_back(static_cast<int64_t>(se.writeBuf.size()));
    }
}

void
Machine::rpDemote(int64_t now)
{
    recording_ = false;
    recN_ = nullptr;
    if (rpPhase_ == RpPhase::Detect || rpPhase_ == RpPhase::Record) {
        rpPhase_ = RpPhase::Idle;
        rpResumeAt_ = now + 64;
        rpHashAt_.clear();
    }
}

int64_t
Machine::replayTop(int64_t now, int64_t burstHzn, bool deadlineLimited)
{
    if (trace_ || activeRegions_.size() != 1) {
        rpDemote(now);
        return 0;
    }
    int r = activeRegions_[0];
    if (!rpEligible_[static_cast<size_t>(r)] ||
        regions_[static_cast<size_t>(r)].state != RegionState::Running) {
        rpDemote(now);
        return 0;
    }
    if (r != rpRegion_) {
        rpRegion_ = r;
        rpPhase_ = RpPhase::Idle;
        rpResumeAt_ = now + 32;
        rpHashAt_.clear();
        recording_ = false;
        recN_ = nullptr;
        return 0;
    }
    if (rpPhase_ == RpPhase::Idle) {
        if (now < rpResumeAt_)
            return 0;
        rpPhase_ = RpPhase::Detect;
        rpDetectUntil_ = now + kRpDetectWindow;
        rpHashAt_.clear();
    }
    bool haveSnap = false;
    if (rpPhase_ == RpPhase::Detect) {
        collectSnapshot(r, now, rpSnap_);
        uint64_t h = snapHash(rpSnap_);
        auto it = rpHashAt_.find(h);
        int64_t p = it != rpHashAt_.end() ? now - it->second : 0;
        int64_t window = opts_.progressWindow > 0
            ? opts_.progressWindow
            : INT64_MAX;
        if (p >= 1 && p <= kRpMaxPeriod && 2 * p < window) {
            // Candidate period (hash match; the end-of-record compare
            // verifies it in full). Record the next p cycles.
            rpPeriod_ = p;
            rpRef_ = rpSnap_;
            rpRecordStart_ = now;
            rpTrace_.clear();
            rpDeliv_.clear();
            recNBuf_.assign(rpSlots_[static_cast<size_t>(r)].size(), 0);
            rpBytesBase_.clear();
            for (const MemPlan &mp : memPlans_)
                rpBytesBase_.push_back(mp.bytes);
            recording_ = true;
            recN_ = recNBuf_.data();
            rpPhase_ = RpPhase::Record;
            return 0;
        }
        rpHashAt_[h] = now;
        if (now > rpDetectUntil_) {
            rpPhase_ = RpPhase::Idle;
            rpResumeAt_ = now + kRpRetryBackoff;
            rpHashAt_.clear();
        }
        return 0;
    }
    if (rpPhase_ == RpPhase::Record) {
        if (now - rpRecordStart_ < rpPeriod_)
            return 0;  // recordCycleEnd appends as cycles execute
        recording_ = false;
        recN_ = nullptr;
        collectSnapshot(r, now, rpSnap_);
        haveSnap = true;
        bool confirmed = rpSnap_ == rpRef_ &&
                         static_cast<int64_t>(rpTrace_.size()) ==
                             rpPeriod_;
        if (!confirmed) {
            rpPhase_ = RpPhase::Detect;
            rpDetectUntil_ = now + kRpDetectWindow;
            rpHashAt_[snapHash(rpSnap_)] = now;
            return 0;
        }
        const auto &slots = rpSlots_[static_cast<size_t>(r)];
        rpPerPeriodN_.assign(slots.size(), 0);
        rpLastActiveOff_ = -1;
        for (size_t c = 0; c < rpTrace_.size(); ++c) {
            const RpCycle &cy = rpTrace_[c];
            for (uint32_t d = 0; d < cy.dCount; ++d)
                rpPerPeriodN_[rpDeliv_[cy.dFirst + d].first] +=
                    rpDeliv_[cy.dFirst + d].second;
            if (cy.fired || cy.dCount)
                rpLastActiveOff_ = static_cast<int64_t>(c);
        }
        rpBytesPeriod_.clear();
        for (size_t mi = 0; mi < memPlans_.size(); ++mi)
            rpBytesPeriod_.push_back(memPlans_[mi].bytes -
                                     rpBytesBase_[mi]);
        if (rpLastActiveOff_ < 0) {
            // A period in which nothing moves is a stall, not steady
            // state; leave it to the stall watchdog.
            rpPhase_ = RpPhase::Idle;
            rpResumeAt_ = now + kRpRetryBackoff;
            return 0;
        }
        buildPeriodProgram(r, now);
        jitArm(r);
        rpPhase_ = RpPhase::Armed;
        rpMisses_ = 0;
    }
    // Armed. Cheap cycle-count bounds first: during the drain tail
    // every cycle would otherwise pay a full snapshot compare just to
    // find m == 0.
    const auto &slots = rpSlots_[static_cast<size_t>(r)];
    int64_t m = INT64_MAX;
    for (size_t s = 0; s < slots.size(); ++s) {
        if (rpPerPeriodN_[s] <= 0)
            continue;
        const StreamExec &se = *slots[s].se;
        int64_t rem = static_cast<int64_t>(se.addrs.size()) -
                      static_cast<int64_t>(se.pos);
        int64_t avail = rem - slots[s].maxN;
        if (avail < rpPerPeriodN_[s])
            return 0;  // too close to drain: finish per-cycle
        m = std::min(m, avail / rpPerPeriodN_[s]);
    }
    m = std::min(m, (opts_.maxCycles - now) / rpPeriod_);
    m = std::min(m, (burstHzn - now) / rpPeriod_);
    if (deadlineLimited) {
        // Stop at the next watchdog boundary so the wall-clock check
        // runs on exactly the cycles the per-cycle loops check it on.
        int64_t boundary = ((now >> 13) + 1) << 13;
        m = std::min(m, (boundary - now) / rpPeriod_);
    }
    m = std::min<int64_t>(m, 1 << 20);
    if (m < 1)
        return 0;
    // One snapshot compare decides whether the recorded period applies
    // from here.
    if (!haveSnap)
        collectSnapshot(r, now, rpSnap_);
    if (rpSnap_ != rpRef_) {
        if (++rpMisses_ > kRpArmedPatience) {
            rpPhase_ = RpPhase::Idle;
            rpResumeAt_ = now + kRpRetryBackoff;
            rpMisses_ = 0;
        }
        return 0;
    }
    rpMisses_ = 0;
    replayRun(now, m);
    rpProgress_ = now + (m - 1) * rpPeriod_ + rpLastActiveOff_;
    return m * rpPeriod_;
}

void
Machine::recordCycleEnd(int64_t now)
{
    RpCycle cy;
    cy.fired = rpFired_;
    cy.latched = rpLatched_;
    cy.dFirst = static_cast<uint32_t>(rpDeliv_.size());
    for (size_t s = 0; s < recNBuf_.size(); ++s)
        if (recNBuf_[s] > 0) {
            rpDeliv_.push_back(
                {static_cast<uint16_t>(s), recNBuf_[s]});
            recNBuf_[s] = 0;
        }
    cy.dCount = static_cast<uint32_t>(rpDeliv_.size()) - cy.dFirst;
    rpTrace_.push_back(cy);
    if (stateChanged_ ||
        static_cast<int64_t>(rpTrace_.size()) > rpPeriod_) {
        recording_ = false;
        recN_ = nullptr;
        rpPhase_ = RpPhase::Idle;
        rpResumeAt_ = now + 64;
    }
}

void
Machine::execSlot(const ReplaySlot &sl, int32_t n, int64_t now)
{
    (void)now;
    StreamExec &se = *sl.se;
    // Constant-size access helpers: the dominant element width (8
    // bytes) gets a compile-time-sized load/store, turning the
    // variable-length memcpy inside AddressSpace into a single move.
    const int eb = sl.elemB;
    auto loadE = [&](int64_t a) {
        return eb == 8 ? sl.space->load(a, 8) : sl.space->load(a, eb);
    };
    auto storeE = [&](int64_t a, Value v) {
        if (eb == 8)
            sl.space->store(a, 8, v);
        else
            sl.space->store(a, eb, v);
    };
    auto loadIdx = [&](int64_t a) {
        return sl.idxElemB == 8
            ? sl.idxSpace->load(a, 8)
            : sl.idxSpace->load(a, sl.idxElemB);
    };
    switch (sl.kind) {
      case StreamKind::LinearRead: {
        PortSim &t = *se.target;
        const int64_t *addrs = se.addrs.data() + se.pos;
        uint32_t idx = t.bufHead + t.bufCount;
        for (int32_t i = 0; i < n; ++i)
            t.buf[(idx + static_cast<uint32_t>(i)) & t.bufMask] =
                loadE(addrs[i]);
        t.bufCount += static_cast<uint32_t>(n);
        se.pos += static_cast<size_t>(n);
        break;
      }
      case StreamKind::IndirectRead: {
        for (int32_t i = 0; i < n; ++i) {
            int64_t idxV =
                static_cast<int64_t>(loadIdx(se.idxAddrs[se.pos]));
            se.target->deliver(loadE(sl.base + idxV * sl.elemB));
            ++se.pos;
        }
        break;
      }
      case StreamKind::LinearWrite: {
        const int64_t *addrs = se.addrs.data() + se.pos;
        for (int32_t i = 0; i < n; ++i)
            storeE(addrs[i], se.writeBuf[static_cast<size_t>(i)]);
        se.writeBuf.erase_front(static_cast<size_t>(n));
        se.pos += static_cast<size_t>(n);
        break;
      }
      case StreamKind::IndirectWrite:
      case StreamKind::AtomicUpdate: {
        bool atomic = sl.kind == StreamKind::AtomicUpdate;
        for (int32_t i = 0; i < n; ++i) {
            int64_t idxV =
                static_cast<int64_t>(loadIdx(se.idxAddrs[se.pos]));
            int64_t addr = sl.base + idxV * sl.elemB;
            Value v = se.writeBuf.front();
            se.writeBuf.pop_front();
            if (atomic) {
                Value old = loadE(addr);
                v = sl.updateFn(old, v, 0, nullptr);
            }
            storeE(addr, v);
            ++se.pos;
        }
        break;
      }
      case StreamKind::Const: {
        PortSim &t = *se.target;
        uint32_t idx = t.bufHead + t.bufCount;
        Value cv = se.st->constValue;
        for (int32_t i = 0; i < n; ++i)
            t.buf[(idx + static_cast<uint32_t>(i)) & t.bufMask] = cv;
        t.bufCount += static_cast<uint32_t>(n);
        se.pos += static_cast<size_t>(n);
        break;
      }
      case StreamKind::Iota: {
        PortSim &t = *se.target;
        uint32_t idx = t.bufHead + t.bufCount;
        const int64_t *vals = se.addrs.data() + se.pos;
        for (int32_t i = 0; i < n; ++i)
            t.buf[(idx + static_cast<uint32_t>(i)) & t.bufMask] =
                static_cast<Value>(vals[i]);
        t.bufCount += static_cast<uint32_t>(n);
        se.pos += static_cast<size_t>(n);
        break;
      }
      default:
        DSA_ASSERT(false, "unreplayable stream kind");
    }
}

void
Machine::buildPeriodProgram(int r, int64_t now)
{
    RegionSim &rs = regions_[static_cast<size_t>(r)];
    const RegionPlan &plan = plans_[static_cast<size_t>(r)];
    const int n = plan.numSteps;
    rpProg_.clear();
    rpStepFires_.assign(static_cast<size_t>(n), 0);
    rpStepLatches_.assign(static_cast<size_t>(n), 0);
    rpStepLastOff_.assign(static_cast<size_t>(n), -1);
    rpStepReuse_.assign(static_cast<size_t>(n), 0);
    rpLastFireOff_ = -1;
    // Virtual fire counters seeded from the live boundary values: the
    // armed snapshot pins fires%outputEvery and fires%accResetEvery,
    // so keep/reset patterns decoded here hold for every replayed
    // period, not just the recorded one.
    std::vector<int64_t> vfires(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        const detail::PlanStep &s = plan.steps[i];
        if (s.kind == detail::PlanStep::InstSelfAcc)
            vfires[static_cast<size_t>(i)] = s.inst->fires;
        else if (s.kind == detail::PlanStep::OutEvery)
            vfires[static_cast<size_t>(i)] = s.outPort->fires;
        else if (s.kind == detail::PlanStep::PortSimple)
            rpStepReuse_[static_cast<size_t>(i)] =
                static_cast<int8_t>(s.port->reuseLeft);
    }
    for (size_t c = 0; c < rpTrace_.size(); ++c) {
        const RpCycle &cy = rpTrace_[c];
        for (uint32_t d = 0; d < cy.dCount; ++d) {
            const auto &dv = rpDeliv_[cy.dFirst + d];
            RpAction a;
            a.op = RpAction::Deliver;
            a.idx = dv.first;
            a.n = dv.second;
            rpProg_.push_back(a);
        }
        uint64_t bits = cy.fired | cy.latched;
        while (bits) {
            int i = __builtin_ctzll(bits);
            bits &= bits - 1;
            bool fired = (cy.fired >> i) & 1;
            bool latched = (cy.latched >> i) & 1;
            const detail::PlanStep &s = plan.steps[i];
            RpAction a;
            a.idx = static_cast<uint16_t>(i);
            switch (s.kind) {
              case detail::PlanStep::PortSimple:
                a.op = latched
                    ? (fired ? RpAction::LatchFire : RpAction::Latch)
                    : RpAction::Fire;
                break;
              case detail::PlanStep::InstSimple:
                // Devirtualize the hottest ALU shapes: match the
                // pre-dispatched fn pointer back to its opcode.
                if (s.nIn == 2 && s.in[0] && s.in[1]) {
                    if (s.fn == opFunction(OpCode::FAdd))
                        a.op = RpAction::InstFAdd2;
                    else if (s.fn == opFunction(OpCode::FMul))
                        a.op = RpAction::InstFMul2;
                    else if (s.fn == opFunction(OpCode::Add))
                        a.op = RpAction::InstAdd2;
                    else if (s.fn == opFunction(OpCode::Mul))
                        a.op = RpAction::InstMul2;
                    else
                        a.op = RpAction::Inst;
                } else {
                    a.op = RpAction::Inst;
                }
                break;
              case detail::PlanStep::InstAcc:
                a.op = RpAction::Inst;
                break;
              case detail::PlanStep::InstSelfAcc:
                a.op = s.fn == opFunction(OpCode::FAdd)
                    ? RpAction::SelfAccF
                    : RpAction::SelfAcc;
                ++vfires[static_cast<size_t>(i)];
                if (s.accResetEvery > 0 &&
                    vfires[static_cast<size_t>(i)] % s.accResetEvery ==
                        0)
                    a.flags = 1;
                break;
              case detail::PlanStep::OutSimple:
                a.op = RpAction::OutDeliver;
                break;
              case detail::PlanStep::OutEvery:
                a.op = (vfires[static_cast<size_t>(i)] + 1) %
                               s.outPort->outputEvery ==
                           0
                    ? RpAction::OutDeliver
                    : RpAction::OutDiscard;
                ++vfires[static_cast<size_t>(i)];
                break;
              case detail::PlanStep::OutLast:
                a.op = RpAction::OutLatch;
                break;
              default:
                DSA_ASSERT(false, "generic step in armed period");
            }
            if (fired) {
                ++rpStepFires_[static_cast<size_t>(i)];
                rpStepLastOff_[static_cast<size_t>(i)] =
                    static_cast<int32_t>(c);
            }
            if (latched)
                ++rpStepLatches_[static_cast<size_t>(i)];
            rpProg_.push_back(a);
        }
        if (cy.fired)
            rpLastFireOff_ = static_cast<int64_t>(c);
    }
    // Reference pipe occupancy at the period boundary, unclamped.
    // Exact for entries inside the clamp horizon (the recurrence makes
    // their relative arrival period-invariant); entries at or past the
    // clamp are already-ready, where every past timestamp is
    // observationally identical (gates only compare <= now).
    rpPipes_.clear();
    rpPipeStart_.clear();
    rpPipeRel_.clear();
    for (const auto &pp : rs.pipes) {
        rpPipes_.push_back(pp.get());
        rpPipeStart_.push_back(static_cast<int32_t>(rpPipeRel_.size()));
        for (uint32_t i = 0; i < pp->count; ++i)
            rpPipeRel_.push_back(
                pp->times[(pp->head + i) & pp->mask] - now);
    }
    rpPipeStart_.push_back(static_cast<int32_t>(rpPipeRel_.size()));
}

void
Machine::jitArm(int r)
{
    jitFn_ = nullptr;
    jitUsable_ = false;
    jitLowered_ = false;
    jitRegion_ = r;
    jitArmReplayed0_ = cyclesReplayed_;
}

void
Machine::jitLower()
{
    jitLowered_ = true;
    const int r = jitRegion_;
    const RegionPlan &plan = plans_[static_cast<size_t>(r)];
    const auto &slots = rpSlots_[static_cast<size_t>(r)];
    jit::KernelBuilder b;
    jitLastPorts_.clear();
    jitSinkDeltas_.clear();
    // Elements deliverElement() would see per period, per out port
    // (the kernel pushes values but leaves the sink seen/taken
    // counters to the chunk-end fix-up).
    std::map<OutPortSim *, int64_t> delivered;
    for (const RpAction &a : rpProg_) {
        switch (a.op) {
          case RpAction::Latch:
            b.latch(plan.steps[a.idx].port);
            break;
          case RpAction::Fire:
            b.fire(plan.steps[a.idx]);
            break;
          case RpAction::LatchFire:
            b.latchFire(plan.steps[a.idx]);
            break;
          case RpAction::Inst:
            b.inst(plan.steps[a.idx],
                   plan.steps[a.idx].kind == detail::PlanStep::InstAcc);
            break;
          case RpAction::InstFAdd2:
            b.inst2(plan.steps[a.idx], OpCode::FAdd);
            break;
          case RpAction::InstFMul2:
            b.inst2(plan.steps[a.idx], OpCode::FMul);
            break;
          case RpAction::InstAdd2:
            b.inst2(plan.steps[a.idx], OpCode::Add);
            break;
          case RpAction::InstMul2:
            b.inst2(plan.steps[a.idx], OpCode::Mul);
            break;
          case RpAction::SelfAcc:
            b.selfAcc(plan.steps[a.idx], false, a.flags & 1);
            break;
          case RpAction::SelfAccF:
            b.selfAcc(plan.steps[a.idx], true, a.flags & 1);
            break;
          case RpAction::OutDeliver: {
            const detail::PlanStep &s = plan.steps[a.idx];
            b.outDeliver(s);
            delivered[s.outPort] += s.nOut;
            break;
          }
          case RpAction::OutDiscard:
            b.outDiscard(plan.steps[a.idx]);
            break;
          case RpAction::OutLatch: {
            const detail::PlanStep &s = plan.steps[a.idx];
            b.outLatch(s);
            jitLastPorts_.push_back(s.outPort);
            break;
          }
          case RpAction::Deliver: {
            const ReplaySlot &sl = slots[a.idx];
            jit::StreamRef sr;
            sr.kind = sl.kind;
            sr.elemB = sl.elemB;
            sr.idxElemB = sl.idxElemB;
            sr.base = sl.base;
            sr.updateFn = sl.updateFn;
            sr.se = sl.se;
            sr.space = sl.space;
            sr.idxSpace = sl.idxSpace;
            sr.constValue = sl.se->st->constValue;
            b.deliver(sr, a.n);
            break;
          }
        }
        if (!b.ok())
            return; // shape the emitter cannot lower: interpret
    }
    for (auto &[op, n] : delivered)
        for (OutSink &sk : op->sinks)
            jitSinkDeltas_.push_back(
                {&sk, n, sk.wants() ? n : static_cast<int64_t>(0)});
    std::sort(jitLastPorts_.begin(), jitLastPorts_.end());
    jitLastPorts_.erase(
        std::unique(jitLastPorts_.begin(), jitLastPorts_.end()),
        jitLastPorts_.end());

    jit::Emitted em = b.finish();
    if (em.source.empty())
        return;
    jitOptsHash_ =
        hashCombine(static_cast<uint64_t>(opts_.scalarElementInterval),
                    static_cast<uint64_t>(1));
    jitEm_ = std::move(em);
    jitKey_ = jit::JitRuntime::makeKey(
        jitEm_.source, jit::JitRuntime::instance().compilerId(),
        jitOptsHash_);
    // Break-even gate for jitTryNative: the per-call rebind walks
    // every operand-table slot, so a chunk must simulate at least on
    // the order of that many cycles before native execution wins.
    // (Measured: the native loop gains ~25ns/cycle over interpreted
    // replay while a rebind costs a few ns/slot — one cycle per slot
    // is already conservative.)
    jitMinChunkCycles_ = static_cast<int64_t>(
        64 + jitEm_.state.size() + jitEm_.ptrs.size() +
        jitEm_.addrs.size() + jitEm_.bytes.size());
    jitUsable_ = true;
}

bool
Machine::jitTryNative(int64_t m)
{
    if (!jitLowered_) {
        // Don't even lower until the native win can pay for the
        // lowering itself: the replay volume since the arm (including
        // the chunk on offer) has to reach the per-action break-even.
        // Keeps short bursty runs (which the interpreted loop serves
        // in microseconds) from paying milliseconds of text emission
        // for nothing.
        const int64_t actions = static_cast<int64_t>(rpProg_.size());
        if (cyclesReplayed_ - jitArmReplayed0_ + m * rpPeriod_ <
            kJitLowerCyclesPerAction * actions)
            return false;
        jitLower();
    }
    if (!jitUsable_)
        return false;
    // Short chunks lose to the fixed rebind cost: run them through the
    // interpreted loop (bit-identical, just a different engine mix).
    if (m * rpPeriod_ < jitMinChunkCycles_)
        return false;
    if (!jitFn_) {
        const bool allowCompile = opts_.jitHotCycles <= 0 ||
                                  cyclesReplayed_ >= opts_.jitHotCycles;
        // The fingerprint lambda runs only when this acquire starts a
        // new job (first sight of the key in this process): the
        // structural walk costs ~50µs, which would dominate short
        // runs if paid per Machine on warm hits.
        jitFn_ = jit::JitRuntime::instance().acquire(
            jitDir_, jitKey_, jitEm_.source,
            [this] {
                if (jitFp_.empty())
                    jitFp_ =
                        adg::toString(adg::structuralFingerprint(adg_));
                return jitFp_;
            },
            allowCompile);
        if (!jitFn_)
            return false;
        jitS_.resize(jitEm_.state.size());
        jitP_.resize(jitEm_.ptrs.size());
        jitA_.resize(jitEm_.addrs.size());
        jitB_.resize(jitEm_.bytes.size());
    }
    // Rebind every table: host pointers (ring storage, lastVec) can
    // move between chunks, and mutable scalars changed since.
    for (size_t i = 0; i < jitEm_.ptrs.size(); ++i) {
        const jit::PtrRef &pr = jitEm_.ptrs[i];
        switch (pr.kind) {
          case jit::PtrRef::PipeVals:
            jitP_[i] = static_cast<Pipe *>(pr.obj)->vals;
            break;
          case jit::PtrRef::PortBuf:
            jitP_[i] = static_cast<PortSim *>(pr.obj)->buf;
            break;
          case jit::PtrRef::RingData: {
            auto *se = static_cast<StreamExec *>(pr.obj);
            // The kernel never grows the ring; the recorded period's
            // peak occupancy is gate-bounded by writeBufCap, so one
            // up-front reservation covers every chunk.
            se->writeBuf.reserve(
                static_cast<uint32_t>(se->writeBufCap) * 2);
            jitP_[i] = se->writeBuf.data;
            break;
          }
          case jit::PtrRef::LastVec: {
            auto *op = static_cast<OutPortSim *>(pr.obj);
            if (op->lastVec.size() != static_cast<size_t>(pr.n))
                op->lastVec.resize(static_cast<size_t>(pr.n));
            jitP_[i] = op->lastVec.data();
            break;
          }
          default:
            DSA_ASSERT(false, "bad jit pointer binding");
        }
    }
    for (size_t i = 0; i < jitEm_.addrs.size(); ++i) {
        const jit::PtrRef &pr = jitEm_.addrs[i];
        auto *se = static_cast<StreamExec *>(pr.obj);
        jitA_[i] = reinterpret_cast<const long long *>(
            pr.kind == jit::PtrRef::IdxAddrs ? se->idxAddrs.data()
                                             : se->addrs.data());
    }
    for (size_t i = 0; i < jitEm_.bytes.size(); ++i)
        jitB_[i] = static_cast<AddressSpace *>(jitEm_.bytes[i].obj)
                       ->data();
    for (size_t i = 0; i < jitEm_.state.size(); ++i) {
        const jit::StateRef &st = jitEm_.state[i];
        switch (st.kind) {
          case jit::StateRef::Const:
            jitS_[i] = st.constV;
            break;
          case jit::StateRef::U32:
            jitS_[i] = *static_cast<uint32_t *>(st.p);
            break;
          case jit::StateRef::U64:
            jitS_[i] = static_cast<long long>(
                *static_cast<uint64_t *>(st.p));
            break;
          case jit::StateRef::Size:
            jitS_[i] = static_cast<long long>(
                *static_cast<size_t *>(st.p));
            break;
        }
    }

    jitFn_(m, jitS_.data(), jitP_.data(), jitA_.data(), jitB_.data(),
           jitEm_.fns.data(), &jit::dsaJitTrap);

    for (size_t i = 0; i < jitEm_.state.size(); ++i) {
        const jit::StateRef &st = jitEm_.state[i];
        if (!st.writeback)
            continue;
        switch (st.kind) {
          case jit::StateRef::U32:
            *static_cast<uint32_t *>(st.p) =
                static_cast<uint32_t>(jitS_[i]);
            break;
          case jit::StateRef::U64:
            *static_cast<uint64_t *>(st.p) =
                static_cast<uint64_t>(jitS_[i]);
            break;
          case jit::StateRef::Size:
            *static_cast<size_t *>(st.p) =
                static_cast<size_t>(jitS_[i]);
            break;
          case jit::StateRef::Const:
            break;
        }
    }
    // Host-side per-element effects the kernel elides: sink counters
    // (wants() is pinned by the armed snapshot, so the deltas are
    // exact multiples) and OutLast validity.
    for (const JitSinkDelta &d : jitSinkDeltas_) {
        d.sink->seen += d.seenPer * m;
        d.sink->taken += d.takenPer * m;
    }
    for (OutPortSim *op : jitLastPorts_)
        op->lastValid = true;
    cyclesJit_ += m * rpPeriod_;
    return true;
}

void
Machine::replayRun(int64_t now, int64_t m)
{
    RegionSim &rs = regions_[static_cast<size_t>(rpRegion_)];
    const RegionPlan &plan = plans_[static_cast<size_t>(rpRegion_)];
    const auto &slots = rpSlots_[static_cast<size_t>(rpRegion_)];
    const RpAction *prog = rpProg_.data();
    const size_t na = rpProg_.size();
    // Native fast path: once the jit kernel for the armed program is
    // ready it performs exactly the hot loop below (same mutations,
    // same order); the chunk-end fix-ups further down are shared.
    const bool native = jitWanted_ && jitTryNative(m);
    // Hot loop: the period's actions, value-only. Timestamps, fire/pop
    // counters, arbitration stamps, and reuse state are reconstructed
    // once at chunk end (see below); correctness rests on the armed
    // snapshot pinning every gate-relevant residue.
    for (int64_t k = 0; !native && k < m; ++k) {
        for (size_t e = 0; e < na; ++e) {
            const RpAction &a = prog[e];
            detail::PlanStep &s = plan.steps[a.idx];
            switch (a.op) {
              case RpAction::Latch: {
                PortSim &ps = *s.port;
                ps.current[0] = ps.buf[ps.bufHead];
                ps.bufHead = (ps.bufHead + 1) & ps.bufMask;
                --ps.bufCount;
                break;
              }
              case RpAction::Fire: {
                Value v = s.port->current[0];
                for (int j = 0; j < s.nOut; ++j)
                    pushVal(s.outs[j], v);
                break;
              }
              case RpAction::LatchFire: {
                PortSim &ps = *s.port;
                Value v = ps.buf[ps.bufHead];
                ps.current[0] = v;
                ps.bufHead = (ps.bufHead + 1) & ps.bufMask;
                --ps.bufCount;
                for (int j = 0; j < s.nOut; ++j)
                    pushVal(s.outs[j], v);
                break;
              }
              case RpAction::Inst: {
                Value va = s.in[0] ? s.in[0]->front() : s.imm[0];
                Value vb = s.nIn > 1
                    ? (s.in[1] ? s.in[1]->front() : s.imm[1])
                    : 0;
                Value vc = s.nIn > 2
                    ? (s.in[2] ? s.in[2]->front() : s.imm[2])
                    : 0;
                Value rv = s.fn(va, vb, vc,
                                s.kind == detail::PlanStep::InstAcc
                                    ? &s.inst->acc
                                    : nullptr);
                for (int j = 0; j < s.nIn; ++j)
                    if (s.in[j])
                        s.in[j]->pop();
                for (int j = 0; j < s.nOut; ++j)
                    pushVal(s.outs[j], rv);
                break;
              }
              case RpAction::InstFAdd2:
              case RpAction::InstFMul2:
              case RpAction::InstAdd2:
              case RpAction::InstMul2: {
                Pipe *p0 = s.in[0];
                Pipe *p1 = s.in[1];
                Value va = p0->vals[p0->head];
                Value vb = p1->vals[p1->head];
                Value rv;
                if (a.op == RpAction::InstFAdd2)
                    rv = fromF64(asF64(va) + asF64(vb));
                else if (a.op == RpAction::InstFMul2)
                    rv = fromF64(asF64(va) * asF64(vb));
                else if (a.op == RpAction::InstAdd2)
                    rv = va + vb;
                else
                    rv = static_cast<Value>(
                        static_cast<int64_t>(va) *
                        static_cast<int64_t>(vb));
                p0->pop();
                p1->pop();
                for (int j = 0; j < s.nOut; ++j)
                    pushVal(s.outs[j], rv);
                break;
              }
              case RpAction::SelfAcc:
              case RpAction::SelfAccF: {
                InstSim &is = *s.inst;
                Value v = s.in[0] ? s.in[0]->front() : s.imm[0];
                is.acc = a.op == RpAction::SelfAccF
                    ? fromF64(asF64(is.acc) + asF64(v))
                    : s.fn(is.acc, v, 0, nullptr);
                Value rv = is.acc;
                for (int j = 0; j < s.nIn; ++j)
                    if (s.in[j])
                        s.in[j]->pop();
                for (int j = 0; j < s.nOut; ++j)
                    pushVal(s.outs[j], rv);
                if (a.flags & 1)
                    is.acc = s.accInit;
                break;
              }
              case RpAction::OutDeliver: {
                OutPortSim &op = *s.outPort;
                for (int j = 0; j < s.nOut; ++j) {
                    Value v = s.outs[j]->front();
                    s.outs[j]->pop();
                    op.deliverElement(v);
                }
                break;
              }
              case RpAction::OutDiscard:
                for (int j = 0; j < s.nOut; ++j)
                    s.outs[j]->pop();
                break;
              case RpAction::OutLatch: {
                OutPortSim &op = *s.outPort;
                if (op.lastVec.size() != static_cast<size_t>(s.nOut))
                    op.lastVec.resize(static_cast<size_t>(s.nOut));
                for (int j = 0; j < s.nOut; ++j) {
                    op.lastVec[static_cast<size_t>(j)] =
                        s.outs[j]->front();
                    s.outs[j]->pop();
                }
                op.lastValid = true;
                break;
              }
              case RpAction::Deliver:
                execSlot(slots[a.idx], a.n, 0);
                break;
            }
        }
    }
    // Chunk-end fix-ups: reconstruct everything the hot loop elided.
    const int64_t exitNow = now + m * rpPeriod_;
    const int64_t lastBase = now + (m - 1) * rpPeriod_;
    for (size_t i = 0; i < rpPipes_.size(); ++i) {
        Pipe *pp = rpPipes_[i];
        const int32_t b0 = rpPipeStart_[i];
        const int32_t cnt = rpPipeStart_[i + 1] - b0;
        DSA_ASSERT(static_cast<int32_t>(pp->count) == cnt,
                   "pipe occupancy must recur at the period boundary");
        for (int32_t j = 0; j < cnt; ++j)
            pp->times[(pp->head + static_cast<uint32_t>(j)) &
                      pp->mask] =
                rpPipeRel_[static_cast<size_t>(b0 + j)] + exitNow;
    }
    for (int i = 0; i < plan.numSteps; ++i) {
        const int64_t f = rpStepFires_[static_cast<size_t>(i)];
        const int64_t l = rpStepLatches_[static_cast<size_t>(i)];
        if (f == 0 && l == 0)
            continue;
        detail::PlanStep &s = plan.steps[i];
        switch (s.kind) {
          case detail::PlanStep::PortSimple: {
            PortSim &ps = *s.port;
            ps.pops += f * m;
            if (f > 0)
                ps.lastPop =
                    lastBase + rpStepLastOff_[static_cast<size_t>(i)];
            ps.reuseLeft = rpStepReuse_[static_cast<size_t>(i)];
            break;
          }
          case detail::PlanStep::InstSimple:
          case detail::PlanStep::InstAcc:
          case detail::PlanStep::InstSelfAcc: {
            InstSim &is = *s.inst;
            is.fires += f * m;
            is.lastFire =
                lastBase + rpStepLastOff_[static_cast<size_t>(i)];
            break;
          }
          case detail::PlanStep::OutSimple:
          case detail::PlanStep::OutEvery:
          case detail::PlanStep::OutLast:
            s.outPort->fires += f * m;
            break;
          default:
            break;
        }
    }
    if (rpLastFireOff_ >= 0)
        rs.lastActivity = lastBase + rpLastFireOff_;
    for (size_t mi = 0; mi < memPlans_.size(); ++mi)
        memPlans_[mi].bytes += rpBytesPeriod_[mi] * m;
}

void
Machine::buildRegion(int r)
{
    const Region &reg = prog_.regions[r];
    const auto &rsch = sched_.regions[r];
    RegionSim &rs = regions_[r];
    rs.reg = &reg;
    rs.idx = r;
    rs.inPorts.resize(reg.dfg.numVertices());
    rs.outPorts.resize(reg.dfg.numVertices());
    rs.streams.resize(reg.streams.size());
    rs.outerIdx.assign(reg.outerLoops.size(), 0);

    // Route length lookup.
    auto routeLen = [&](VertexId consumer, int opIdx) -> int {
        auto it = rsch.routes.find({consumer, opIdx});
        if (it == rsch.routes.end())
            return 1;
        return std::max(1, static_cast<int>(it->second.size()));
    };

    // Size the per-region pools once (pipes hand out stable pointers,
    // so reserving is about allocation churn, not correctness).
    size_t numInsts = 0;
    size_t numEdges = 0;
    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind == VertexKind::Instruction)
            ++numInsts;
        for (const auto &op : vx.operands)
            if (!op.isImm())
                ++numEdges;
    }
    rs.insts.reserve(numInsts);
    rs.pipes.reserve(numEdges);

    // Instruction sims (indexed later through a map).
    std::map<VertexId, size_t> instIdx;
    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind != VertexKind::Instruction)
            continue;
        instIdx[vx.id] = rs.insts.size();
        rs.insts.emplace_back();
        InstSim &is = rs.insts.back();
        is.vx = &vx;
        is.acc = vx.accInit;
        is.pe = reg.serialized ? adg::kInvalidNode : rsch.vertexMap[vx.id];
        is.sharedPe = is.pe != adg::kInvalidNode &&
                      adg_.node(is.pe).pe().sharing == Sharing::Shared;
    }

    // Pipes for every value edge (ring storage from the arena).
    auto makePipe = [&](int latency) -> Pipe * {
        rs.pipes.push_back(std::make_unique<Pipe>());
        Pipe *p = rs.pipes.back().get();
        p->latency = std::max(1, latency);
        p->capacity = p->latency + 8;
        p->allocate(*arena_);
        return p;
    };

    for (const Vertex &vx : reg.dfg.vertices()) {
        if (vx.kind == VertexKind::InputPort) {
            PortSim &ps = rs.inPorts[vx.id];
            ps.lanes = vx.lanes;
            ps.reuse = vx.reuse;
            ps.lanePipes.assign(vx.lanes, {});
            ps.capacity = std::max(64, vx.lanes * 8);
            if (reg.serialized)
                ps.minPopInterval =
                    std::max(1, reg.serialDependenceLatency);
            ps.allocate(*arena_);
            continue;
        }
        // Instruction or output port: wire operand pipes.
        std::vector<Pipe *> inPipes;
        std::vector<Value> imms;
        for (size_t i = 0; i < vx.operands.size(); ++i) {
            const auto &op = vx.operands[i];
            if (op.isImm()) {
                inPipes.push_back(nullptr);
                imms.push_back(op.imm);
                continue;
            }
            const Vertex &src = reg.dfg.vertex(op.src);
            int lat = routeLen(vx.id, static_cast<int>(i));
            if (src.kind == VertexKind::Instruction)
                lat += opInfo(src.op).latency;
            Pipe *p = makePipe(lat);
            inPipes.push_back(p);
            imms.push_back(0);
            if (src.kind == VertexKind::InputPort) {
                rs.inPorts[op.src].lanePipes[op.srcLane].push_back(p);
            } else {
                rs.insts[instIdx[op.src]].outPipes.push_back(p);
            }
        }
        if (vx.kind == VertexKind::Instruction) {
            InstSim &is = rs.insts[instIdx[vx.id]];
            is.inPipes = std::move(inPipes);
            is.imms = std::move(imms);
        } else {
            OutPortSim &op = rs.outPorts[vx.id];
            op.lanes = vx.lanes;
            op.outputEvery = vx.outputEvery;
            // Zero-trip reductions fall back to the accumulator's init.
            if (vx.operands.size() == 1 && !vx.operands[0].isImm()) {
                const Vertex &src = reg.dfg.vertex(vx.operands[0].src);
                if (src.isAccumulate()) {
                    op.hasFallback = true;
                    op.fallbackInit = src.accInit;
                }
            }
            op.lanePipes = std::move(inPipes);
            op.scratch.reserve(op.lanePipes.size());
            DSA_ASSERT(std::none_of(op.lanePipes.begin(),
                                    op.lanePipes.end(),
                                    [](Pipe *p) { return !p; }),
                       "output port with immediate operand");
        }
    }

    // Streams.
    for (const Stream &st : reg.streams) {
        StreamExec &se = rs.streams[st.id];
        se.st = &st;
        se.regionIdx = r;
        if (st.feedsInput() && st.kind != StreamKind::Recurrence)
            se.target = &rs.inPorts[st.port];
    }
    // Attach write/recurrence sinks to output ports.
    for (const Stream &st : reg.streams) {
        StreamExec &se = rs.streams[st.id];
        switch (st.kind) {
          case StreamKind::LinearWrite: {
            OutSink sink;
            sink.kind = OutSink::Kind::Write;
            sink.skip = st.skipFirst;
            sink.write = &se;
            rs.outPorts[st.port].sinks.push_back(sink);
            break;
          }
          case StreamKind::IndirectWrite:
          case StreamKind::AtomicUpdate: {
            OutSink sink;
            sink.kind = OutSink::Kind::Write;
            sink.skip = st.skipFirst;
            sink.write = &se;
            rs.outPorts[st.valuePort].sinks.push_back(sink);
            break;
          }
          case StreamKind::Recurrence: {
            OutSink sink;
            sink.kind = OutSink::Kind::Recurrence;
            sink.skip = st.skipFirst;
            sink.take = st.recurrenceCount;
            sink.target = &rs.inPorts[st.port];
            rs.outPorts[st.srcPort].sinks.push_back(sink);
            break;
          }
          default:
            break;
        }
    }

    // Quiescence window: longest pipe + margin. The pipe set is fixed
    // after build, so this is a per-region constant (used to be
    // recomputed on every issue).
    int maxLat = 1;
    for (const auto &p : rs.pipes)
        maxLat = std::max(maxLat, p->latency);
    rs.quiesceWindow = maxLat + 8;
}

void
Machine::startIssue(RegionSim &rs, int64_t now,
                    const std::map<int, int64_t> *ivsOverride)
{
    const Region &reg = *rs.reg;
    // Outer-loop induction values for this issue.
    std::map<int, int64_t> ivs;
    if (ivsOverride) {
        ivs = *ivsOverride;
    } else {
        for (size_t i = 0; i < reg.outerLoops.size(); ++i)
            ivs[reg.outerLoops[i].first] = rs.outerIdx[i];
    }

    auto shifts = [&](const std::map<int, int64_t> &coeffs) {
        int64_t s = 0;
        for (const auto &[id, c] : coeffs) {
            auto it = ivs.find(id);
            if (it != ivs.end())
                s += c * it->second;
        }
        return s;
    };

    for (StreamExec &se : rs.streams) {
        const Stream &st = *se.st;
        se.pos = 0;
        se.writeBuf.clear();
        se.openDone = false;
        se.nextReady = now;
        int64_t lenShift = shifts(st.reissueLenCoeffs);
        switch (st.kind) {
          case StreamKind::LinearRead:
          case StreamKind::LinearWrite:
            se.addrs = expandPattern(st.pattern,
                                     shifts(st.reissueCoeffs), lenShift);
            break;
          case StreamKind::IndirectRead:
          case StreamKind::IndirectWrite:
          case StreamKind::AtomicUpdate:
            se.idxAddrs = expandPattern(st.idxPattern,
                                        shifts(st.idxReissueCoeffs),
                                        lenShift);
            se.addrs.assign(se.idxAddrs.size(), 0);  // filled at gather
            break;
          case StreamKind::Const:
            se.addrs.assign(static_cast<size_t>(st.constCount), 0);
            break;
          case StreamKind::Iota:
            se.addrs = expandPattern(st.pattern, 0, lenShift);
            break;
          case StreamKind::Recurrence:
            // Handled through the out-port sink; nothing to enumerate.
            se.addrs.clear();
            break;
        }
    }
    // Reset ports and accumulators for a fresh issue (but keep
    // recurrence-fed data on non-first issues? — recurrences only
    // exist within a single folded issue, so a full reset is right).
    for (auto &ps : rs.inPorts)
        ps.resetForIssue();
    for (auto &op : rs.outPorts)
        op.resetForIssue();
    for (auto &is : rs.insts) {
        is.acc = is.vx->accInit;
        is.fires = 0;
        // Flush stale pipe contents.
        for (Pipe *p : is.outPipes)
            p->clear();
        for (Pipe *p : is.inPipes)
            if (p)
                p->clear();
    }
    rs.lastActivity = now;
    setState(rs, RegionState::Running);
}

void
Machine::finalizeIssue(RegionSim &rs, int64_t now)
{
    // Deliver final values of last-only output ports.
    for (auto &op : rs.outPorts) {
        if (op.outputEvery == -1 && !op.lastValid && op.hasFallback &&
            !op.lanePipes.empty()) {
            op.lastVec.assign(static_cast<size_t>(op.lanes),
                              op.fallbackInit);
            op.lastValid = true;
        }
        if (op.outputEvery == -1 && op.lastValid) {
            for (Value v : op.lastVec)
                op.deliverElement(v);
            op.lastValid = false;
        }
    }
    // Open-ended writes learn their end.
    for (StreamExec &se : rs.streams)
        if (se.st->openEnded)
            se.openDone = true;
    rs.lastActivity = now;
    setState(rs, RegionState::Finalizing);
}

bool
Machine::advanceIssue(RegionSim &rs)
{
    const Region &reg = *rs.reg;
    for (int i = static_cast<int>(rs.outerIdx.size()) - 1; i >= 0; --i) {
        if (++rs.outerIdx[i] < reg.outerLoops[i].second)
            return true;
        rs.outerIdx[i] = 0;
    }
    return false;
}

void
Machine::tickStreams(int64_t now, bool &activity)
{
    // Per-memory bandwidth arbitration over build-time plans. The plan
    // lists each memory's streams in the naive sweep's scan order with
    // the stream->memory binding already decided, so the arbitration
    // outcome (who gets the bytes) is identical to the original
    // alive-memories x regions x streams triple loop.
    for (MemPlan &mp : memPlans_) {
        int budget = mp.widthBytes;
        const int startBudget = budget;
        int bankBudget = mp.numBanks;
        AddressSpace &space = *mp.space;
        for (const MemPlan::Bound &bound : mp.streams) {
            if (budget <= 0)
                break;  // never recovers within a cycle
            RegionSim &rs = *bound.rs;
            if (rs.state != RegionState::Running &&
                rs.state != RegionState::Finalizing)
                continue;
            StreamExec &se = *bound.se;
            const Stream &st = *se.st;
            int elemB = st.pattern.elemBytes;
            auto throttled = [&]() {
                if (!st.scalarFallback)
                    return false;
                if (now < se.nextReady)
                    return true;
                return false;
            };
            auto consumeThrottle = [&]() {
                if (st.scalarFallback)
                    se.nextReady = now + opts_.scalarElementInterval;
            };
            switch (st.kind) {
              case StreamKind::LinearRead: {
                if (st.scalarFallback) {
                    if (!se.readsDone() && budget >= elemB &&
                        se.target->roomFor(1) && !throttled()) {
                        se.target->deliver(
                            space.load(se.addrs[se.pos], elemB));
                        ++se.pos;
                        budget -= elemB;
                        consumeThrottle();
                        activity = true;
                    }
                    break;
                }
                // Batched delivery: the per-element loop's three gates
                // (elements left, byte budget, port room) are all
                // monotone within a cycle, so the element count is
                // just their min — then the copy runs gate-free.
                PortSim &t = *se.target;
                int64_t n = static_cast<int64_t>(se.addrs.size()) -
                            static_cast<int64_t>(se.pos);
                n = std::min<int64_t>(n, budget / elemB);
                n = std::min<int64_t>(
                    n, t.capacity - static_cast<int>(t.bufCount));
                if (n > 0) {
                    const int64_t *addrs = se.addrs.data() + se.pos;
                    uint32_t idx = t.bufHead + t.bufCount;
                    for (int64_t i = 0; i < n; ++i)
                        t.buf[(idx + static_cast<uint32_t>(i)) &
                              t.bufMask] = space.load(addrs[i], elemB);
                    t.bufCount += static_cast<uint32_t>(n);
                    se.pos += static_cast<size_t>(n);
                    budget -= static_cast<int>(n) * elemB;
                    activity = true;
                    if (recN_ && bound.recSlot >= 0)
                        recN_[bound.recSlot] = static_cast<int32_t>(n);
                }
                break;
              }
              case StreamKind::IndirectRead: {
                AddressSpace &idxSpace = *se.idxSpace;
                int32_t delivered = 0;
                while (!se.readsDone() &&
                       budget >= elemB + st.idxElemBytes &&
                       bankBudget > 0 && se.target->roomFor(1) &&
                       !throttled()) {
                    int64_t idxV = static_cast<int64_t>(idxSpace.load(
                        se.idxAddrs[se.pos], st.idxElemBytes));
                    int64_t addr =
                        st.pattern.baseBytes + idxV * elemB;
                    se.target->deliver(space.load(addr, elemB));
                    ++se.pos;
                    budget -= elemB + st.idxElemBytes;
                    --bankBudget;
                    consumeThrottle();
                    activity = true;
                    ++delivered;
                    if (st.scalarFallback)
                        break;
                }
                if (recN_ && bound.recSlot >= 0 && delivered > 0)
                    recN_[bound.recSlot] = delivered;
                break;
              }
              case StreamKind::LinearWrite: {
                if (st.scalarFallback) {
                    if (!se.writeBuf.empty() && budget >= elemB &&
                        se.pos < se.addrs.size() && !throttled()) {
                        space.store(se.addrs[se.pos], elemB,
                                    se.writeBuf.front());
                        se.writeBuf.pop_front();
                        ++se.pos;
                        budget -= elemB;
                        consumeThrottle();
                        activity = true;
                    }
                    break;
                }
                int64_t n = static_cast<int64_t>(se.writeBuf.size());
                n = std::min<int64_t>(n, budget / elemB);
                n = std::min<int64_t>(
                    n, static_cast<int64_t>(se.addrs.size()) -
                           static_cast<int64_t>(se.pos));
                if (n > 0) {
                    const int64_t *addrs = se.addrs.data() + se.pos;
                    for (int64_t i = 0; i < n; ++i)
                        space.store(addrs[i], elemB,
                                    se.writeBuf[static_cast<size_t>(i)]);
                    se.writeBuf.erase_front(static_cast<size_t>(n));
                    se.pos += static_cast<size_t>(n);
                    budget -= static_cast<int>(n) * elemB;
                    activity = true;
                    if (recN_ && bound.recSlot >= 0)
                        recN_[bound.recSlot] = static_cast<int32_t>(n);
                }
                break;
              }
              case StreamKind::IndirectWrite:
              case StreamKind::AtomicUpdate: {
                AddressSpace &idxSpace = *se.idxSpace;
                bool atomic = st.kind == StreamKind::AtomicUpdate;
                int cost = elemB + st.idxElemBytes +
                           (atomic ? elemB : 0);
                int32_t delivered = 0;
                while (!se.writeBuf.empty() && budget >= cost &&
                       bankBudget > 0 && se.pos < se.addrs.size() &&
                       !throttled()) {
                    int64_t idxV = static_cast<int64_t>(idxSpace.load(
                        se.idxAddrs[se.pos], st.idxElemBytes));
                    int64_t addr =
                        st.pattern.baseBytes + idxV * elemB;
                    Value v = se.writeBuf.front();
                    se.writeBuf.pop_front();
                    if (atomic) {
                        Value old = space.load(addr, elemB);
                        v = evalOp(st.updateOp, old, v, 0, nullptr);
                    }
                    space.store(addr, elemB, v);
                    ++se.pos;
                    budget -= cost;
                    --bankBudget;
                    consumeThrottle();
                    activity = true;
                    ++delivered;
                    if (st.scalarFallback)
                        break;
                }
                if (recN_ && bound.recSlot >= 0 && delivered > 0)
                    recN_[bound.recSlot] = delivered;
                break;
              }
              default:
                break;
            }
        }
        mp.bytes += startBudget - budget;
    }

    // Memory-less generators: const / iota.
    for (RegionSim &rs : regions_) {
        if (rs.genStreams.empty() || rs.state != RegionState::Running)
            continue;
        for (size_t k = 0; k < rs.genStreams.size(); ++k) {
            int sid = rs.genStreams[k];
            StreamExec &se = rs.streams[sid];
            const Stream &st = *se.st;
            PortSim &t = *se.target;
            int64_t n = static_cast<int64_t>(se.addrs.size()) -
                        static_cast<int64_t>(se.pos);
            n = std::min<int64_t>(
                n, t.capacity - static_cast<int>(t.bufCount));
            if (st.kind != StreamKind::Const)
                n = std::min<int64_t>(n, 8);  // iota rate limit
            if (n > 0) {
                uint32_t idx = t.bufHead + t.bufCount;
                if (st.kind == StreamKind::Const) {
                    for (int64_t i = 0; i < n; ++i)
                        t.buf[(idx + static_cast<uint32_t>(i)) &
                              t.bufMask] = st.constValue;
                } else {
                    const int64_t *vals = se.addrs.data() + se.pos;
                    for (int64_t i = 0; i < n; ++i)
                        t.buf[(idx + static_cast<uint32_t>(i)) &
                              t.bufMask] =
                            static_cast<Value>(vals[i]);
                }
                t.bufCount += static_cast<uint32_t>(n);
                se.pos += static_cast<size_t>(n);
                activity = true;
                if (recN_) {
                    int slot = genRecSlots_[rs.idx][k];
                    if (slot >= 0)
                        recN_[slot] = static_cast<int32_t>(n);
                }
            }
        }
    }
}

void
Machine::tickRegion(RegionSim &rs, int64_t now, bool &activity)
{
    switch (rs.state) {
      case RegionState::WaitDep: {
        if (prog_.regions[rs.idx].configGroup != activeGroup_)
            return;  // fabric holds a different configuration
        bool ready = true;
        for (int dep : rs.waitOnRegions)
            ready &= regions_[dep].state == RegionState::Complete;
        if (ready) {
            setState(rs, RegionState::WaitCmd);
            rs.stateUntil = now + issueOverhead(rs);
        }
        return;
      }
      case RegionState::WaitCmd:
        if (prog_.regions[rs.idx].configGroup != activeGroup_)
            return;
        if (now >= rs.stateUntil && now >= reconfigUntil_)
            startIssue(rs, now, seq_ ? &scriptIvs_ : nullptr);
        return;
      case RegionState::Complete:
      case RegionState::DoneIssue:
        return;
      case RegionState::Running:
      case RegionState::Finalizing:
        break;
    }

    for (int v : rs.realInPorts) {
        if (rs.inPorts[v].tryFire(now)) {  // one vector per port/cycle
            rs.lastActivity = now;
            activity = true;
        }
    }
    for (auto &is : rs.insts)
        detail::genericFire(rs, is, now, activity, peFiredCycle_.data());
    for (int v : rs.realOutPorts) {
        if (rs.outPorts[v].tryFire(now)) {
            rs.lastActivity = now;
            activity = true;
        }
    }

    regionPhaseTail(rs, now);
}

void
Machine::tickCompiled(RegionSim &rs, int64_t now, bool &activity)
{
    // Running-state regions only: the burst dispatcher routes every
    // other lifecycle state through the interpreted tick.
    if (recording_ && rs.idx == rpRegion_) {
        detail::runPlanRecord(rs, plans_[static_cast<size_t>(rs.idx)],
                              now, activity, peFiredCycle_.data(),
                              rpFired_, rpLatched_);
        regionPhaseTail(rs, now);
        return;
    }
    detail::runPlan(rs, plans_[static_cast<size_t>(rs.idx)], now,
                    activity, peFiredCycle_.data());
    regionPhaseTail(rs, now);
}

void
Machine::regionPhaseTail(RegionSim &rs, int64_t now)
{
    if (rs.state == RegionState::Running) {
        // Pure predicates over a conjunction: cheapest first (the
        // quiesce-window test almost always fails in steady state).
        if (now - rs.lastActivity > rs.quiesceWindow &&
            rs.allReadsDone() && forwardsSatisfied(rs))
            finalizeIssue(rs, now);
    } else if (rs.state == RegionState::Finalizing) {
        if (rs.allWritesDone() || now - rs.lastActivity >
                                      4 * rs.quiesceWindow + 64) {
            // Move to the next issue (or complete).
            ++rs.completedIssues;
            if (seq_) {
                // The phase-script controller schedules the next issue.
                setState(rs, RegionState::DoneIssue);
                rs.endCycle = now;
            } else if (advanceIssue(rs)) {
                setState(rs, RegionState::WaitCmd);
                int64_t overhead = rs.reg->drainBetweenReissues
                    ? issueOverhead(rs)
                    : std::max<int64_t>(1, issueOverhead(rs) / 4);
                rs.stateUntil = now + overhead;
            } else {
                setState(rs, RegionState::Complete);
                rs.endCycle = now;
            }
        }
    }
}

void
Machine::setState(RegionSim &rs, RegionState st)
{
    rs.state = st;
    stateChanged_ = true;
    activeDirty_ = true;
}

void
Machine::refreshActiveRegions()
{
    activeRegions_.clear();
    for (const RegionSim &rs : regions_)
        if (rs.state != RegionState::Complete &&
            rs.state != RegionState::DoneIssue)
            activeRegions_.push_back(rs.idx);
    activeDirty_ = false;
}

bool
Machine::tickSequencer(int64_t now)
{
    size_t prevScriptPos = scriptPos_;
    bool prevScriptEntry = scriptEntryActive_;
    int prevGroup = activeGroup_;

    if (seq_) {
        // Sequential phase-script controller.
        if (scriptEntryActive_) {
            RegionSim &cur =
                regions_[prog_.phaseScript[scriptPos_].region];
            if (cur.state == RegionState::DoneIssue) {
                scriptEntryActive_ = false;
                ++scriptPos_;
            }
        }
        if (!scriptEntryActive_ &&
            scriptPos_ < prog_.phaseScript.size()) {
            const auto &e = prog_.phaseScript[scriptPos_];
            RegionSim &rs = regions_[e.region];
            scriptIvs_.clear();
            for (const auto &[id, v] : e.ivs)
                scriptIvs_[id] = v;
            int g = prog_.regions[e.region].configGroup;
            if (g != activeGroup_) {
                activeGroup_ = g;
                reconfigUntil_ = now + reconfigCycles_;
            }
            setState(rs, RegionState::WaitCmd);
            rs.stateUntil = now + issueOverhead(rs);
            scriptEntryActive_ = true;
        }
    } else {
        // Advance the configuration when the active group retires.
        bool groupDone = true;
        bool anyLater = false;
        int nextGroup = INT_MAX;
        for (RegionSim &rs : regions_) {
            int g = prog_.regions[rs.idx].configGroup;
            if (g == activeGroup_ &&
                rs.state != RegionState::Complete)
                groupDone = false;
            if (g > activeGroup_ &&
                rs.state != RegionState::Complete) {
                anyLater = true;
                nextGroup = std::min(nextGroup, g);
            }
        }
        if (groupDone && anyLater) {
            activeGroup_ = nextGroup;
            reconfigUntil_ = now + reconfigCycles_;
        }
    }

    return scriptPos_ != prevScriptPos ||
           scriptEntryActive_ != prevScriptEntry ||
           activeGroup_ != prevGroup;
}

void
Machine::pumpForwards(int64_t now, bool &activity)
{
    // Pump forwarded scalars into starving consumer ports. The counter
    // gate makes this free while every channel is drained (the common
    // state between producer bursts).
    if (fwdNonEmpty_ == 0)
        return;
    for (size_t fi = 0; fi < prog_.forwards.size(); ++fi) {
        FwdQueue &q = fwdQueues_[fi];
        if (q.empty())
            continue;
        const auto &f = prog_.forwards[fi];
        RegionSim &dst = regions_[f.dstRegion];
        if (dst.state != RegionState::Running &&
            dst.state != RegionState::Finalizing)
            continue;
        PortSim &port = dst.inPorts[f.dstPort];
        // Refill an idle staging buffer up to one vector's worth of
        // lanes — no further. The queue must outlive the consumer's
        // issues: anything still buffered in the port when an issue
        // retires is destroyed by resetForIssue(), so batching to port
        // *capacity* here would lose elements at issue boundaries, and
        // topping up while `reuseLeft > 0` would race the reuse
        // expiry. One vector per cycle matches the port's own fire
        // cadence exactly (and degenerates to the historical
        // one-element-per-cycle delivery for scalar ports).
        while (!q.empty() && port.reuseLeft == 0 &&
               port.bufSize() < port.lanes) {
            port.deliver(q.front());
            q.pop();
            dst.lastActivity = now;
            activity = true;
        }
    }
}

bool
Machine::allDone() const
{
    if (seq_)
        return scriptPos_ >= prog_.phaseScript.size() &&
               !scriptEntryActive_;
    for (const RegionSim &rs : regions_)
        if (rs.state != RegionState::Complete)
            return false;
    return true;
}

void
Machine::traceDump(int64_t now) const
{
    // DSA_SIM_TRACE=1 dumps periodic machine state (debugging aid).
    if (now % 64 != 0)
        return;
    for (const RegionSim &rs : regions_) {
        std::fprintf(stderr,
                     "[sim %lld] region %d state=%d lastAct=%lld",
                     static_cast<long long>(now), rs.idx,
                     static_cast<int>(rs.state),
                     static_cast<long long>(rs.lastActivity));
        for (const StreamExec &se : rs.streams)
            std::fprintf(stderr, " s%d:%zu/%zu(wb=%zu)",
                         se.st->id, se.pos, se.addrs.size(),
                         se.writeBuf.size());
        for (size_t v = 0; v < rs.inPorts.size(); ++v)
            if (!rs.inPorts[v].lanePipes.empty())
                std::fprintf(stderr, " p%zu:buf=%d pops=%lld",
                             v, rs.inPorts[v].bufSize(),
                             static_cast<long long>(
                                 rs.inPorts[v].pops));
        for (const InstSim &is : rs.insts)
            std::fprintf(stderr, " i%d:fires=%lld", is.vx->id,
                         static_cast<long long>(is.fires));
        std::fprintf(stderr, "\n");
    }
}

SimResult
Machine::run()
{
    if (seq_) {
        // The phase-script controller activates one issue at a time.
        for (RegionSim &rs : regions_)
            setState(rs, RegionState::DoneIssue);
    } else {
        // Regions with cross-region dependences wait; others start.
        for (RegionSim &rs : regions_) {
            if (!rs.waitOnRegions.empty()) {
                setState(rs, RegionState::WaitDep);
            } else {
                setState(rs, RegionState::WaitCmd);
                rs.stateUntil = issueOverhead(rs);
            }
        }
    }
    return opts_.sparse ? runSparse() : runDense();
}

SimResult
Machine::runDense()
{
    SimResult res;
    int64_t now = 0;
    // Deadlock watchdog: progress = any activity (port/instruction/
    // stream fire) or any controller/region state change this cycle.
    int64_t lastProgress = 0;
    std::vector<RegionState> prevStates(regions_.size());
    for (; now < opts_.maxCycles; ++now) {
        bool activity = false;
        for (size_t r = 0; r < regions_.size(); ++r)
            prevStates[r] = regions_[r].state;

        bool ctrlMoved = tickSequencer(now);
        pumpForwards(now, activity);
        tickStreams(now, activity);
        for (RegionSim &rs : regions_)
            tickRegion(rs, now, activity);
        ++cyclesGeneric_;

        if (trace_)
            traceDump(now);

        if (allDone())
            break;

        bool progress = activity || ctrlMoved;
        for (size_t r = 0; !progress && r < regions_.size(); ++r)
            progress = regions_[r].state != prevStates[r];
        if (progress)
            lastProgress = now;
        else if (opts_.progressWindow > 0 &&
                 now - lastProgress >= opts_.progressWindow) {
            res.ok = false;
            res.error = stallDiagnostic(now, lastProgress);
            res.status = Status::deadlock(res.error);
            fillStats(res, now);
            return res;
        }
        // Wall-clock watchdog, polled every 8192 cycles.
        if ((now & 0x1FFF) == 0 && opts_.deadline.expired()) {
            res.ok = false;
            res.error = "simulation wall-clock budget exhausted at cycle " +
                        std::to_string(now);
            res.status = Status::deadlineExceeded(res.error);
            fillStats(res, now);
            return res;
        }
    }
    if (now >= opts_.maxCycles) {
        res.ok = false;
        res.error = "simulation exceeded cycle limit (" +
                    std::to_string(opts_.maxCycles) + " cycles)";
        res.status = Status::resourceExhausted(res.error);
        fillStats(res, now);
        return res;
    }
    res.ok = true;
    fillStats(res, now);
    return res;
}

int64_t
Machine::nextEventTime(int64_t now) const
{
    int64_t next = INT64_MAX;
    auto consider = [&](int64_t t) {
        if (t > now && t < next)
            next = t;
    };
    for (int r : activeRegions_) {
        const RegionSim &rs = regions_[r];
        switch (rs.state) {
          case RegionState::WaitDep:
            // Released by a dependee completing or by a configuration
            // switch — both are progress events on the cycle they
            // happen, so the cycle after is always processed.
            break;
          case RegionState::WaitCmd:
            if (prog_.regions[rs.idx].configGroup == activeGroup_)
                consider(std::max(rs.stateUntil, reconfigUntil_));
            break;
          case RegionState::Running:
          case RegionState::Finalizing:
            // Quiesce / drain windows measured from last activity.
            if (rs.state == RegionState::Running)
                consider(rs.lastActivity + rs.quiesceWindow + 1);
            else
                consider(rs.lastActivity + 4 * rs.quiesceWindow + 64 +
                         1);
            // In-flight routed values (front = earliest arrival).
            for (const auto &p : rs.pipes)
                if (!p->empty())
                    consider(p->frontTime());
            // Pop-interval throttles (serialized regions).
            for (int v : rs.throttledPorts) {
                const PortSim &ps = rs.inPorts[v];
                consider(ps.lastPop + ps.minPopInterval);
            }
            // Accumulator-latency fire gates.
            for (const auto &[i, lat] : rs.accInsts)
                consider(rs.insts[i].lastFire + lat);
            // Scalar-fallback stream throttles.
            for (int sid : rs.fallbackStreams) {
                const StreamExec &se = rs.streams[sid];
                if (!se.done())
                    consider(se.nextReady);
            }
            break;
          case RegionState::DoneIssue:
          case RegionState::Complete:
            break;  // not in the active list (defensive)
        }
    }
    return next;
}

int64_t
Machine::burstHorizon() const
{
    // Time-gated transitions the burst cycle elides are exactly the
    // command-issue wake-ups of active-group waiting regions (see the
    // declaration comment); every other elided tick is progress-driven
    // and progress closes the window the cycle it happens.
    int64_t horizon = INT64_MAX;
    for (int r : activeRegions_) {
        const RegionSim &rs = regions_[r];
        if (rs.state != RegionState::WaitCmd)
            continue;
        if (prog_.regions[rs.idx].configGroup != activeGroup_)
            continue;  // inert until a group switch (= progress)
        horizon = std::min(horizon,
                           std::max(rs.stateUntil, reconfigUntil_));
    }
    return horizon;
}

SimResult
Machine::runSparse()
{
    SimResult res;
    int64_t now = 0;
    int64_t lastProgress = 0;
    const bool deadlineLimited = !opts_.deadline.unlimited();
    // Compiled steady window: valid after a fully generic cycle with
    // no state or controller transition, closed by any transition.
    bool burstOk = false;
    int64_t burstHzn = 0;
    while (now < opts_.maxCycles) {
        bool activity = false;
        stateChanged_ = false;
        bool ctrlMoved = false;

        const bool burstCycle = burstOk && now < burstHzn;
        if (burstCycle) {
            // Period replay: when the lone active region's steady
            // state provably repeats with period p, jump whole
            // multiples of p in one shot (the recorded trace performs
            // the real mutations, so final state is byte-identical).
            if (rpPhase_ != RpPhase::Off) {
                int64_t adv = replayTop(now, burstHzn, deadlineLimited);
                if (adv > 0) {
                    lastProgress = rpProgress_;
                    nextEventCacheValid_ = false;
                    cyclesCompiled_ += adv;
                    cyclesReplayed_ += adv;
                    now += adv;
                    continue;
                }
            }
            if (recording_)
                rpFired_ = rpLatched_ = 0;
            // Steady-state cycle: the sequencer and the waiting
            // regions are provably inert inside the window, so only
            // the data path runs — Running regions through their
            // compiled plans, draining regions interpreted. If an
            // earlier region transitions mid-cycle, later regions
            // catch up with a full interpreted tick (regions before
            // the change point were provably inert under the
            // pre-change state, matching the dense same-cycle order).
            pumpForwards(now, activity);
            tickStreams(now, activity);
            for (int r : activeRegions_) {
                RegionSim &rs = regions_[r];
                if (rs.state == RegionState::Running)
                    tickCompiled(rs, now, activity);
                else if (rs.state == RegionState::Finalizing ||
                         stateChanged_)
                    tickRegion(rs, now, activity);
            }
            ++cyclesCompiled_;
            if (recording_)
                recordCycleEnd(now);
        } else {
            if (recording_)
                rpDemote(now);
            ctrlMoved = tickSequencer(now);
            // Refresh after the sequencer: in phase-script mode it is
            // what re-activates DoneIssue regions.
            if (activeDirty_)
                refreshActiveRegions();
            pumpForwards(now, activity);
            tickStreams(now, activity);
            for (int r : activeRegions_)
                tickRegion(regions_[r], now, activity);
            ++cyclesGeneric_;
        }

        if (trace_)
            traceDump(now);

        // allDone only flips on a region transition, so an unchanged
        // burst cycle cannot have completed the program.
        if ((!burstCycle || stateChanged_) && allDone())
            break;

        // setState fires exactly on the transitions the dense loop's
        // before/after snapshot detects (no tick re-enters a state it
        // left within one cycle), so `progress` matches the oracle.
        bool progress = activity || ctrlMoved || stateChanged_;
        if (progress) {
            lastProgress = now;
            nextEventCacheValid_ = false;
        } else if (opts_.progressWindow > 0 &&
                 now - lastProgress >= opts_.progressWindow) {
            res.ok = false;
            res.error = stallDiagnostic(now, lastProgress);
            res.status = Status::deadlock(res.error);
            fillStats(res, now);
            return res;
        }
        if ((now & 0x1FFF) == 0 && opts_.deadline.expired()) {
            res.ok = false;
            res.error = "simulation wall-clock budget exhausted at cycle " +
                        std::to_string(now);
            res.status = Status::deadlineExceeded(res.error);
            fillStats(res, now);
            return res;
        }

        // Burst window maintenance: any transition closes it; a clean
        // fully generic cycle (re)opens it and prices the horizon.
        if (compiled_) {
            if (stateChanged_ || ctrlMoved)
                burstOk = false;
            else if (!burstCycle && (!burstOk || now + 1 >= burstHzn)) {
                burstOk = true;
                burstHzn = burstHorizon();
            }
        }

        if (progress) {
            ++now;
            continue;
        }
        // Idle cycle: every skipped cycle would also be idle (state is
        // frozen and no time gate opens before the next event), so
        // jump straight to the earliest cycle anything can move,
        // clamped so the watchdogs fire on exactly the same cycle the
        // dense loop would fire them on. The scan result stays valid
        // across consecutive no-progress cycles (nothing feeding it
        // can change without progress), so clamped jumps don't rescan.
        if (!nextEventCacheValid_ || nextEventCache_ <= now) {
            nextEventCache_ = nextEventTime(now);
            nextEventCacheValid_ = true;
        }
        int64_t target = nextEventCache_;
        if (opts_.progressWindow > 0)
            target = std::min(target,
                              lastProgress + opts_.progressWindow);
        if (deadlineLimited)
            target = std::min(target, ((now >> 13) + 1) << 13);
        target = std::min(target, opts_.maxCycles);
        int64_t next = std::max(now + 1, target);
        if (recording_ && next > now + 1) {
            // Skipped cycles are provably idle; inside a recording
            // they become empty trace entries (replaying them is a
            // no-op, which is exactly what the machine did).
            int64_t gap = next - (now + 1);
            if (static_cast<int64_t>(rpTrace_.size()) + gap >
                rpPeriod_) {
                rpDemote(now);
            } else {
                RpCycle e;
                e.fired = 0;
                e.latched = 0;
                e.dFirst = static_cast<uint32_t>(rpDeliv_.size());
                e.dCount = 0;
                for (int64_t i = 0; i < gap; ++i)
                    rpTrace_.push_back(e);
            }
        }
        cyclesSkipped_ += next - (now + 1);
        now = next;
    }
    if (now >= opts_.maxCycles) {
        res.ok = false;
        res.error = "simulation exceeded cycle limit (" +
                    std::to_string(opts_.maxCycles) + " cycles)";
        res.status = Status::resourceExhausted(res.error);
        fillStats(res, now);
        return res;
    }
    res.ok = true;
    fillStats(res, now);
    return res;
}

bool
Machine::regionDone(const RegionSim &rs) const
{
    // In sequential (phase-script) mode regions rest in DoneIssue
    // between issues and at the end of the script.
    return rs.state == RegionState::Complete ||
           (seq_ && rs.state == RegionState::DoneIssue);
}

void
Machine::fillStats(SimResult &res, int64_t now) const
{
    res.cycles = now;
    res.regions.clear();
    res.peFires.clear();
    for (const RegionSim &rs : regions_) {
        RegionSimStats st;
        st.complete = regionDone(rs);
        st.state = regionStateName(rs.state);
        st.endCycle = st.complete ? rs.endCycle : now;
        for (const auto &ps : rs.inPorts)
            st.fires = std::max(st.fires, ps.pops);
        res.regions.push_back(std::move(st));
        for (const InstSim &is : rs.insts)
            if (is.pe != adg::kInvalidNode)
                res.peFires[is.pe] += is.fires;
    }
    // One entry per alive memory node, zeros included (the plans cover
    // exactly the nodes the per-cycle accounting used to touch).
    res.memBytes.clear();
    for (const MemPlan &mp : memPlans_)
        res.memBytes[mp.node] = mp.bytes;
    // Engine accounting (excluded from cross-engine equivalence).
    res.cyclesCompiled = cyclesCompiled_;
    res.cyclesGeneric = cyclesGeneric_;
    res.cyclesSkipped = cyclesSkipped_;
    res.cyclesReplayed = cyclesReplayed_;
    res.cyclesJit = cyclesJit_;
}

std::string
Machine::stallDiagnostic(int64_t now, int64_t lastProgress) const
{
    std::ostringstream os;
    os << "simulation deadlock: no progress for " << (now - lastProgress)
       << " cycles (at cycle " << now << ", config group " << activeGroup_
       << ")";
    if (seq_)
        os << ", phase script at entry " << scriptPos_ << "/"
           << prog_.phaseScript.size();
    os << "; stalled regions:";
    for (const RegionSim &rs : regions_) {
        if (regionDone(rs))
            continue;
        os << " region " << rs.idx << " [" << regionStateName(rs.state)
           << "]";
        if (!rs.waitOnRegions.empty()) {
            os << " waits-on{";
            for (size_t i = 0; i < rs.waitOnRegions.size(); ++i)
                os << (i ? "," : "") << rs.waitOnRegions[i];
            os << "}";
        }
        for (const StreamExec &se : rs.streams) {
            if (se.done())
                continue;
            os << " stream" << se.st->id << "=" << se.pos << "/"
               << se.addrs.size();
            if (!se.writeBuf.empty())
                os << "(writeBuf " << se.writeBuf.size() << "/"
                   << se.writeBufCap << ")";
        }
        for (size_t v = 0; v < rs.inPorts.size(); ++v) {
            const PortSim &ps = rs.inPorts[v];
            if (ps.lanePipes.empty())
                continue;
            os << " in-port" << v << "{buf " << ps.bufSize() << "/"
               << ps.capacity << ", pops " << ps.pops << "}";
        }
        for (size_t v = 0; v < rs.outPorts.size(); ++v) {
            const OutPortSim &op = rs.outPorts[v];
            if (op.lanePipes.empty())
                continue;
            os << " out-port" << v << "{fires " << op.fires << "}";
        }
        os << ";";
    }
    return os.str();
}

/** First field that differs between two runs ("" when bit-identical). */
std::string
firstDivergence(const SimResult &dense, const SimResult &sparse,
                const MemImage &denseMem, const MemImage &sparseMem)
{
    auto num = [](int64_t v) { return std::to_string(v); };
    if (dense.ok != sparse.ok)
        return "ok: dense=" + num(dense.ok) + " sparse=" + num(sparse.ok);
    if (dense.status.code() != sparse.status.code())
        return "status: dense=" + dense.status.toString() +
               " sparse=" + sparse.status.toString();
    if (dense.error != sparse.error)
        return "error text: dense=\"" + dense.error + "\" sparse=\"" +
               sparse.error + "\"";
    if (dense.cycles != sparse.cycles)
        return "cycles: dense=" + num(dense.cycles) +
               " sparse=" + num(sparse.cycles);
    if (dense.regions.size() != sparse.regions.size())
        return "region count";
    for (size_t r = 0; r < dense.regions.size(); ++r) {
        const RegionSimStats &a = dense.regions[r];
        const RegionSimStats &b = sparse.regions[r];
        if (a.fires != b.fires || a.endCycle != b.endCycle ||
            a.complete != b.complete || a.state != b.state)
            return "region " + std::to_string(r) + " stats: dense " +
                   a.state + "/fires=" + num(a.fires) +
                   "/end=" + num(a.endCycle) + ", sparse " + b.state +
                   "/fires=" + num(b.fires) + "/end=" + num(b.endCycle);
    }
    if (dense.peFires != sparse.peFires)
        return "peFires map";
    if (dense.memBytes != sparse.memBytes)
        return "memBytes map";
    if (denseMem.main.bytes() != sparseMem.main.bytes())
        return "main memory contents";
    if (denseMem.spad.bytes() != sparseMem.spad.bytes())
        return "scratchpad contents";
    return "";
}

} // namespace

bool
sparseDefault()
{
    static const bool sparse = [] {
        const char *env = std::getenv("DSA_SIM_SPARSE");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return sparse;
}

bool
compiledDefault()
{
    static const bool compiled = [] {
        const char *env = std::getenv("DSA_SIM_COMPILED");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return compiled;
}

bool
jitDefault()
{
    static const bool jit = [] {
        const char *env = std::getenv("DSA_SIM_JIT");
        return !(env && std::strcmp(env, "0") == 0);
    }();
    return jit;
}

int64_t
jitHotCyclesDefault()
{
    static const int64_t hot = [] {
        const char *env = std::getenv("DSA_SIM_JIT_HOT");
        if (env && *env) {
            char *end = nullptr;
            long long v = std::strtoll(env, &end, 10);
            if (end && *end == '\0' && v >= 0)
                return static_cast<int64_t>(v);
        }
        return static_cast<int64_t>(65536);
    }();
    return hot;
}

SimResult
simulateShared(const dfg::DecoupledProgram &prog,
               const mapper::Schedule &sched, const Adg &adg, MemImage &mem,
               const SimOptions &opts, SimArena *arena)
{
    if (opts.checkJit) {
        // Oracle cross-check: the non-jit reference runs on a
        // throwaway copy of the memory image (and may itself honor
        // checkCompiled/checkSparse, chaining down to the dense
        // oracle), the jit-enabled engine on the real one, and any
        // divergence in result or memory contents turns into an
        // Internal error.
        MemImage refMem = mem;
        SimOptions refOpts = opts;
        refOpts.jit = false;
        refOpts.checkJit = false;
        SimResult refRes =
            simulateShared(prog, sched, adg, refMem, refOpts, nullptr);

        SimOptions jOpts = opts;
        jOpts.sparse = true;
        jOpts.compiled = true;
        jOpts.jit = true;
        jOpts.checkSparse = false;
        jOpts.checkCompiled = false;
        jOpts.checkJit = false;
        Machine jm(prog, sched, adg, mem, jOpts, arena);
        SimResult jRes = jm.run();

        std::string diff = firstDivergence(refRes, jRes, refMem, mem);
        if (!diff.empty()) {
            jRes.ok = false;
            jRes.error =
                "jit/interpreted simulator divergence: " + diff;
            jRes.status = Status::internal(jRes.error);
        }
        return jRes;
    }
    if (opts.checkCompiled) {
        // Oracle cross-check: the interpreted reference runs on a
        // throwaway copy of the memory image (and may itself honor
        // checkSparse, chaining back to the dense oracle), the
        // compiled engine on the real one, and any divergence in
        // result or memory contents turns into an Internal error.
        MemImage refMem = mem;
        SimOptions refOpts = opts;
        refOpts.compiled = false;
        refOpts.checkCompiled = false;
        SimResult refRes =
            simulateShared(prog, sched, adg, refMem, refOpts, nullptr);

        SimOptions cOpts = opts;
        cOpts.sparse = true;
        cOpts.compiled = true;
        cOpts.checkSparse = false;
        cOpts.checkCompiled = false;
        Machine cm(prog, sched, adg, mem, cOpts, arena);
        SimResult cRes = cm.run();

        std::string diff = firstDivergence(refRes, cRes, refMem, mem);
        if (!diff.empty()) {
            cRes.ok = false;
            cRes.error =
                "compiled/interpreted simulator divergence: " + diff;
            cRes.status = Status::internal(cRes.error);
        }
        return cRes;
    }
    if (opts.checkSparse) {
        // Oracle cross-check: dense runs on a throwaway copy of the
        // memory image, sparse (with whatever compiled setting the
        // caller chose — the production engine) on the real one.
        MemImage denseMem = mem;
        SimOptions denseOpts = opts;
        denseOpts.sparse = false;
        denseOpts.checkSparse = false;
        Machine dm(prog, sched, adg, denseMem, denseOpts);
        SimResult denseRes = dm.run();

        SimOptions sparseOpts = opts;
        sparseOpts.sparse = true;
        sparseOpts.checkSparse = false;
        Machine sm(prog, sched, adg, mem, sparseOpts, arena);
        SimResult sparseRes = sm.run();

        std::string diff =
            firstDivergence(denseRes, sparseRes, denseMem, mem);
        if (!diff.empty()) {
            sparseRes.ok = false;
            sparseRes.error =
                "sparse/dense simulator divergence: " + diff;
            sparseRes.status = Status::internal(sparseRes.error);
        }
        return sparseRes;
    }
    Machine m(prog, sched, adg, mem, opts, arena);
    return m.run();
}

SimResult
simulate(const dfg::DecoupledProgram &prog, const mapper::Schedule &sched,
         const Adg &adg, MemImage &mem, const SimOptions &opts)
{
    return simulateShared(prog, sched, adg, mem, opts, nullptr);
}

} // namespace dsa::sim
