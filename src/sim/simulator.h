/**
 * @file
 * Cycle-level simulator of a scheduled decoupled program on an ADG
 * (§VII "Simulation"). Models stream engines with per-memory bandwidth
 * and banked indirect throughput, vector ports (sync elements) with
 * buffering and reuse, static/dynamic PEs with stream-join control and
 * accumulator registers, routed-path latencies from the spatial
 * schedule, shared-PE temporal multiplexing, control-core command
 * overhead and re-issue sequencing, on-fabric recurrences, and
 * producer-consumer forwards (direct or via-memory with a phase
 * barrier). Serialized (control-core fallback) regions execute
 * functionally with their serial dependence latency.
 *
 * The simulator both *times* the execution and *performs* it: all
 * stores land in the MemImage, which tests compare against the golden
 * interpreter's output.
 */

#ifndef DSA_SIM_SIMULATOR_H
#define DSA_SIM_SIMULATOR_H

#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "base/deadline.h"
#include "base/status.h"
#include "dfg/program.h"
#include "mapper/schedule.h"
#include "sim/memory_image.h"

namespace dsa::sim {

/**
 * Default for SimOptions::sparse: true unless the environment variable
 * DSA_SIM_SPARSE is set to "0" (read once per process). CI uses the
 * override to run the whole behavioral suite against the dense oracle
 * loop so that path cannot rot.
 */
bool sparseDefault();

/**
 * Default for SimOptions::compiled: true unless the environment
 * variable DSA_SIM_COMPILED is set to "0" (read once per process).
 * The override pins the event-driven loop to its fully interpreted
 * tick — useful for bisecting a suspected compiled-tier bug.
 */
bool compiledDefault();

/**
 * Default for SimOptions::jit: true unless the environment variable
 * DSA_SIM_JIT is set to "0" (read once per process). The override
 * pins steady-state replay to the interpreted loop — for bisection,
 * and for the `test_sim*_nojit` CI variants.
 */
bool jitDefault();

/** Default for SimOptions::jitHotCycles ($DSA_SIM_JIT_HOT override). */
int64_t jitHotCyclesDefault();

/** Simulation knobs. */
struct SimOptions
{
    /** Abort (with error) if the program exceeds this many cycles. */
    int64_t maxCycles = 200'000'000;
    /** Cycles per element for scalar-issued fallback streams. */
    int scalarElementInterval = 4;
    /**
     * Deadlock watchdog: abort when no global progress — no port
     * fire, instruction fire, stream element, or region state change
     * anywhere in the machine — happens for this many consecutive
     * cycles. The error names the stalled regions, their ports, and
     * FIFO occupancies, instead of silently burning maxCycles. Must
     * stay well above legitimate quiet spells (quiesce windows,
     * command issue, reconfiguration — all well under 10^4 cycles);
     * 0 disables the check.
     */
    int64_t progressWindow = 1'000'000;
    /**
     * Cooperative wall-clock cap (default: unlimited), polled every
     * few thousand cycles; on expiry the run aborts with
     * DeadlineExceeded and partial stats.
     */
    Deadline deadline;
    /**
     * Event-driven fast path: tick only regions/streams/forwards with
     * live work, and when a whole cycle produces no activity and no
     * state transition, jump time straight to the next event (stream
     * throttles, pipe arrivals, command-issue and reconfiguration
     * deadlines, quiesce windows, the progress-watchdog horizon)
     * instead of burning empty iterations. Produces bit-identical
     * SimResult and byte-identical MemImage to the dense loop on every
     * path, including aborts (enforced by tests/test_sim_sparse.cc);
     * the only intentional divergence is *which wall cycle* a
     * wall-clock deadline is noticed on, which is nondeterministic in
     * either mode. Default-on (see sparseDefault()).
     */
    bool sparse = sparseDefault();
    /**
     * Cross-check mode: run the dense oracle on a copy of the memory
     * image and the sparse loop on the real one, compare SimResult
     * bit-exactly and both address spaces byte-exactly, and return an
     * Internal error describing the first divergence (the sparse
     * result otherwise). Do not combine with a limited deadline — the
     * two runs may legitimately notice wall-clock expiry at different
     * cycles.
     */
    bool checkSparse = false;
    /**
     * Compiled steady-state tier (requires `sparse`): at sim-build
     * time each region's dataflow is lowered to a flattened compute
     * plan — a fixed array of micro-ops with resolved operand pipes
     * and pre-dispatched opcode functions — and whenever the machine
     * is in steady state (no controller movement, no region lifecycle
     * transition) whole cycles run as straight-line plan execution
     * with the sequencer and waiting regions provably inert. Any
     * reconfiguration, drain, stall, or lifecycle event falls back to
     * the interpreted tick for that cycle. Bit-identical SimResult
     * and MemImage to the interpreted engines on every path
     * (enforced by tests/test_sim_compiled.cc). Default-on (see
     * compiledDefault()).
     */
    bool compiled = compiledDefault();
    /**
     * Cross-check mode for the compiled tier: run the interpreted
     * reference (which itself still honors checkSparse, chaining to
     * the dense oracle) on a copy of the memory image and the
     * compiled engine on the real one, compare SimResult bit-exactly
     * and both address spaces byte-exactly, and return an Internal
     * error describing the first divergence. Same deadline caveat as
     * checkSparse.
     */
    bool checkCompiled = false;
    /**
     * JIT tier (requires `sparse` + `compiled`): when a region's
     * steady-state period program is armed, it is additionally lowered
     * to generated C++, compiled to a shared object on a background
     * thread (the interpreted replay loop serves until it is ready),
     * dlopen()ed, and whole replay chunks then run through the native
     * kernel. Objects are content-addressed and cached on disk (see
     * sim/jit/jit_cache.h) so repeated runs — and DSE worker pools
     * sharing one cache directory — compile each kernel shape once.
     * Degrades silently to the interpreted replay tier when the host
     * has no compiler, compilation fails, or a fault site fires;
     * results are bit-identical either way (enforced by
     * tests/test_sim_jit.cc). Default-on (see jitDefault()).
     */
    bool jit = jitDefault();
    /**
     * Cross-check mode for the jit tier: run the non-jit reference
     * (which itself still honors checkCompiled/checkSparse, chaining
     * down to the dense oracle) on a copy of the memory image and the
     * jit-enabled engine on the real one, compare SimResult
     * bit-exactly and both address spaces byte-exactly, and return an
     * Internal error describing the first divergence. Same deadline
     * caveat as checkSparse.
     */
    bool checkJit = false;
    /** JIT object-cache directory ("" = $DSA_SIM_JIT_DIR, else a
     *  per-uid default under $TMPDIR). */
    std::string jitCacheDir;
    /**
     * Compile threshold: invoke the compiler only once a machine has
     * replayed at least this many cycles (cache probes still happen
     * immediately, so previously compiled kernels load regardless).
     * 0 compiles eagerly at arm. Default 65536 ($DSA_SIM_JIT_HOT).
     */
    int64_t jitHotCycles = jitHotCyclesDefault();
};

/** Per-region outcome. */
struct RegionSimStats
{
    int64_t fires = 0;       ///< input-vector pops (DFG instances)
    int64_t endCycle = 0;    ///< completion time (last cycle on abort)
    bool complete = false;   ///< region retired all issues
    /** Lifecycle state at the end of the run ("complete", "running",
     *  "wait-dep", ... — diagnostic on aborted runs). */
    std::string state;
};

/** Whole-run outcome. */
struct SimResult
{
    bool ok = false;
    std::string error;
    /** Structured abort reason: ResourceExhausted (cycle limit),
     *  Deadlock (progress window), DeadlineExceeded (wall clock). */
    Status status;
    int64_t cycles = 0;
    /** Per-region stats; populated on aborts too (partial, with the
     *  abort-time state) so failures are diagnosable. */
    std::vector<RegionSimStats> regions;
    /** Firing counts per PE (utilization reporting). */
    std::map<adg::NodeId, int64_t> peFires;
    /** Bytes moved per memory node. */
    std::map<adg::NodeId, int64_t> memBytes;
    /// @name Engine accounting (which loop executed each wall cycle;
    /// diagnostic only — deliberately excluded from the cross-engine
    /// equivalence checks, since the split differs by construction)
    /// @{
    int64_t cyclesCompiled = 0;  ///< compiled steady-state cycles
    int64_t cyclesGeneric = 0;   ///< interpreted (dense or sparse) cycles
    int64_t cyclesSkipped = 0;   ///< idle cycles jumped over wholesale
    /** Of cyclesCompiled, cycles executed by period replay (a recorded
     *  steady-state period's trace re-run with no gate evaluation). */
    int64_t cyclesReplayed = 0;
    /** Of cyclesReplayed, cycles executed by a jit-compiled native
     *  kernel rather than the interpreted replay loop. */
    int64_t cyclesJit = 0;
    /// @}
};

/**
 * Simulate @p prog (as mapped by @p sched) on @p adg over @p mem.
 * @p mem is mutated: all stream writes land in it.
 */
SimResult simulate(const dfg::DecoupledProgram &prog,
                   const mapper::Schedule &sched, const adg::Adg &adg,
                   MemImage &mem, const SimOptions &opts = {});

} // namespace dsa::sim

#endif // DSA_SIM_SIMULATOR_H
