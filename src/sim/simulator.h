/**
 * @file
 * Cycle-level simulator of a scheduled decoupled program on an ADG
 * (§VII "Simulation"). Models stream engines with per-memory bandwidth
 * and banked indirect throughput, vector ports (sync elements) with
 * buffering and reuse, static/dynamic PEs with stream-join control and
 * accumulator registers, routed-path latencies from the spatial
 * schedule, shared-PE temporal multiplexing, control-core command
 * overhead and re-issue sequencing, on-fabric recurrences, and
 * producer-consumer forwards (direct or via-memory with a phase
 * barrier). Serialized (control-core fallback) regions execute
 * functionally with their serial dependence latency.
 *
 * The simulator both *times* the execution and *performs* it: all
 * stores land in the MemImage, which tests compare against the golden
 * interpreter's output.
 */

#ifndef DSA_SIM_SIMULATOR_H
#define DSA_SIM_SIMULATOR_H

#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "base/deadline.h"
#include "base/status.h"
#include "dfg/program.h"
#include "mapper/schedule.h"
#include "sim/memory_image.h"

namespace dsa::sim {

/**
 * Default for SimOptions::sparse: true unless the environment variable
 * DSA_SIM_SPARSE is set to "0" (read once per process). CI uses the
 * override to run the whole behavioral suite against the dense oracle
 * loop so that path cannot rot.
 */
bool sparseDefault();

/** Simulation knobs. */
struct SimOptions
{
    /** Abort (with error) if the program exceeds this many cycles. */
    int64_t maxCycles = 200'000'000;
    /** Cycles per element for scalar-issued fallback streams. */
    int scalarElementInterval = 4;
    /**
     * Deadlock watchdog: abort when no global progress — no port
     * fire, instruction fire, stream element, or region state change
     * anywhere in the machine — happens for this many consecutive
     * cycles. The error names the stalled regions, their ports, and
     * FIFO occupancies, instead of silently burning maxCycles. Must
     * stay well above legitimate quiet spells (quiesce windows,
     * command issue, reconfiguration — all well under 10^4 cycles);
     * 0 disables the check.
     */
    int64_t progressWindow = 1'000'000;
    /**
     * Cooperative wall-clock cap (default: unlimited), polled every
     * few thousand cycles; on expiry the run aborts with
     * DeadlineExceeded and partial stats.
     */
    Deadline deadline;
    /**
     * Event-driven fast path: tick only regions/streams/forwards with
     * live work, and when a whole cycle produces no activity and no
     * state transition, jump time straight to the next event (stream
     * throttles, pipe arrivals, command-issue and reconfiguration
     * deadlines, quiesce windows, the progress-watchdog horizon)
     * instead of burning empty iterations. Produces bit-identical
     * SimResult and byte-identical MemImage to the dense loop on every
     * path, including aborts (enforced by tests/test_sim_sparse.cc);
     * the only intentional divergence is *which wall cycle* a
     * wall-clock deadline is noticed on, which is nondeterministic in
     * either mode. Default-on (see sparseDefault()).
     */
    bool sparse = sparseDefault();
    /**
     * Cross-check mode: run the dense oracle on a copy of the memory
     * image and the sparse loop on the real one, compare SimResult
     * bit-exactly and both address spaces byte-exactly, and return an
     * Internal error describing the first divergence (the sparse
     * result otherwise). Do not combine with a limited deadline — the
     * two runs may legitimately notice wall-clock expiry at different
     * cycles.
     */
    bool checkSparse = false;
};

/** Per-region outcome. */
struct RegionSimStats
{
    int64_t fires = 0;       ///< input-vector pops (DFG instances)
    int64_t endCycle = 0;    ///< completion time (last cycle on abort)
    bool complete = false;   ///< region retired all issues
    /** Lifecycle state at the end of the run ("complete", "running",
     *  "wait-dep", ... — diagnostic on aborted runs). */
    std::string state;
};

/** Whole-run outcome. */
struct SimResult
{
    bool ok = false;
    std::string error;
    /** Structured abort reason: ResourceExhausted (cycle limit),
     *  Deadlock (progress window), DeadlineExceeded (wall clock). */
    Status status;
    int64_t cycles = 0;
    /** Per-region stats; populated on aborts too (partial, with the
     *  abort-time state) so failures are diagnosable. */
    std::vector<RegionSimStats> regions;
    /** Firing counts per PE (utilization reporting). */
    std::map<adg::NodeId, int64_t> peFires;
    /** Bytes moved per memory node. */
    std::map<adg::NodeId, int64_t> memBytes;
};

/**
 * Simulate @p prog (as mapped by @p sched) on @p adg over @p mem.
 * @p mem is mutated: all stream writes land in it.
 */
SimResult simulate(const dfg::DecoupledProgram &prog,
                   const mapper::Schedule &sched, const adg::Adg &adg,
                   MemImage &mem, const SimOptions &opts = {});

} // namespace dsa::sim

#endif // DSA_SIM_SIMULATOR_H
