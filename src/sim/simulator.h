/**
 * @file
 * Cycle-level simulator of a scheduled decoupled program on an ADG
 * (§VII "Simulation"). Models stream engines with per-memory bandwidth
 * and banked indirect throughput, vector ports (sync elements) with
 * buffering and reuse, static/dynamic PEs with stream-join control and
 * accumulator registers, routed-path latencies from the spatial
 * schedule, shared-PE temporal multiplexing, control-core command
 * overhead and re-issue sequencing, on-fabric recurrences, and
 * producer-consumer forwards (direct or via-memory with a phase
 * barrier). Serialized (control-core fallback) regions execute
 * functionally with their serial dependence latency.
 *
 * The simulator both *times* the execution and *performs* it: all
 * stores land in the MemImage, which tests compare against the golden
 * interpreter's output.
 */

#ifndef DSA_SIM_SIMULATOR_H
#define DSA_SIM_SIMULATOR_H

#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "dfg/program.h"
#include "mapper/schedule.h"
#include "sim/memory_image.h"

namespace dsa::sim {

/** Simulation knobs. */
struct SimOptions
{
    /** Abort (with error) if the program exceeds this many cycles. */
    int64_t maxCycles = 200'000'000;
    /** Cycles per element for scalar-issued fallback streams. */
    int scalarElementInterval = 4;
};

/** Per-region outcome. */
struct RegionSimStats
{
    int64_t fires = 0;       ///< input-vector pops (DFG instances)
    int64_t endCycle = 0;    ///< completion time
};

/** Whole-run outcome. */
struct SimResult
{
    bool ok = false;
    std::string error;
    int64_t cycles = 0;
    std::vector<RegionSimStats> regions;
    /** Firing counts per PE (utilization reporting). */
    std::map<adg::NodeId, int64_t> peFires;
    /** Bytes moved per memory node. */
    std::map<adg::NodeId, int64_t> memBytes;
};

/**
 * Simulate @p prog (as mapped by @p sched) on @p adg over @p mem.
 * @p mem is mutated: all stream writes land in it.
 */
SimResult simulate(const dfg::DecoupledProgram &prog,
                   const mapper::Schedule &sched, const adg::Adg &adg,
                   MemImage &mem, const SimOptions &opts = {});

} // namespace dsa::sim

#endif // DSA_SIM_SIMULATOR_H
