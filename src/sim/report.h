/**
 * @file
 * Post-simulation reporting: per-PE utilization, memory bandwidth, and
 * region timing, rendered as the kind of analysis tables the paper's
 * evaluation discusses (activity ratios, bandwidth bottlenecks).
 */

#ifndef DSA_SIM_REPORT_H
#define DSA_SIM_REPORT_H

#include <string>

#include "sim/simulator.h"

namespace dsa::sim {

/** Render a utilization/bandwidth report for one simulation run. */
std::string utilizationReport(const SimResult &result,
                              const adg::Adg &adg);

} // namespace dsa::sim

#endif // DSA_SIM_REPORT_H
