#include "hwgen/bitstream.h"

#include "base/bits.h"
#include "base/logging.h"

namespace dsa::hwgen {

using adg::Adg;
using adg::NodeId;
using adg::NodeKind;

int
configBits(const Adg &adg, NodeId id)
{
    const auto &n = adg.node(id);
    switch (n.kind) {
      case NodeKind::Switch: {
        // Per output: select among inputs (plus "off").
        int fanIn = std::max(1, static_cast<int>(adg.inEdges(id).size()));
        int fanOut = std::max(1,
                              static_cast<int>(adg.outEdges(id).size()));
        int perOut = log2Ceil(static_cast<uint64_t>(fanIn) + 1);
        int lanes = n.sw().decomposable
            ? n.sw().datapathBits / std::max(1, n.sw().minLaneBits) : 1;
        return perOut * fanOut * lanes * std::max(1, n.sw().maxRoutes);
      }
      case NodeKind::Pe: {
        const auto &pe = n.pe();
        int slots = std::max(1, pe.maxInsts);
        int opcode = log2Ceil(std::max(2, pe.ops.size()));
        int operandSel = 3 * log2Ceil(
            static_cast<uint64_t>(adg.inEdges(id).size()) + 2);
        int timing = pe.sched == adg::Scheduling::Static
            ? 3 * log2Ceil(static_cast<uint64_t>(pe.delayFifoDepth) + 1)
            : 0;
        int tags = pe.sharing == adg::Sharing::Shared
            ? log2Ceil(static_cast<uint64_t>(slots)) : 0;
        int ctrl = pe.streamJoin ? 3 * 8 + 8 : 0;  // pop/emit masks
        int imm = 64;  // one immediate register per slot
        return slots * (opcode + operandSel + timing + tags + ctrl + imm);
      }
      case NodeKind::Sync: {
        const auto &sy = n.sync();
        // Ready-logic grouping + per-lane delay.
        return 8 + sy.lanes * log2Ceil(static_cast<uint64_t>(sy.depth) + 1);
      }
      case NodeKind::Delay:
        return log2Ceil(static_cast<uint64_t>(n.delay().depth) + 1);
      case NodeKind::Memory:
        // Stream engines are runtime-commanded, not config state; only
        // the barrier/arbitration policy is configured.
        return 8;
    }
    DSA_PANIC("bad node kind");
}

int64_t
totalConfigBits(const Adg &adg)
{
    int64_t total = 0;
    for (NodeId id : adg.aliveNodes())
        total += configBits(adg, id);
    return total;
}

int64_t
Bitstream::totalBits(const Adg &adg) const
{
    int addr = log2Ceil(static_cast<uint64_t>(adg.nodeIdBound()) + 1) + 6;
    int64_t total = 0;
    for (const auto &w : words)
        total += addr + w.payloadBits;
    return total;
}

Bitstream
encodeConfig(const Adg &adg, const dfg::DecoupledProgram &prog,
             const mapper::Schedule &sched, int configGroup)
{
    // The payload encodings here are illustrative (opcode, route and
    // delay fields packed low-to-high); what the evaluation uses is
    // the bit *count* and destination set.
    Bitstream bs;
    auto emit = [&](NodeId dest, uint64_t payload, int bits) {
        while (bits > 0) {
            ConfigWord w;
            w.dest = dest;
            w.payloadBits = std::min(bits, 48);
            w.payload = payload & ((1ull << w.payloadBits) - 1);
            payload >>= w.payloadBits;
            bits -= w.payloadBits;
            bs.words.push_back(w);
        }
    };

    for (size_t r = 0; r < prog.regions.size(); ++r) {
        const auto &reg = prog.regions[r];
        if (reg.configGroup != configGroup || reg.serialized)
            continue;
        const auto &rs = sched.regions[r];
        // PE instruction slots.
        for (const auto &vx : reg.dfg.vertices()) {
            NodeId n = rs.vertexMap[vx.id];
            if (n == adg::kInvalidNode)
                continue;
            if (vx.kind == dfg::VertexKind::Instruction) {
                uint64_t payload = static_cast<uint64_t>(vx.op) |
                                   (vx.selfAcc ? 1ull << 8 : 0) |
                                   (static_cast<uint64_t>(
                                        vx.ctrl.emitMask) << 9);
                emit(n, payload, 24);
                if (vx.isAccumulate())
                    emit(n, vx.accInit, 64);
            } else {
                // Sync element: lanes + ready grouping.
                emit(n, static_cast<uint64_t>(vx.lanes), 8);
            }
        }
        // Switch routes along every path.
        for (const auto &[key, route] : rs.routes) {
            for (adg::EdgeId e : route) {
                const auto &edge = adg.edge(e);
                if (adg.node(edge.src).kind == NodeKind::Switch)
                    emit(edge.src, static_cast<uint64_t>(e) & 0xF, 4);
            }
        }
    }
    return bs;
}

} // namespace dsa::hwgen
