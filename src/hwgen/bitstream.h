/**
 * @file
 * Configuration bitstream encoding (§VI): every spatial component has
 * local registers holding its programmable state — routing tables for
 * switches, opcodes/timing/tags for PEs, delays and ready-logic for
 * synchronization elements. The encoder computes per-node bit budgets
 * from the node's parameters and packs a schedule's configuration into
 * addressed words (node id + payload) for delivery along the
 * configuration paths.
 */

#ifndef DSA_HWGEN_BITSTREAM_H
#define DSA_HWGEN_BITSTREAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "dfg/program.h"
#include "mapper/schedule.h"

namespace dsa::hwgen {

/** Bits of configuration state one node holds. */
int configBits(const adg::Adg &adg, adg::NodeId id);

/** Total configuration bits of a fabric. */
int64_t totalConfigBits(const adg::Adg &adg);

/** One addressed configuration word. */
struct ConfigWord
{
    adg::NodeId dest = adg::kInvalidNode;
    uint64_t payload = 0;
    int payloadBits = 0;
};

/** A complete fabric configuration (one config group's bitstream). */
struct Bitstream
{
    std::vector<ConfigWord> words;

    /** Total bits including per-word addressing overhead. */
    int64_t totalBits(const adg::Adg &adg) const;
};

/**
 * Encode the configuration for one config group of a scheduled
 * program: switch routes, PE opcodes/ctrl, port assignments, delays.
 */
Bitstream encodeConfig(const adg::Adg &adg,
                       const dfg::DecoupledProgram &prog,
                       const mapper::Schedule &sched, int configGroup = 0);

} // namespace dsa::hwgen

#endif // DSA_HWGEN_BITSTREAM_H
