#include "hwgen/verilog.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "hwgen/bitstream.h"

namespace dsa::hwgen {

using adg::Adg;
using adg::NodeId;
using adg::NodeKind;

namespace {

/** Legalize a node name as a Verilog identifier. */
std::string
vname(const std::string &s)
{
    std::string out;
    for (char c : s)
        out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c
                                                                  : '_');
    return out;
}

void
emitLeafModules(std::ostringstream &os)
{
    os << R"(// ---- Generated component library -------------------------------
// Behavioral shells: each component latches its slice of the scan
// chain into cfg and exposes a generic streaming datapath interface.

module dsa_pe #(parameter WIDTH = 64, parameter CFG_BITS = 64,
                parameter N_IN = 4) (
    input  wire                      clk,
    input  wire                      rst,
    input  wire [N_IN*WIDTH-1:0]     in_data,
    input  wire [N_IN-1:0]           in_valid,
    output wire [N_IN-1:0]           in_ready,
    output wire [WIDTH-1:0]          out_data,
    output wire                      out_valid,
    input  wire                      out_ready,
    input  wire                      cfg_enable,
    input  wire                      cfg_in,
    output wire                      cfg_out
);
  reg [CFG_BITS-1:0] cfg;
  always @(posedge clk)
    if (cfg_enable) cfg <= {cfg[CFG_BITS-2:0], cfg_in};
  assign cfg_out = cfg[CFG_BITS-1];
  // Datapath elided in the shell; synthesis-cost proxies are provided
  // by the analytical model.
  assign out_data = in_data[WIDTH-1:0];
  assign out_valid = &in_valid;
  assign in_ready = {N_IN{out_ready}};
endmodule

module dsa_switch #(parameter WIDTH = 64, parameter CFG_BITS = 16,
                    parameter N_IN = 4, parameter N_OUT = 4) (
    input  wire                      clk,
    input  wire                      rst,
    input  wire [N_IN*WIDTH-1:0]     in_data,
    input  wire [N_IN-1:0]           in_valid,
    output wire [N_IN-1:0]           in_ready,
    output reg  [N_OUT*WIDTH-1:0]    out_data,
    output reg  [N_OUT-1:0]          out_valid,
    input  wire [N_OUT-1:0]          out_ready,
    input  wire                      cfg_enable,
    input  wire                      cfg_in,
    output wire                      cfg_out
);
  reg [CFG_BITS-1:0] cfg;
  always @(posedge clk)
    if (cfg_enable) cfg <= {cfg[CFG_BITS-2:0], cfg_in};
  assign cfg_out = cfg[CFG_BITS-1];
  integer i;
  always @(posedge clk) begin  // flopped outputs (one pipeline stage)
    for (i = 0; i < N_OUT; i = i + 1) begin
      out_data[i*WIDTH +: WIDTH] <= in_data[(cfg[i*2 +: 2] % N_IN)*WIDTH +: WIDTH];
      out_valid[i] <= in_valid[cfg[i*2 +: 2] % N_IN];
    end
  end
  assign in_ready = {N_IN{|out_ready}};
endmodule

module dsa_sync #(parameter WIDTH = 64, parameter LANES = 4,
                  parameter DEPTH = 8, parameter CFG_BITS = 16) (
    input  wire                      clk,
    input  wire                      rst,
    input  wire [WIDTH-1:0]          in_data,
    input  wire                      in_valid,
    output wire                      in_ready,
    output wire [LANES*WIDTH-1:0]    out_data,
    output wire                      out_valid,
    input  wire                      out_ready,
    input  wire                      cfg_enable,
    input  wire                      cfg_in,
    output wire                      cfg_out
);
  reg [CFG_BITS-1:0] cfg;
  always @(posedge clk)
    if (cfg_enable) cfg <= {cfg[CFG_BITS-2:0], cfg_in};
  assign cfg_out = cfg[CFG_BITS-1];
  assign out_data = {LANES{in_data}};
  assign out_valid = in_valid;
  assign in_ready = out_ready;
endmodule

module dsa_delay #(parameter WIDTH = 64, parameter DEPTH = 8,
                   parameter CFG_BITS = 8) (
    input  wire             clk,
    input  wire             rst,
    input  wire [WIDTH-1:0] in_data,
    output wire [WIDTH-1:0] out_data,
    input  wire             cfg_enable,
    input  wire             cfg_in,
    output wire             cfg_out
);
  reg [CFG_BITS-1:0] cfg;
  always @(posedge clk)
    if (cfg_enable) cfg <= {cfg[CFG_BITS-2:0], cfg_in};
  assign cfg_out = cfg[CFG_BITS-1];
  reg [WIDTH-1:0] pipe [0:DEPTH-1];
  integer i;
  always @(posedge clk) begin
    pipe[0] <= in_data;
    for (i = 1; i < DEPTH; i = i + 1) pipe[i] <= pipe[i-1];
  end
  assign out_data = pipe[cfg % DEPTH];
endmodule

module dsa_memory #(parameter BYTES = 8192, parameter WIDTH_BYTES = 64,
                    parameter ENGINES = 4, parameter CFG_BITS = 8) (
    input  wire                         clk,
    input  wire                         rst,
    input  wire [ENGINES*64-1:0]        cmd,
    input  wire [ENGINES-1:0]           cmd_valid,
    output wire [WIDTH_BYTES*8-1:0]     rsp_data,
    output wire                         rsp_valid,
    input  wire                         cfg_enable,
    input  wire                         cfg_in,
    output wire                         cfg_out
);
  reg [CFG_BITS-1:0] cfg;
  always @(posedge clk)
    if (cfg_enable) cfg <= {cfg[CFG_BITS-2:0], cfg_in};
  assign cfg_out = cfg[CFG_BITS-1];
  assign rsp_data = {WIDTH_BYTES{8'h00}};
  assign rsp_valid = |cmd_valid;
endmodule

)";
}

} // namespace

std::string
emitVerilog(const Adg &adg, const std::string &topName,
            const ConfigPathSet &paths)
{
    std::ostringstream os;
    os << "// Generated by DSAGEN hardware generator\n"
       << "// nodes: " << adg.aliveNodes().size()
       << ", edges: " << adg.aliveEdges().size()
       << ", config bits: " << totalConfigBits(adg) << "\n\n";
    emitLeafModules(os);

    os << "module " << vname(topName) << " (\n"
       << "    input  wire clk,\n"
       << "    input  wire rst,\n";
    for (size_t i = 0; i < paths.paths.size(); ++i)
        os << "    input  wire cfg_in_" << i << ",\n"
           << "    output wire cfg_out_" << i << ",\n";
    os << "    input  wire cfg_enable\n);\n\n";

    // One wire bundle per edge.
    for (adg::EdgeId e : adg.aliveEdges()) {
        const auto &edge = adg.edge(e);
        os << "  wire [" << edge.widthBits - 1 << ":0] w" << e
           << "_data;  // " << adg.node(edge.src).name << " -> "
           << adg.node(edge.dst).name << "\n"
           << "  wire w" << e << "_valid, w" << e << "_ready;\n";
    }
    os << "\n";

    // Scan-chain wires along the configuration paths.
    std::map<NodeId, std::pair<std::string, std::string>> cfgWires;
    for (size_t p = 0; p < paths.paths.size(); ++p) {
        const auto &path = paths.paths[p];
        std::string prev = "cfg_in_" + std::to_string(p);
        std::set<NodeId> seen;
        for (NodeId n : path) {
            if (seen.count(n))
                continue;  // revisits only forward, no extra register
            seen.insert(n);
            std::string out =
                "cfg_" + std::to_string(p) + "_" + std::to_string(n);
            os << "  wire " << out << ";\n";
            cfgWires[n] = {prev, out};
            prev = out;
        }
        os << "  assign cfg_out_" << p << " = " << prev << ";\n";
    }
    os << "\n";

    // Instances.
    for (NodeId id : adg.aliveNodes()) {
        const auto &n = adg.node(id);
        const auto &cw = cfgWires.count(id)
            ? cfgWires[id]
            : std::make_pair(std::string("1'b0"), std::string());
        int fanIn = std::max<size_t>(1, adg.inEdges(id).size());
        int fanOut = std::max<size_t>(1, adg.outEdges(id).size());
        int cfgBits = std::max(1, configBits(adg, id));
        switch (n.kind) {
          case NodeKind::Pe:
            os << "  dsa_pe #(.WIDTH(" << n.pe().datapathBits
               << "), .CFG_BITS(" << cfgBits << "), .N_IN(" << fanIn
               << "))";
            break;
          case NodeKind::Switch:
            os << "  dsa_switch #(.WIDTH(" << n.sw().datapathBits
               << "), .CFG_BITS(" << cfgBits << "), .N_IN(" << fanIn
               << "), .N_OUT(" << fanOut << "))";
            break;
          case NodeKind::Sync:
            os << "  dsa_sync #(.WIDTH(" << n.sync().widthBits
               << "), .LANES(" << n.sync().lanes << "), .DEPTH("
               << n.sync().depth << "), .CFG_BITS(" << cfgBits << "))";
            break;
          case NodeKind::Delay:
            os << "  dsa_delay #(.WIDTH(" << n.delay().widthBits
               << "), .DEPTH(" << n.delay().depth << "), .CFG_BITS("
               << cfgBits << "))";
            break;
          case NodeKind::Memory:
            os << "  dsa_memory #(.BYTES("
               << (n.mem().kind == adg::MemKind::Main
                       ? 0 : n.mem().capacityBytes)
               << "), .WIDTH_BYTES(" << n.mem().widthBytes
               << "), .ENGINES(" << n.mem().numStreamEngines << "))";
            break;
        }
        os << " u_" << vname(n.name) << " (\n"
           << "    .clk(clk), .rst(rst),\n"
           << "    .cfg_enable(cfg_enable), .cfg_in(" << cw.first
           << "), .cfg_out(" << (cw.second.empty() ? "" : cw.second)
           << ")";
        os << "\n    /* data ports bound by edge ids:";
        for (adg::EdgeId e : adg.inEdges(id))
            os << " in:w" << e;
        for (adg::EdgeId e : adg.outEdges(id))
            os << " out:w" << e;
        os << " */\n  );\n";
    }
    os << "\nendmodule\n";
    return os.str();
}

} // namespace dsa::hwgen
