#include "hwgen/config_path.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "base/logging.h"
#include "base/rng.h"

namespace dsa::hwgen {

using adg::Adg;
using adg::NodeId;

namespace {

/** Undirected adjacency over live nodes. */
std::map<NodeId, std::vector<NodeId>>
buildAdjacency(const Adg &adg)
{
    std::map<NodeId, std::vector<NodeId>> adj;
    for (NodeId id : adg.aliveNodes())
        adj[id];  // ensure isolated nodes appear
    for (adg::EdgeId e : adg.aliveEdges()) {
        const auto &edge = adg.edge(e);
        adj[edge.src].push_back(edge.dst);
        adj[edge.dst].push_back(edge.src);
    }
    for (auto &[id, v] : adj) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    return adj;
}

/** BFS shortest node sequence from @p from to any node in @p targets
 *  (exclusive of @p from, inclusive of the target). */
std::vector<NodeId>
bfsTo(const std::map<NodeId, std::vector<NodeId>> &adj, NodeId from,
      const std::set<NodeId> &targets)
{
    std::map<NodeId, NodeId> parent;
    std::queue<NodeId> q;
    q.push(from);
    parent[from] = from;
    while (!q.empty()) {
        NodeId n = q.front();
        q.pop();
        if (n != from && targets.count(n)) {
            std::vector<NodeId> path;
            for (NodeId cur = n; cur != from; cur = parent[cur])
                path.push_back(cur);
            std::reverse(path.begin(), path.end());
            return path;
        }
        auto it = adj.find(n);
        if (it == adj.end())
            continue;
        for (NodeId m : it->second) {
            if (!parent.count(m)) {
                parent[m] = n;
                q.push(m);
            }
        }
    }
    return {};
}

} // namespace

int
ConfigPathSet::maxLength() const
{
    int longest = 0;
    for (const auto &p : paths)
        longest = std::max(longest, static_cast<int>(p.size()));
    return longest;
}

int
ConfigPathSet::totalLength() const
{
    int total = 0;
    for (const auto &p : paths)
        total += static_cast<int>(p.size());
    return total;
}

ConfigPathSet
generateConfigPaths(const Adg &adg, int numPaths, int iters, uint64_t seed)
{
    DSA_ASSERT(numPaths >= 1, "need at least one config path");
    auto adj = buildAdjacency(adg);
    std::vector<NodeId> nodes = adg.aliveNodes();
    DSA_ASSERT(!nodes.empty(), "empty design");
    Rng rng(seed);

    // --- Seeds: greedy max-min BFS-distance spreading. ---
    auto bfsDist = [&](NodeId src) {
        std::map<NodeId, int> d;
        std::queue<NodeId> q;
        q.push(src);
        d[src] = 0;
        while (!q.empty()) {
            NodeId n = q.front();
            q.pop();
            for (NodeId m : adj[n])
                if (!d.count(m)) {
                    d[m] = d[n] + 1;
                    q.push(m);
                }
        }
        return d;
    };
    std::vector<NodeId> seeds = {nodes[0]};
    std::map<NodeId, int> minDist = bfsDist(nodes[0]);
    while (static_cast<int>(seeds.size()) < numPaths) {
        NodeId far = nodes[0];
        int best = -1;
        for (NodeId n : nodes) {
            auto it = minDist.find(n);
            int d = it == minDist.end() ? 1 << 20 : it->second;
            if (d > best) {
                best = d;
                far = n;
            }
        }
        seeds.push_back(far);
        auto d2 = bfsDist(far);
        for (auto &[n, d] : minDist)
            d = std::min(d, d2.count(n) ? d2[n] : (1 << 20));
    }

    // --- Greedy nearest-neighbor growth (spanning-tree-like init). ---
    ConfigPathSet set;
    std::set<NodeId> uncovered(nodes.begin(), nodes.end());
    for (NodeId s : seeds) {
        set.paths.push_back({s});
        uncovered.erase(s);
    }
    while (!uncovered.empty()) {
        // Extend the currently-shortest path toward the nearest
        // uncovered node.
        size_t shortest = 0;
        for (size_t i = 1; i < set.paths.size(); ++i)
            if (set.paths[i].size() < set.paths[shortest].size())
                shortest = i;
        auto &path = set.paths[shortest];
        std::vector<NodeId> hop = bfsTo(adj, path.back(), uncovered);
        if (hop.empty()) {
            // Disconnected remainder: start fresh from any uncovered.
            path.push_back(*uncovered.begin());
        } else {
            for (NodeId n : hop)
                path.push_back(n);
        }
        for (NodeId n : path)
            uncovered.erase(n);
    }

    // --- Improvement: cut from the longest, reattach to a shorter. ---
    auto coveredElsewhere = [&](size_t pathIdx, NodeId v) {
        for (size_t i = 0; i < set.paths.size(); ++i) {
            if (i == pathIdx)
                continue;
            for (NodeId n : set.paths[i])
                if (n == v)
                    return true;
        }
        // Also covered if it appears twice in its own path.
        int cnt = 0;
        for (NodeId n : set.paths[pathIdx])
            cnt += n == v;
        return cnt > 1;
    };

    for (int it = 0; it < iters; ++it) {
        size_t longest = 0;
        for (size_t i = 1; i < set.paths.size(); ++i)
            if (set.paths[i].size() > set.paths[longest].size())
                longest = i;
        auto &lp = set.paths[longest];
        if (lp.size() <= 1)
            break;
        // Candidate: an endpoint of the longest path.
        bool fromBack = rng.chance(0.5);
        NodeId v = fromBack ? lp.back() : lp.front();
        // If the endpoint is redundant (covered elsewhere), drop it.
        if (coveredElsewhere(longest, v)) {
            if (fromBack)
                lp.pop_back();
            else
                lp.erase(lp.begin());
            continue;
        }
        // Move it to the end of a shorter path whose tail is adjacent
        // (or nearly adjacent).
        bool moved = false;
        for (size_t i = 0; i < set.paths.size() && !moved; ++i) {
            if (i == longest ||
                set.paths[i].size() + 2 >= lp.size())
                continue;
            std::vector<NodeId> hop =
                bfsTo(adj, set.paths[i].back(), {v});
            if (!hop.empty() &&
                set.paths[i].size() + hop.size() < lp.size()) {
                for (NodeId n : hop)
                    set.paths[i].push_back(n);
                if (fromBack)
                    lp.pop_back();
                else
                    lp.erase(lp.begin());
                moved = true;
            }
        }
        if (!moved)
            break;  // converged: no profitable move
    }
    return set;
}

std::string
validateConfigPaths(const Adg &adg, const ConfigPathSet &set)
{
    auto adj = buildAdjacency(adg);
    std::set<NodeId> covered;
    for (const auto &p : set.paths) {
        for (size_t i = 0; i < p.size(); ++i) {
            covered.insert(p[i]);
            if (i == 0)
                continue;
            const auto &nbrs = adj[p[i - 1]];
            if (std::find(nbrs.begin(), nbrs.end(), p[i]) == nbrs.end() &&
                p[i] != p[i - 1])
                return "non-adjacent step " + std::to_string(p[i - 1]) +
                       " -> " + std::to_string(p[i]);
        }
    }
    for (NodeId n : adg.aliveNodes())
        if (!covered.count(n))
            return "node " + std::to_string(n) + " not covered";
    return "";
}

} // namespace dsa::hwgen
