/**
 * @file
 * Structural Verilog emission (§VI): the hardware generator walks the
 * ADG and emits one module instance per component with the fabric's
 * point-to-point wiring, parameterized datapath widths, and the
 * configuration-register scan chain following the generated
 * configuration paths. (The Chisel backend of the paper is replaced
 * by direct structural Verilog; see DESIGN.md §1.)
 */

#ifndef DSA_HWGEN_VERILOG_H
#define DSA_HWGEN_VERILOG_H

#include <string>

#include "adg/adg.h"
#include "hwgen/config_path.h"

namespace dsa::hwgen {

/**
 * Emit synthesizable-style structural Verilog for @p adg.
 * @param topName    name of the top module.
 * @param paths      configuration paths wired as scan chains.
 */
std::string emitVerilog(const adg::Adg &adg, const std::string &topName,
                        const ConfigPathSet &paths);

} // namespace dsa::hwgen

#endif // DSA_HWGEN_VERILOG_H
