/**
 * @file
 * Configuration-path generation (§VI): configuration messages travel
 * hop-by-hop along the on-chip network (one extra bit marks config
 * traffic), so the generator must find one or more walks through the
 * ADG that visit every configurable node, minimizing the longest walk
 * (which dominates configuration time). Lower bound: ceil(n / p) for
 * n nodes and p paths.
 *
 * Approach (per the paper): spanning-tree-like initialization to get p
 * initial paths, then an iterative heuristic that cuts a node from the
 * longest path and reattaches it to a nearby shorter path, until the
 * maximum length converges.
 */

#ifndef DSA_HWGEN_CONFIG_PATH_H
#define DSA_HWGEN_CONFIG_PATH_H

#include <vector>

#include "adg/adg.h"

namespace dsa::hwgen {

/** One configuration path: node sequence, adjacent-connected. */
using ConfigPath = std::vector<adg::NodeId>;

/** Result of path generation. */
struct ConfigPathSet
{
    std::vector<ConfigPath> paths;

    /** Steps of the longest path. */
    int maxLength() const;
    /** Sum of steps over all paths. */
    int totalLength() const;
};

/**
 * Generate @p numPaths configuration paths covering every live node
 * of @p adg.
 * @param iters  improvement iterations for the cut-and-reattach phase.
 */
ConfigPathSet generateConfigPaths(const adg::Adg &adg, int numPaths,
                                  int iters = 200, uint64_t seed = 1);

/**
 * Check that @p set covers every live node and every step connects
 * adjacent nodes (treating links as bidirectional for config traffic).
 * @return empty on success, else a problem description.
 */
std::string validateConfigPaths(const adg::Adg &adg,
                                const ConfigPathSet &set);

} // namespace dsa::hwgen

#endif // DSA_HWGEN_CONFIG_PATH_H
