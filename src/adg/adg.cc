#include "adg/adg.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/bits.h"
#include "base/logging.h"
#include "base/status.h"
#include "base/strings.h"

namespace dsa::adg {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Pe: return "pe";
      case NodeKind::Switch: return "switch";
      case NodeKind::Memory: return "mem";
      case NodeKind::Sync: return "sync";
      case NodeKind::Delay: return "delay";
    }
    DSA_PANIC("bad node kind");
}

NodeKind
nodeKindFromName(const std::string &name)
{
    if (name == "pe") return NodeKind::Pe;
    if (name == "switch") return NodeKind::Switch;
    if (name == "mem") return NodeKind::Memory;
    if (name == "sync") return NodeKind::Sync;
    if (name == "delay") return NodeKind::Delay;
    // Thrown, not fatal: mangled ADG text can come from a corrupt
    // checkpoint, which must surface as a Status, not kill the run.
    throw StatusException(Status::invalidArgument(
        "unknown node kind '" + name + "' " +
        suggestName(name, {"pe", "switch", "mem", "sync", "delay"})));
}

const char *
schedulingName(Scheduling s)
{
    return s == Scheduling::Static ? "static" : "dynamic";
}

Scheduling
schedulingFromName(const std::string &name)
{
    if (name == "static") return Scheduling::Static;
    if (name == "dynamic") return Scheduling::Dynamic;
    throw StatusException(Status::invalidArgument(
        "unknown scheduling '" + name + "' " +
        suggestName(name, {"static", "dynamic"})));
}

const char *
sharingName(Sharing s)
{
    return s == Sharing::Dedicated ? "dedicated" : "shared";
}

Sharing
sharingFromName(const std::string &name)
{
    if (name == "dedicated") return Sharing::Dedicated;
    if (name == "shared") return Sharing::Shared;
    throw StatusException(Status::invalidArgument(
        "unknown sharing '" + name + "' " +
        suggestName(name, {"dedicated", "shared"})));
}

NodeId
Adg::addNode(NodeKind kind,
             std::variant<PeProps, SwitchProps, MemProps, SyncProps,
                          DelayProps> props,
             const std::string &name)
{
    AdgNode n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = kind;
    n.props = std::move(props);
    n.name = name.empty()
        ? std::string(nodeKindName(kind)) + std::to_string(n.id)
        : name;
    nodes_.push_back(std::move(n));
    outEdges_.emplace_back();
    inEdges_.emplace_back();
    return nodes_.back().id;
}

NodeId
Adg::addPe(const PeProps &props, const std::string &name)
{
    DSA_ASSERT(isPow2(props.datapathBits) && props.datapathBits <= 64,
               "PE datapath must be power-of-two <= 64");
    DSA_ASSERT(props.sharing == Sharing::Shared || props.maxInsts == 1,
               "dedicated PE holds exactly one instruction");
    return addNode(NodeKind::Pe, props, name);
}

NodeId
Adg::addSwitch(const SwitchProps &props, const std::string &name)
{
    DSA_ASSERT(isPow2(props.datapathBits) && props.datapathBits <= 64,
               "switch datapath must be power-of-two <= 64");
    return addNode(NodeKind::Switch, props, name);
}

NodeId
Adg::addMemory(const MemProps &props, const std::string &name)
{
    DSA_ASSERT(props.widthBytes > 0 && props.numStreamEngines > 0,
               "memory needs positive width and stream engines");
    return addNode(NodeKind::Memory, props, name);
}

NodeId
Adg::addSync(const SyncProps &props, const std::string &name)
{
    DSA_ASSERT(props.depth > 0 && props.lanes > 0, "bad sync params");
    return addNode(NodeKind::Sync, props, name);
}

NodeId
Adg::addDelay(const DelayProps &props, const std::string &name)
{
    DSA_ASSERT(props.depth > 0, "bad delay depth");
    return addNode(NodeKind::Delay, props, name);
}

namespace {

/** Datapath width of a node, for defaulting connection widths. */
int
nodeWidthBits(const AdgNode &n)
{
    switch (n.kind) {
      case NodeKind::Pe: return n.pe().datapathBits;
      case NodeKind::Switch: return n.sw().datapathBits;
      case NodeKind::Memory: return n.mem().widthBytes * 8;
      case NodeKind::Sync: return n.sync().widthBits * n.sync().lanes;
      case NodeKind::Delay: return n.delay().widthBits;
    }
    DSA_PANIC("bad node kind");
}

} // namespace

EdgeId
Adg::connect(NodeId src, NodeId dst, int widthBits)
{
    DSA_ASSERT(nodeAlive(src), "connect from dead node ", src);
    DSA_ASSERT(nodeAlive(dst), "connect to dead node ", dst);
    DSA_ASSERT(src != dst, "self loop on node ", src);
    if (widthBits == 0) {
        widthBits = std::min(nodeWidthBits(node(src)),
                             nodeWidthBits(node(dst)));
    }
    DSA_ASSERT(isPow2(widthBits), "edge width must be power of two");
    AdgEdge e;
    e.id = static_cast<EdgeId>(edges_.size());
    e.src = src;
    e.dst = dst;
    e.widthBits = widthBits;
    edges_.push_back(e);
    outEdges_[src].push_back(e.id);
    inEdges_[dst].push_back(e.id);
    return e.id;
}

void
Adg::removeNode(NodeId id)
{
    DSA_ASSERT(nodeAlive(id), "remove dead node ", id);
    // Copy: removeEdge mutates the adjacency lists we iterate.
    auto out = outEdges_[id];
    for (EdgeId e : out)
        removeEdge(e);
    auto in = inEdges_[id];
    for (EdgeId e : in)
        removeEdge(e);
    nodes_[id].alive = false;
}

void
Adg::removeEdge(EdgeId id)
{
    DSA_ASSERT(edgeAlive(id), "remove dead edge ", id);
    AdgEdge &e = edges_[id];
    e.alive = false;
    auto &out = outEdges_[e.src];
    out.erase(std::remove(out.begin(), out.end(), id), out.end());
    auto &in = inEdges_[e.dst];
    in.erase(std::remove(in.begin(), in.end(), id), in.end());
}

std::vector<NodeId>
Adg::aliveNodes() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.alive)
            out.push_back(n.id);
    return out;
}

std::vector<NodeId>
Adg::aliveNodes(NodeKind kind) const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.alive && n.kind == kind)
            out.push_back(n.id);
    return out;
}

std::vector<EdgeId>
Adg::aliveEdges() const
{
    std::vector<EdgeId> out;
    for (const auto &e : edges_)
        if (e.alive)
            out.push_back(e.id);
    return out;
}

EdgeId
Adg::findEdge(NodeId src, NodeId dst) const
{
    for (EdgeId e : outEdges(src))
        if (edges_[e].dst == dst)
            return e;
    return kInvalidEdge;
}

AdgStats
Adg::stats() const
{
    AdgStats s;
    for (const auto &n : nodes_) {
        if (!n.alive)
            continue;
        switch (n.kind) {
          case NodeKind::Pe:
            ++s.numPes;
            if (n.pe().sched == Scheduling::Dynamic)
                ++s.numDynamicPes;
            if (n.pe().sharing == Sharing::Shared)
                ++s.numSharedPes;
            break;
          case NodeKind::Switch: ++s.numSwitches; break;
          case NodeKind::Memory: ++s.numMemories; break;
          case NodeKind::Sync: ++s.numSyncs; break;
          case NodeKind::Delay: ++s.numDelays; break;
        }
    }
    for (const auto &e : edges_)
        if (e.alive)
            ++s.numEdges;
    return s;
}

std::vector<std::string>
Adg::validate() const
{
    std::vector<std::string> problems;
    auto complain = [&](auto &&...args) {
        problems.push_back(detail::fold(args...));
    };

    for (const auto &e : edges_) {
        if (!e.alive)
            continue;
        if (!nodeAlive(e.src) || !nodeAlive(e.dst)) {
            complain("edge ", e.id, " touches a dead node");
            continue;
        }
        const AdgNode &src = node(e.src);
        const AdgNode &dst = node(e.dst);
        // §III-C: buses exist only between memories and sync elements.
        if (src.kind == NodeKind::Memory && dst.kind != NodeKind::Sync)
            complain("edge ", e.id, ": memory '", src.name,
                     "' may only feed sync elements");
        if (dst.kind == NodeKind::Memory && src.kind != NodeKind::Sync)
            complain("edge ", e.id, ": memory '", dst.name,
                     "' may only be fed by sync elements");
        // Sync direction must match usage.
        if (src.kind == NodeKind::Sync &&
            src.sync().dir == SyncDir::Input &&
            dst.kind == NodeKind::Memory) {
            complain("edge ", e.id, ": input sync '", src.name,
                     "' cannot write memory");
        }
        if (dst.kind == NodeKind::Sync &&
            dst.sync().dir == SyncDir::Output &&
            src.kind == NodeKind::Memory) {
            complain("edge ", e.id, ": output sync '", dst.name,
                     "' cannot be fed by memory");
        }
        if (!isPow2(e.widthBits))
            complain("edge ", e.id, " width ", e.widthBits,
                     " is not a power of two");
    }

    auto mems = aliveNodes(NodeKind::Memory);
    if (mems.empty())
        complain("design has no memory");
    bool hasIn = false, hasOut = false;
    for (NodeId id : aliveNodes(NodeKind::Sync)) {
        if (node(id).sync().dir == SyncDir::Input)
            hasIn = true;
        else
            hasOut = true;
    }
    if (!hasIn)
        complain("design has no input sync element");
    if (!hasOut)
        complain("design has no output sync element");

    for (const auto &n : nodes_) {
        if (!n.alive || n.kind != NodeKind::Pe)
            continue;
        if (n.pe().ops.empty())
            complain("PE '", n.name, "' supports no operations");
        if (n.pe().streamJoin && n.pe().sched != Scheduling::Dynamic)
            complain("PE '", n.name,
                     "': stream-join requires dynamic scheduling");
    }
    return problems;
}

namespace {

std::string
opsToString(const OpSet &ops)
{
    std::vector<std::string> names;
    for (OpCode op : ops.toVector())
        names.emplace_back(opName(op));
    return join(names, ",");
}

OpSet
opsFromString(const std::string &s)
{
    OpSet out;
    if (s.empty())
        return out;
    for (const auto &tok : split(s, ','))
        if (!tok.empty())
            out.insert(opFromName(tok));
    return out;
}

/** key=value tokenizer for one serialized line. */
std::map<std::string, std::string>
parseKeyVals(const std::vector<std::string> &toks, size_t firstIdx)
{
    std::map<std::string, std::string> kv;
    for (size_t i = firstIdx; i < toks.size(); ++i) {
        if (toks[i].empty())
            continue;
        auto eq = toks[i].find('=');
        DSA_ASSERT(eq != std::string::npos, "malformed token '", toks[i],
                   "'");
        kv[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
    }
    return kv;
}

std::string
getOr(const std::map<std::string, std::string> &kv, const std::string &key,
      const std::string &dflt)
{
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
}

} // namespace

std::string
Adg::toText() const
{
    std::ostringstream os;
    os << "adg v1\n";
    const auto &c = control_;
    os << "control ipc=" << c.cmdIssueIpc << " lat=" << c.cmdLatency
       << " cfgbits=" << c.configBitsPerCycle << "\n";
    for (const auto &n : nodes_) {
        if (!n.alive)
            continue;
        os << "node " << n.id << " " << nodeKindName(n.kind)
           << " name=" << n.name << " row=" << n.row << " col=" << n.col;
        switch (n.kind) {
          case NodeKind::Pe: {
            const auto &p = n.pe();
            os << " sched=" << schedulingName(p.sched)
               << " sharing=" << sharingName(p.sharing)
               << " insts=" << p.maxInsts << " bits=" << p.datapathBits
               << " decomp=" << p.decomposable
               << " minlane=" << p.minLaneBits
               << " delay=" << p.delayFifoDepth << " join=" << p.streamJoin
               << " regs=" << p.regFileSize << " ops=" << opsToString(p.ops);
            break;
          }
          case NodeKind::Switch: {
            const auto &p = n.sw();
            os << " sched=" << schedulingName(p.sched)
               << " bits=" << p.datapathBits << " decomp=" << p.decomposable
               << " minlane=" << p.minLaneBits << " flop=" << p.flopOutput
               << " routes=" << p.maxRoutes;
            break;
          }
          case NodeKind::Memory: {
            const auto &p = n.mem();
            os << " kind=" << (p.kind == MemKind::Main ? "main" : "spad")
               << " cap=" << p.capacityBytes << " width=" << p.widthBytes
               << " engines=" << p.numStreamEngines << " linear=" << p.linear
               << " indirect=" << p.indirect << " atomic=" << p.atomicUpdate
               << " banks=" << p.numBanks;
            break;
          }
          case NodeKind::Sync: {
            const auto &p = n.sync();
            os << " dir=" << (p.dir == SyncDir::Input ? "in" : "out")
               << " depth=" << p.depth << " bits=" << p.widthBits
               << " lanes=" << p.lanes;
            break;
          }
          case NodeKind::Delay: {
            const auto &p = n.delay();
            os << " sched=" << schedulingName(p.sched)
               << " depth=" << p.depth << " bits=" << p.widthBits;
            break;
          }
        }
        os << "\n";
    }
    for (const auto &e : edges_) {
        if (!e.alive)
            continue;
        os << "edge " << e.id << " " << e.src << " " << e.dst << " "
           << e.widthBits << "\n";
    }
    return os.str();
}

std::string
Adg::toDot() const
{
    std::ostringstream os;
    os << "digraph adg {\n  rankdir=TB;\n";
    for (const auto &n : nodes_) {
        if (!n.alive)
            continue;
        const char *shape = "box";
        std::string color = "black";
        switch (n.kind) {
          case NodeKind::Pe:
            shape = "ellipse";
            color = n.pe().sched == Scheduling::Dynamic ? "red" : "blue";
            if (n.pe().sharing == Sharing::Shared)
                color = "purple";
            break;
          case NodeKind::Switch:
            shape = "diamond";
            color = n.sw().sched == Scheduling::Dynamic ? "orange"
                                                        : "gray";
            break;
          case NodeKind::Memory:
            shape = "cylinder";
            color = "green";
            break;
          case NodeKind::Sync:
            shape = n.sync().dir == SyncDir::Input ? "invhouse" : "house";
            color = "brown";
            break;
          case NodeKind::Delay:
            shape = "cds";
            color = "gray";
            break;
        }
        os << "  n" << n.id << " [label=\"" << n.name << "\", shape="
           << shape << ", color=" << color << "];\n";
    }
    for (const auto &e : edges_) {
        if (!e.alive)
            continue;
        os << "  n" << e.src << " -> n" << e.dst;
        if (e.widthBits != 64)
            os << " [label=\"" << e.widthBits << "b\"]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

Adg
Adg::fromText(const std::string &text)
{
    Adg g;
    // First pass: find id bounds so tombstones keep original ids.
    NodeId maxNode = -1;
    EdgeId maxEdge = -1;
    std::vector<std::string> lines = split(text, '\n');
    for (const auto &raw : lines) {
        auto line = trim(raw);
        auto toks = split(line, ' ');
        if (toks.size() >= 2 && toks[0] == "node")
            maxNode = std::max(maxNode, NodeId(std::stol(toks[1])));
        if (toks.size() >= 2 && toks[0] == "edge")
            maxEdge = std::max(maxEdge, EdgeId(std::stol(toks[1])));
    }
    g.nodes_.resize(maxNode + 1);
    g.outEdges_.resize(maxNode + 1);
    g.inEdges_.resize(maxNode + 1);
    for (NodeId i = 0; i <= maxNode; ++i) {
        g.nodes_[i].id = i;
        g.nodes_[i].alive = false;
    }
    g.edges_.resize(maxEdge + 1);
    for (EdgeId i = 0; i <= maxEdge; ++i) {
        g.edges_[i].id = i;
        g.edges_[i].alive = false;
    }

    for (const auto &raw : lines) {
        auto line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        auto toks = split(line, ' ');
        if (toks[0] == "adg") {
            if (toks.size() < 2 || toks[1] != "v1")
                DSA_FATAL("unsupported ADG version");
        } else if (toks[0] == "control") {
            auto kv = parseKeyVals(toks, 1);
            g.control_.cmdIssueIpc = std::stod(getOr(kv, "ipc", "1"));
            g.control_.cmdLatency = std::stoi(getOr(kv, "lat", "5"));
            g.control_.configBitsPerCycle =
                std::stoi(getOr(kv, "cfgbits", "64"));
        } else if (toks[0] == "node") {
            DSA_ASSERT(toks.size() >= 3, "malformed node line");
            NodeId id = std::stol(toks[1]);
            NodeKind kind = nodeKindFromName(toks[2]);
            auto kv = parseKeyVals(toks, 3);
            AdgNode &n = g.nodes_[id];
            n.alive = true;
            n.kind = kind;
            n.name = getOr(kv, "name", "");
            n.row = std::stoi(getOr(kv, "row", "-1"));
            n.col = std::stoi(getOr(kv, "col", "-1"));
            switch (kind) {
              case NodeKind::Pe: {
                PeProps p;
                p.sched = schedulingFromName(getOr(kv, "sched", "static"));
                p.sharing =
                    sharingFromName(getOr(kv, "sharing", "dedicated"));
                p.maxInsts = std::stoi(getOr(kv, "insts", "1"));
                p.datapathBits = std::stoi(getOr(kv, "bits", "64"));
                p.decomposable = std::stoi(getOr(kv, "decomp", "0"));
                p.minLaneBits = std::stoi(getOr(kv, "minlane", "64"));
                p.delayFifoDepth = std::stoi(getOr(kv, "delay", "4"));
                p.streamJoin = std::stoi(getOr(kv, "join", "0"));
                p.regFileSize = std::stoi(getOr(kv, "regs", "2"));
                p.ops = opsFromString(getOr(kv, "ops", ""));
                n.props = p;
                break;
              }
              case NodeKind::Switch: {
                SwitchProps p;
                p.sched = schedulingFromName(getOr(kv, "sched", "static"));
                p.datapathBits = std::stoi(getOr(kv, "bits", "64"));
                p.decomposable = std::stoi(getOr(kv, "decomp", "0"));
                p.minLaneBits = std::stoi(getOr(kv, "minlane", "64"));
                p.flopOutput = std::stoi(getOr(kv, "flop", "1"));
                p.maxRoutes = std::stoi(getOr(kv, "routes", "1"));
                n.props = p;
                break;
              }
              case NodeKind::Memory: {
                MemProps p;
                p.kind = getOr(kv, "kind", "spad") == "main"
                    ? MemKind::Main : MemKind::Scratchpad;
                p.capacityBytes = std::stoll(getOr(kv, "cap", "8192"));
                p.widthBytes = std::stoi(getOr(kv, "width", "64"));
                p.numStreamEngines = std::stoi(getOr(kv, "engines", "4"));
                p.linear = std::stoi(getOr(kv, "linear", "1"));
                p.indirect = std::stoi(getOr(kv, "indirect", "0"));
                p.atomicUpdate = std::stoi(getOr(kv, "atomic", "0"));
                p.numBanks = std::stoi(getOr(kv, "banks", "1"));
                n.props = p;
                break;
              }
              case NodeKind::Sync: {
                SyncProps p;
                p.dir = getOr(kv, "dir", "in") == "in" ? SyncDir::Input
                                                       : SyncDir::Output;
                p.depth = std::stoi(getOr(kv, "depth", "8"));
                p.widthBits = std::stoi(getOr(kv, "bits", "64"));
                p.lanes = std::stoi(getOr(kv, "lanes", "4"));
                n.props = p;
                break;
              }
              case NodeKind::Delay: {
                DelayProps p;
                p.sched = schedulingFromName(getOr(kv, "sched", "static"));
                p.depth = std::stoi(getOr(kv, "depth", "8"));
                p.widthBits = std::stoi(getOr(kv, "bits", "64"));
                n.props = p;
                break;
              }
            }
        } else if (toks[0] == "edge") {
            DSA_ASSERT(toks.size() >= 5, "malformed edge line");
            EdgeId id = std::stol(toks[1]);
            AdgEdge &e = g.edges_[id];
            e.alive = true;
            e.src = std::stol(toks[2]);
            e.dst = std::stol(toks[3]);
            e.widthBits = std::stoi(toks[4]);
            if (!g.nodeAlive(e.src) || !g.nodeAlive(e.dst))
                DSA_FATAL("edge ", id, " references unknown node");
            g.outEdges_[e.src].push_back(id);
            g.inEdges_[e.dst].push_back(id);
        } else {
            DSA_FATAL("unknown ADG line '", line, "'");
        }
    }
    return g;
}

} // namespace dsa::adg
