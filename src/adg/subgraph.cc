#include "adg/subgraph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace dsa::adg {

namespace {

bool
isFabricKind(NodeKind kind)
{
    return kind == NodeKind::Pe || kind == NodeKind::Switch ||
           kind == NodeKind::Delay;
}

} // namespace

std::vector<NodeId>
fabricNeighborhood(const Adg &g, NodeId seed, int radius, int maxNodes)
{
    std::vector<NodeId> out;
    if (!g.nodeAlive(seed) || !isFabricKind(g.node(seed).kind) ||
        maxNodes <= 0)
        return out;

    std::set<NodeId> visited{seed};
    // (node, depth) frontier; neighbours are expanded in edge-id order,
    // which is stable, so the visit order — and hence which nodes make
    // the maxNodes cut — is a pure function of the graph.
    std::deque<std::pair<NodeId, int>> frontier{{seed, 0}};
    while (!frontier.empty() &&
           static_cast<int>(visited.size()) < maxNodes) {
        auto [id, depth] = frontier.front();
        frontier.pop_front();
        if (depth >= radius)
            continue;
        auto expand = [&](NodeId next) {
            if (static_cast<int>(visited.size()) >= maxNodes)
                return;
            if (!g.nodeAlive(next) || !isFabricKind(g.node(next).kind))
                return;
            if (!visited.insert(next).second)
                return;
            frontier.push_back({next, depth + 1});
        };
        for (EdgeId e : g.outEdges(id))
            expand(g.edge(e).dst);
        for (EdgeId e : g.inEdges(id))
            expand(g.edge(e).src);
    }
    out.assign(visited.begin(), visited.end());
    return out;
}

SubgraphClone
cloneSubgraph(Adg &g, const std::vector<NodeId> &nodes)
{
    SubgraphClone clone;
    std::vector<NodeId> sorted = nodes;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (NodeId id : sorted) {
        if (!g.nodeAlive(id))
            continue;
        const AdgNode &n = g.node(id);
        switch (n.kind) {
          case NodeKind::Pe:
            clone.nodeMap[id] = g.addPe(n.pe());
            break;
          case NodeKind::Switch:
            clone.nodeMap[id] = g.addSwitch(n.sw());
            break;
          case NodeKind::Delay:
            clone.nodeMap[id] = g.addDelay(n.delay());
            break;
          default:
            break; // memories and syncs are never cloned
        }
    }
    // Replicate internal connectivity in edge-id order (stable), so
    // the clone's edge ids — which feed the labeling hash — are a pure
    // function of (graph, node set). aliveEdges() snapshots the edge
    // set before the loop, so the edges this loop appends (between
    // clone nodes, which map from no original) are never re-visited.
    for (EdgeId e : g.aliveEdges()) {
        const AdgEdge &edge = g.edge(e);
        auto src = clone.nodeMap.find(edge.src);
        auto dst = clone.nodeMap.find(edge.dst);
        if (src == clone.nodeMap.end() || dst == clone.nodeMap.end())
            continue;
        clone.edges.push_back(
            g.connect(src->second, dst->second, edge.widthBits));
    }
    return clone;
}

std::vector<NodeId>
adjacentSwitches(const Adg &g, NodeId id)
{
    std::set<NodeId> found;
    if (!g.nodeAlive(id))
        return {};
    for (EdgeId e : g.outEdges(id)) {
        NodeId n = g.edge(e).dst;
        if (g.nodeAlive(n) && g.node(n).kind == NodeKind::Switch)
            found.insert(n);
    }
    for (EdgeId e : g.inEdges(id)) {
        NodeId n = g.edge(e).src;
        if (g.nodeAlive(n) && g.node(n).kind == NodeKind::Switch)
            found.insert(n);
    }
    return {found.begin(), found.end()};
}

std::vector<NodeId>
attachedPes(const Adg &g, NodeId sw)
{
    std::set<NodeId> found;
    if (!g.nodeAlive(sw))
        return {};
    for (EdgeId e : g.outEdges(sw)) {
        NodeId n = g.edge(e).dst;
        if (g.nodeAlive(n) && g.node(n).kind == NodeKind::Pe)
            found.insert(n);
    }
    for (EdgeId e : g.inEdges(sw)) {
        NodeId n = g.edge(e).src;
        if (g.nodeAlive(n) && g.node(n).kind == NodeKind::Pe)
            found.insert(n);
    }
    return {found.begin(), found.end()};
}

} // namespace dsa::adg
