/**
 * @file
 * Canonical ADG fingerprints for DSE memoization.
 *
 * Two keys are computed over a design:
 *
 *  - The *structural* fingerprint (`structuralFingerprint`, 128 bits)
 *    is invariant under node/edge relabeling: it is built by iterative
 *    WL-style (Weisfeiler–Leman) neighbourhood refinement over node
 *    kinds/parameters and edge topology, then folded order-
 *    independently. Node-ID permutations — e.g. the same design
 *    reached through different mutation histories — collapse to one
 *    key. This is the dedup/analysis notion of "same design".
 *
 *  - The *labeling* hash (`labelingHash`, 64 bits) additionally pins
 *    the concrete live node/edge IDs. The evaluation pipeline is
 *    labeling-sensitive (the annealing scheduler iterates nodes in ID
 *    order and repair schedules store raw IDs), so bit-identical
 *    memoization must distinguish two isomorphic designs with
 *    different IDs; the structural fingerprint alone must not be used
 *    as an eval-cache key. Add-then-remove mutation round-trips leave
 *    the live ID set unchanged (IDs are never reused; removal only
 *    tombstones), so they hash identically and hit the cache.
 *
 * `canonicalKey` computes both in one pass. Neither key covers node
 * names or grid-position hints: they do not influence compilation,
 * scheduling, simulation, or costing.
 */

#ifndef DSA_ADG_FINGERPRINT_H
#define DSA_ADG_FINGERPRINT_H

#include <cstdint>
#include <string>

#include "adg/adg.h"

namespace dsa::adg {

/** A 128-bit fingerprint (two independently salted 64-bit folds). */
struct Fp128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Fp128 &) const = default;
    bool
    operator<(const Fp128 &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/** Hexadecimal rendering (checkpoints, stats, debugging). */
std::string toString(const Fp128 &fp);

/** Structural + labeling key of one design (see file comment). */
struct AdgKey
{
    Fp128 structural;
    uint64_t labeling = 0;

    bool operator==(const AdgKey &) const = default;
    bool
    operator<(const AdgKey &o) const
    {
        if (!(structural == o.structural))
            return structural < o.structural;
        return labeling < o.labeling;
    }
};

/**
 * Hash of one node's kind + parameters (no ID, name, or position).
 * The WL refinement's initial color, and the cost-model flyweight
 * table's signature component.
 */
uint64_t nodeParamHash(const AdgNode &node);

/** Relabeling-invariant structural fingerprint of @p adg. */
Fp128 structuralFingerprint(const Adg &adg);

/** Exact hash of the live graph under its concrete IDs. */
uint64_t labelingHash(const Adg &adg);

/** Both keys, sharing one pass over the graph. */
AdgKey canonicalKey(const Adg &adg);

} // namespace dsa::adg

#endif // DSA_ADG_FINGERPRINT_H
