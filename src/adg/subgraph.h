/**
 * @file
 * Subgraph-level ADG editing helpers for the DSE's structured
 * mutations (grow/shrink a tile, clone a region, rewire a
 * sub-fabric). A structured move treats a *connected group* of
 * components — a switch with its attached PEs, a radius-limited
 * neighbourhood — as one unit, so a single mutation can replicate a
 * proven tile instead of rediscovering it one flat parameter tweak at
 * a time (the SET-style tree-move insight applied to the ADG).
 *
 * All helpers are deterministic: node sets are collected in ascending
 * ID order and clones are allocated in that order, so the same inputs
 * always produce the same output graph (the DSE's bit-identical-trace
 * guarantee extends through structured moves).
 */

#ifndef DSA_ADG_SUBGRAPH_H
#define DSA_ADG_SUBGRAPH_H

#include <map>
#include <vector>

#include "adg/adg.h"

namespace dsa::adg {

/** Outcome of cloneSubgraph: old-id -> new-id plus the edge clones. */
struct SubgraphClone
{
    /** Maps each requested (old) node id to its clone's id. */
    std::map<NodeId, NodeId> nodeMap;
    /** Ids of the cloned internal edges, in original edge-id order. */
    std::vector<EdgeId> edges;
};

/**
 * Collect a connected neighbourhood of fabric nodes (PEs, switches,
 * delay elements — never memories or sync ports, whose composition
 * rules make blind cloning illegal) by breadth-first expansion from
 * @p seed, following edges in both directions up to @p radius hops,
 * visiting at most @p maxNodes nodes. Nodes are returned in ascending
 * id order. Returns an empty vector when @p seed is not a fabric node.
 */
std::vector<NodeId> fabricNeighborhood(const Adg &g, NodeId seed,
                                       int radius, int maxNodes);

/**
 * Clone @p nodes (their kind-specific properties, not their names or
 * grid hints) and every edge whose endpoints both lie in @p nodes,
 * preserving edge widths. Non-fabric nodes (memories, syncs) are
 * skipped. The clone is *not* stitched to the rest of the graph —
 * callers add boundary edges themselves (that choice is the mutation).
 */
SubgraphClone cloneSubgraph(Adg &g, const std::vector<NodeId> &nodes);

/**
 * The switches adjacent to @p id (union of in- and out-neighbours),
 * ascending, deduplicated. Used by rewire moves to pick local targets.
 */
std::vector<NodeId> adjacentSwitches(const Adg &g, NodeId id);

/**
 * PEs directly attached to switch @p sw (either direction), ascending,
 * deduplicated — the "tile" a grow/shrink move replicates or retires.
 */
std::vector<NodeId> attachedPes(const Adg &g, NodeId sw);

} // namespace dsa::adg

#endif // DSA_ADG_SUBGRAPH_H
