#include "adg/builders.h"

#include <vector>

#include "base/bits.h"
#include "base/logging.h"

namespace dsa::adg {

namespace {

/** Workhorse opcode set for general meshes: integer + common FP. */
OpSet
defaultMeshOps()
{
    return OpSet{OpCode::Add, OpCode::Sub, OpCode::Mul, OpCode::Min,
                 OpCode::Max, OpCode::Abs, OpCode::And, OpCode::Or,
                 OpCode::Xor, OpCode::Shl, OpCode::Shr, OpCode::CmpEQ,
                 OpCode::CmpNE, OpCode::CmpLT, OpCode::CmpLE,
                 OpCode::CmpGT, OpCode::CmpGE, OpCode::Select,
                 OpCode::Pass, OpCode::Acc, OpCode::FAdd, OpCode::FSub,
                 OpCode::FMul, OpCode::FDiv, OpCode::FSqrt, OpCode::FAcc,
                 OpCode::FCmpLT, OpCode::FCmpLE, OpCode::FCmpEQ,
                 OpCode::FMin, OpCode::FMax, OpCode::Sigmoid,
                 OpCode::ReLU};
}

} // namespace

MeshConfig::MeshConfig()
{
    pe.ops = defaultMeshOps();
    syncIn.dir = SyncDir::Input;
    syncIn.lanes = 8;
    syncOut.dir = SyncDir::Output;
    syncOut.lanes = 4;
    mainMem.kind = MemKind::Main;
    mainMem.capacityBytes = int64_t(1) << 32;
    mainMem.widthBytes = 64;    // ~75 GB/s at 1.25 GHz equivalent
    mainMem.numStreamEngines = 16;
    spad.kind = MemKind::Scratchpad;
    spad.capacityBytes = 16 * 1024;
    spad.widthBytes = 64;       // 512-bit wide scratchpad
    spad.numStreamEngines = 12;
}

Adg
buildMesh(const MeshConfig &cfg)
{
    DSA_ASSERT(cfg.rows > 0 && cfg.cols > 0, "bad mesh shape");
    Adg g;

    // Switch grid: (rows+1) x (cols+1).
    std::vector<std::vector<NodeId>> sw(cfg.rows + 1,
                                        std::vector<NodeId>(cfg.cols + 1));
    for (int r = 0; r <= cfg.rows; ++r) {
        for (int c = 0; c <= cfg.cols; ++c) {
            NodeId id = g.addSwitch(cfg.sw, "sw" + std::to_string(r) + "_" +
                                                std::to_string(c));
            g.node(id).row = r;
            g.node(id).col = c;
            sw[r][c] = id;
        }
    }
    // Bidirectional neighbor links between switches.
    for (int r = 0; r <= cfg.rows; ++r) {
        for (int c = 0; c <= cfg.cols; ++c) {
            if (c + 1 <= cfg.cols) {
                g.connect(sw[r][c], sw[r][c + 1]);
                g.connect(sw[r][c + 1], sw[r][c]);
            }
            if (r + 1 <= cfg.rows) {
                g.connect(sw[r][c], sw[r + 1][c]);
                g.connect(sw[r + 1][c], sw[r][c]);
            }
        }
    }

    // PEs in cells; inputs from the 4 corner switches, outputs to the
    // SE and NW corners (gives the router both directions).
    for (int r = 0; r < cfg.rows; ++r) {
        for (int c = 0; c < cfg.cols; ++c) {
            NodeId pe = g.addPe(cfg.pe, "pe" + std::to_string(r) + "_" +
                                            std::to_string(c));
            g.node(pe).row = r;
            g.node(pe).col = c;
            g.connect(sw[r][c], pe);
            g.connect(sw[r][c + 1], pe);
            g.connect(sw[r + 1][c], pe);
            g.connect(sw[r + 1][c + 1], pe);
            g.connect(pe, sw[r][c]);
            g.connect(pe, sw[r][c + 1]);
            g.connect(pe, sw[r + 1][c]);
            g.connect(pe, sw[r + 1][c + 1]);
        }
    }

    // Memories.
    std::vector<NodeId> mems;
    mems.push_back(g.addMemory(cfg.mainMem, "main"));
    if (cfg.hasSpad)
        mems.push_back(g.addMemory(cfg.spad, "spad"));

    // Input syncs feed the top switch row, spread across columns.
    for (int i = 0; i < cfg.numInputSyncs; ++i) {
        NodeId s = g.addSync(cfg.syncIn, "in" + std::to_string(i));
        for (NodeId m : mems)
            g.connect(m, s);
        int c0 = (i * (cfg.cols + 1)) / std::max(1, cfg.numInputSyncs);
        for (int dc = 0; dc < 3; ++dc)
            if (c0 + dc <= cfg.cols)
                g.connect(s, sw[0][c0 + dc]);
    }
    // Output syncs drain the bottom switch row.
    std::vector<NodeId> outs;
    std::vector<NodeId> ins;
    for (NodeId id : g.aliveNodes(NodeKind::Sync))
        ins.push_back(id);
    for (int i = 0; i < cfg.numOutputSyncs; ++i) {
        NodeId s = g.addSync(cfg.syncOut, "out" + std::to_string(i));
        int c0 = (i * (cfg.cols + 1)) / std::max(1, cfg.numOutputSyncs);
        for (int dc = 0; dc < 3; ++dc)
            if (c0 + dc <= cfg.cols)
                g.connect(sw[cfg.rows][c0 + dc], s);
        for (NodeId m : mems)
            g.connect(s, m);
        outs.push_back(s);
    }
    // Recurrence bus: output ports can feed input ports directly
    // (port-to-port forwarding and the repetitive-update optimization).
    for (NodeId o : outs)
        for (NodeId in : ins)
            g.connect(o, in);
    return g;
}

TreeConfig::TreeConfig()
{
    leafPe.ops = OpSet{OpCode::Mul, OpCode::FMul, OpCode::Pass};
    reducePe.ops = OpSet{OpCode::Add, OpCode::FAdd, OpCode::Acc,
                         OpCode::FAcc, OpCode::Max, OpCode::FMax,
                         OpCode::Pass, OpCode::Sigmoid, OpCode::ReLU};
    mainMem.kind = MemKind::Main;
    mainMem.capacityBytes = int64_t(1) << 32;
    mainMem.widthBytes = 64;
    mainMem.numStreamEngines = 16;
    spad.kind = MemKind::Scratchpad;
    spad.capacityBytes = 32 * 1024;
    spad.widthBytes = 64;
    spad.numStreamEngines = 12;
}

Adg
buildTree(const TreeConfig &cfg)
{
    DSA_ASSERT(isPow2(cfg.leaves) && cfg.leaves >= 2,
               "tree leaves must be a power of two >= 2");
    Adg g;

    std::vector<NodeId> mems;
    mems.push_back(g.addMemory(cfg.mainMem, "main"));
    if (cfg.hasSpad)
        mems.push_back(g.addMemory(cfg.spad, "spad"));

    // Distribution network: switches fan out from a root fed by input
    // sync elements down to one switch per leaf PE.
    int depth = log2Ceil(cfg.leaves);
    std::vector<std::vector<NodeId>> level(depth + 1);
    level[0].push_back(g.addSwitch(cfg.sw, "dist_root"));
    for (int d = 1; d <= depth; ++d) {
        // Fat-tree distribution (as in MAERI): parallel links, wider
        // toward the root, so several operands reach the same leaf.
        int links = std::max(2, 8 >> d);
        for (size_t i = 0; i < level[d - 1].size() * 2; ++i) {
            NodeId s = g.addSwitch(cfg.sw, "dist" + std::to_string(d) + "_" +
                                               std::to_string(i));
            g.node(s).row = d;
            g.node(s).col = static_cast<int>(i);
            level[d].push_back(s);
            for (int l = 0; l < links; ++l)
                g.connect(level[d - 1][i / 2], s);
        }
    }

    // Two input ports (e.g. weights and activations) into the root.
    SyncProps inProps;
    inProps.dir = SyncDir::Input;
    inProps.lanes = std::min(cfg.leaves, 8);
    for (int i = 0; i < 2; ++i) {
        NodeId s = g.addSync(inProps, "in" + std::to_string(i));
        for (NodeId m : mems)
            g.connect(m, s);
        g.connect(s, level[0][0]);
    }

    // Leaf PEs (multipliers); each has links for both operands.
    std::vector<NodeId> cur;
    for (int i = 0; i < cfg.leaves; ++i) {
        NodeId pe = g.addPe(cfg.leafPe, "leaf" + std::to_string(i));
        g.node(pe).row = depth + 1;
        g.node(pe).col = i;
        g.connect(level[depth][i], pe);
        g.connect(level[depth][i], pe);
        g.connect(level[depth][i], pe);
        cur.push_back(pe);
    }

    // Reduction tree of PEs.
    int lvl = 0;
    while (cur.size() > 1) {
        std::vector<NodeId> next;
        for (size_t i = 0; i + 1 < cur.size(); i += 2) {
            NodeId pe = g.addPe(cfg.reducePe,
                                "red" + std::to_string(lvl) + "_" +
                                    std::to_string(i / 2));
            g.node(pe).row = depth + 2 + lvl;
            g.node(pe).col = static_cast<int>(i / 2);
            g.connect(cur[i], pe);
            g.connect(cur[i + 1], pe);
            next.push_back(pe);
        }
        cur = std::move(next);
        ++lvl;
    }

    SyncProps outProps;
    outProps.dir = SyncDir::Output;
    outProps.lanes = 2;
    NodeId out = g.addSync(outProps, "out0");
    g.connect(cur[0], out);
    for (NodeId m : mems)
        g.connect(out, m);

    // A second output port tapping the leaf level lets non-reduction
    // kernels (e.g. elementwise) use the tree fabric too.
    NodeId out1 = g.addSync(outProps, "out1");
    NodeId tapSw = g.addSwitch(cfg.sw, "tap");
    for (int i = 0; i < std::min(cfg.leaves, 4); ++i)
        g.connect(level[depth][i], tapSw);
    g.connect(tapSw, out1);
    for (NodeId m : mems)
        g.connect(out1, m);

    // Recurrence bus: output ports back to the input ports.
    for (NodeId o : {out, out1})
        for (NodeId in : g.aliveNodes(NodeKind::Sync))
            if (g.node(in).sync().dir == SyncDir::Input)
                g.connect(o, in);
    return g;
}

Adg
buildCcaLike(int rows, int pesPerRow, const PeProps &pe)
{
    DSA_ASSERT(rows > 0 && pesPerRow > 0, "bad CCA shape");
    Adg g;
    MemProps main;
    main.kind = MemKind::Main;
    main.capacityBytes = int64_t(1) << 32;
    main.widthBytes = 32;
    main.numStreamEngines = 8;
    NodeId mem = g.addMemory(main, "main");

    SyncProps inProps;
    inProps.dir = SyncDir::Input;
    inProps.lanes = pesPerRow;
    NodeId in = g.addSync(inProps, "in0");
    g.connect(mem, in);

    SwitchProps sw;
    NodeId prevSw = g.addSwitch(sw, "sw_in");
    g.connect(in, prevSw);

    for (int r = 0; r < rows; ++r) {
        std::vector<NodeId> rowPes;
        for (int c = 0; c < pesPerRow; ++c) {
            NodeId p = g.addPe(pe, "pe" + std::to_string(r) + "_" +
                                       std::to_string(c));
            g.node(p).row = r;
            g.node(p).col = c;
            g.connect(prevSw, p);
            rowPes.push_back(p);
        }
        NodeId nextSw = g.addSwitch(sw, "sw" + std::to_string(r));
        for (NodeId p : rowPes)
            g.connect(p, nextSw);
        // Bypass lane so values can skip a row.
        g.connect(prevSw, nextSw);
        prevSw = nextSw;
    }

    SyncProps outProps;
    outProps.dir = SyncDir::Output;
    outProps.lanes = 2;
    NodeId out = g.addSync(outProps, "out0");
    g.connect(prevSw, out);
    g.connect(out, mem);
    g.connect(out, in);  // recurrence bus
    return g;
}

} // namespace dsa::adg
