/**
 * @file
 * Node and edge property definitions for the Architecture Description
 * Graph (ADG), mirroring the modular spatial-architecture primitives of
 * DSAGEN §III: processing elements, switches, memories, synchronization
 * elements, delay elements, connections, and the control core.
 */

#ifndef DSA_ADG_NODE_H
#define DSA_ADG_NODE_H

#include <cstdint>
#include <string>
#include <variant>

#include "isa/opcode.h"

namespace dsa::adg {

/** Stable node identifier (never reused within one Adg's lifetime). */
using NodeId = int32_t;
/** Stable edge identifier. */
using EdgeId = int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr EdgeId kInvalidEdge = -1;

/** The primitive component kinds of §III-A. */
enum class NodeKind : uint8_t { Pe, Switch, Memory, Sync, Delay };

/** Execution-model axis 1: who decides when an action fires (§III-A). */
enum class Scheduling : uint8_t { Static, Dynamic };

/** Execution-model axis 2: dedicated vs temporally shared (§III-A). */
enum class Sharing : uint8_t { Dedicated, Shared };

/** Direction of a synchronization element relative to the fabric. */
enum class SyncDir : uint8_t { Input, Output };

/** Memory flavors: the (fixed) main-memory interface or a scratchpad. */
enum class MemKind : uint8_t { Main, Scratchpad };

/** Short lowercase name for a node kind. */
const char *nodeKindName(NodeKind kind);
/** Parse a node-kind name; fatal on unknown. */
NodeKind nodeKindFromName(const std::string &name);

const char *schedulingName(Scheduling s);
Scheduling schedulingFromName(const std::string &name);
const char *sharingName(Sharing s);
Sharing sharingFromName(const std::string &name);

/** Processing-element parameters. */
struct PeProps
{
    Scheduling sched = Scheduling::Static;
    Sharing sharing = Sharing::Dedicated;
    /** Instruction slots; > 1 only meaningful for shared PEs. */
    int maxInsts = 1;
    /** Datapath bitwidth (power of two, <= 64). */
    int datapathBits = 64;
    /** FUs may split into power-of-two sub-lanes down to minLaneBits. */
    bool decomposable = false;
    int minLaneBits = 64;
    /** Opcodes the PE's functional units must support. */
    OpSet ops;
    /** Depth of the per-input delay FIFO (static PEs; timing repair). */
    int delayFifoDepth = 4;
    /**
     * Dynamic PEs may support stream-join control: conditional reuse /
     * discard of operands based on a control input (§III-A).
     */
    bool streamJoin = false;
    /** Local registers (accumulators). */
    int regFileSize = 2;

    bool operator==(const PeProps &) const = default;
};

/** Switch parameters. */
struct SwitchProps
{
    Scheduling sched = Scheduling::Static;
    int datapathBits = 64;
    /** Routes power-of-two sub-words independently down to minLaneBits. */
    bool decomposable = false;
    int minLaneBits = 64;
    /**
     * Whether the output is registered. Fixed to true during DSE so
     * each switch is one pipeline stage (§V-D).
     */
    bool flopOutput = true;
    /** Independent route configurations (per output) a config can hold. */
    int maxRoutes = 1;

    bool operator==(const SwitchProps &) const = default;
};

/** Memory / stream-engine parameters. */
struct MemProps
{
    MemKind kind = MemKind::Scratchpad;
    /** Capacity in bytes (ignored for Main, which models an L2 link). */
    int64_t capacityBytes = 8 * 1024;
    /** Peak bytes transferred per cycle. */
    int widthBytes = 64;
    /** Concurrent stream engines. */
    int numStreamEngines = 4;
    /** Linear controller: inductive 2D affine streams (REVEL-style). */
    bool linear = true;
    /** Indirect controller: a[b[i]] gather/scatter (SPU-style). */
    bool indirect = false;
    /** Banked compute for atomic read-modify-write (a[b[i]] += v). */
    bool atomicUpdate = false;
    /** Number of banks (bank conflicts limit indirect throughput). */
    int numBanks = 1;

    bool operator==(const MemProps &) const = default;
};

/** Synchronization-element (vector port) parameters. */
struct SyncProps
{
    SyncDir dir = SyncDir::Input;
    /** FIFO depth in entries per lane. */
    int depth = 8;
    /** Bits per lane. */
    int widthBits = 64;
    /** Vector lanes released together by the ready-logic. */
    int lanes = 4;

    bool operator==(const SyncProps &) const = default;
};

/** Stand-alone delay-FIFO parameters (§III-A delay elements). */
struct DelayProps
{
    Scheduling sched = Scheduling::Static;
    int depth = 8;
    int widthBits = 64;

    bool operator==(const DelayProps &) const = default;
};

/** Control-core parameters (one per ADG; §III-A "Control"). */
struct ControlProps
{
    /** Stream/config commands issued per cycle. */
    double cmdIssueIpc = 1.0;
    /** Cycles from issue to a stream command taking effect. */
    int cmdLatency = 5;
    /** Bits of configuration delivered per cycle per config path. */
    int configBitsPerCycle = 64;

    bool operator==(const ControlProps &) const = default;
};

/** One node of the ADG: a kind tag plus kind-specific properties. */
struct AdgNode
{
    NodeId id = kInvalidNode;
    NodeKind kind = NodeKind::Pe;
    bool alive = true;
    std::string name;
    /** Optional grid position hint (builders set it; -1 = unplaced). */
    int row = -1;
    int col = -1;
    std::variant<PeProps, SwitchProps, MemProps, SyncProps, DelayProps>
        props;

    PeProps &pe() { return std::get<PeProps>(props); }
    const PeProps &pe() const { return std::get<PeProps>(props); }
    SwitchProps &sw() { return std::get<SwitchProps>(props); }
    const SwitchProps &sw() const { return std::get<SwitchProps>(props); }
    MemProps &mem() { return std::get<MemProps>(props); }
    const MemProps &mem() const { return std::get<MemProps>(props); }
    SyncProps &sync() { return std::get<SyncProps>(props); }
    const SyncProps &sync() const { return std::get<SyncProps>(props); }
    DelayProps &delay() { return std::get<DelayProps>(props); }
    const DelayProps &delay() const { return std::get<DelayProps>(props); }
};

/** A directed connection between two nodes (§III-A "Connections"). */
struct AdgEdge
{
    EdgeId id = kInvalidEdge;
    bool alive = true;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Wire width in bits. */
    int widthBits = 64;
};

} // namespace dsa::adg

#endif // DSA_ADG_NODE_H
