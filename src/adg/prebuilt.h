/**
 * @file
 * Prebuilt ADG instantiations of the accelerators the paper targets
 * (§VII "Target Accelerators"), plus the DianNao-like domain-specific
 * point and the full-capability initial design used to seed DSE (§VIII-B).
 *
 * All designs assume integration with a high-bandwidth L2 (75 GB/s),
 * modeled as the `main` memory interface width.
 */

#ifndef DSA_ADG_PREBUILT_H
#define DSA_ADG_PREBUILT_H

#include "adg/adg.h"

namespace dsa::adg {

/**
 * Softbrain [65]: mesh of static-scheduled/dedicated PEs and switches,
 * single non-banked scratchpad, linear streams only.
 */
Adg buildSoftbrain(int rows = 5, int cols = 5);

/**
 * MAERI [45]: tree-based topology; multiplier leaves with a
 * reconfigurable reduction tree (approximated with our tree fabric).
 */
Adg buildMaeri(int leaves = 16);

/**
 * Triggered Instructions [69]: mesh of dynamic-scheduled/shared
 * (temporal) PEs; groups of PEs share a decoupled scratchpad.
 */
Adg buildTriggered(int rows = 4, int cols = 4);

/**
 * SPU [20]: mesh of dynamic-scheduled/dedicated PEs with stream-join
 * control, banked scratchpad with indirect + atomic-update controllers.
 */
Adg buildSpu(int rows = 4, int cols = 4);

/**
 * REVEL [92]: hybrid systolic-dataflow mesh composing static and
 * dynamic PEs, communicating through synchronization elements; linear
 * controller supports inductive 2D streams.
 */
Adg buildRevel(int rows = 4, int cols = 4);

/**
 * DianNao-like [12] domain-specific reference: two scratchpads plus a
 * static-scheduled dedicated multiplier layer and adder tree.
 */
Adg buildDianNaoLike(int multipliers = 16);

/**
 * The initial DSE hardware of §VIII-B: a 5x4 mesh with full capability
 * (control flow / stream-join, FU decomposability, indirect memory
 * controller, shared and dynamic PEs mixed in).
 */
Adg buildDseInitial(int rows = 5, int cols = 4);

} // namespace dsa::adg

#endif // DSA_ADG_PREBUILT_H
