/**
 * @file
 * Parameterized ADG topology builders: the mesh fabric used by most of
 * the paper's instantiations, plus a binary-tree fabric (MAERI- and
 * DianNao-style datapaths) and a bus-style minimal fabric (CCA-style).
 */

#ifndef DSA_ADG_BUILDERS_H
#define DSA_ADG_BUILDERS_H

#include "adg/adg.h"

namespace dsa::adg {

/** Configuration for buildMesh(). */
struct MeshConfig
{
    int rows = 4;
    int cols = 4;
    /** Properties stamped onto every PE (name/position filled in). */
    PeProps pe;
    /** Properties stamped onto every switch. */
    SwitchProps sw;
    /** Vector-port counts on the fabric boundary. */
    int numInputSyncs = 3;
    int numOutputSyncs = 2;
    SyncProps syncIn;
    SyncProps syncOut;
    /** Main-memory interface (fixed during DSE). */
    MemProps mainMem;
    /** Optional scratchpad. */
    bool hasSpad = true;
    MemProps spad;

    MeshConfig();
};

/**
 * Build the canonical decoupled-spatial mesh (Fig. 2(c) style):
 * an (rows+1)x(cols+1) grid of switches with a PE in every cell,
 * input sync elements feeding the top switch row, output sync elements
 * fed from the bottom switch row, and memories on the boundary buses.
 */
Adg buildMesh(const MeshConfig &cfg);

/** Configuration for buildTree(). */
struct TreeConfig
{
    /** Number of leaf PEs (power of two). */
    int leaves = 8;
    /** Properties of the leaf (multiplier) PEs. */
    PeProps leafPe;
    /** Properties of the internal (reduction) PEs. */
    PeProps reducePe;
    SwitchProps sw;
    MemProps mainMem;
    bool hasSpad = true;
    MemProps spad;

    TreeConfig();
};

/**
 * Build a binary-tree fabric: a distribution network of switches fans
 * input operands out to the leaf PEs; a reduction tree of PEs combines
 * results down to a single output sync element (MAERI/DianNao style).
 */
Adg buildTree(const TreeConfig &cfg);

/**
 * Build a minimal CCA-style fabric: a few PEs in rows connected by
 * single switches per row (lowest switch overhead, least flexibility).
 */
Adg buildCcaLike(int rows, int peMaxRow, const PeProps &pe);

} // namespace dsa::adg

#endif // DSA_ADG_BUILDERS_H
