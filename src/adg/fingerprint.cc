#include "adg/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <variant>
#include <vector>

#include "base/bits.h"
#include "base/hashing.h"

namespace dsa::adg {

namespace {

// Distinct salts so the same payload hashed in different roles can
// never collide structurally.
constexpr uint64_t kSaltPe = 0x70653a3a70726f70ull;
constexpr uint64_t kSaltSwitch = 0x73773a3a70726f70ull;
constexpr uint64_t kSaltMem = 0x6d656d3a3a70726full;
constexpr uint64_t kSaltSync = 0x73796e633a3a7072ull;
constexpr uint64_t kSaltDelay = 0x64656c61793a3a70ull;
constexpr uint64_t kSaltControl = 0x6374726c3a3a7072ull;
constexpr uint64_t kSaltIn = 0x696e2d6e65696768ull;
constexpr uint64_t kSaltOut = 0x6f75742d6e656967ull;
constexpr uint64_t kSaltFinalLo = 0x66702d6c6f2d666eull;
constexpr uint64_t kSaltFinalHi = 0x66702d68692d666eull;
constexpr uint64_t kSaltLabeling = 0x6c6162656c696e67ull;

uint64_t
hashProps(const PeProps &p)
{
    uint64_t h = kSaltPe;
    h = hashCombine(h, static_cast<uint64_t>(p.sched));
    h = hashCombine(h, static_cast<uint64_t>(p.sharing));
    h = hashCombine(h, static_cast<uint64_t>(p.maxInsts));
    h = hashCombine(h, static_cast<uint64_t>(p.datapathBits));
    h = hashCombine(h, static_cast<uint64_t>(p.decomposable));
    h = hashCombine(h, static_cast<uint64_t>(p.minLaneBits));
    h = hashCombine(h, p.ops.raw());
    h = hashCombine(h, static_cast<uint64_t>(p.delayFifoDepth));
    h = hashCombine(h, static_cast<uint64_t>(p.streamJoin));
    h = hashCombine(h, static_cast<uint64_t>(p.regFileSize));
    return h;
}

uint64_t
hashProps(const SwitchProps &p)
{
    uint64_t h = kSaltSwitch;
    h = hashCombine(h, static_cast<uint64_t>(p.sched));
    h = hashCombine(h, static_cast<uint64_t>(p.datapathBits));
    h = hashCombine(h, static_cast<uint64_t>(p.decomposable));
    h = hashCombine(h, static_cast<uint64_t>(p.minLaneBits));
    h = hashCombine(h, static_cast<uint64_t>(p.flopOutput));
    h = hashCombine(h, static_cast<uint64_t>(p.maxRoutes));
    return h;
}

uint64_t
hashProps(const MemProps &p)
{
    uint64_t h = kSaltMem;
    h = hashCombine(h, static_cast<uint64_t>(p.kind));
    h = hashCombine(h, static_cast<uint64_t>(p.capacityBytes));
    h = hashCombine(h, static_cast<uint64_t>(p.widthBytes));
    h = hashCombine(h, static_cast<uint64_t>(p.numStreamEngines));
    h = hashCombine(h, static_cast<uint64_t>(p.linear));
    h = hashCombine(h, static_cast<uint64_t>(p.indirect));
    h = hashCombine(h, static_cast<uint64_t>(p.atomicUpdate));
    h = hashCombine(h, static_cast<uint64_t>(p.numBanks));
    return h;
}

uint64_t
hashProps(const SyncProps &p)
{
    uint64_t h = kSaltSync;
    h = hashCombine(h, static_cast<uint64_t>(p.dir));
    h = hashCombine(h, static_cast<uint64_t>(p.depth));
    h = hashCombine(h, static_cast<uint64_t>(p.widthBits));
    h = hashCombine(h, static_cast<uint64_t>(p.lanes));
    return h;
}

uint64_t
hashProps(const DelayProps &p)
{
    uint64_t h = kSaltDelay;
    h = hashCombine(h, static_cast<uint64_t>(p.sched));
    h = hashCombine(h, static_cast<uint64_t>(p.depth));
    h = hashCombine(h, static_cast<uint64_t>(p.widthBits));
    return h;
}

uint64_t
hashControl(const ControlProps &c)
{
    uint64_t h = kSaltControl;
    h = hashCombine(h, c.cmdIssueIpc);
    h = hashCombine(h, static_cast<uint64_t>(c.cmdLatency));
    h = hashCombine(h, static_cast<uint64_t>(c.configBitsPerCycle));
    return h;
}

} // namespace

uint64_t
nodeParamHash(const AdgNode &node)
{
    return std::visit([](const auto &p) { return hashProps(p); }, node.props);
}

std::string
toString(const Fp128 &fp)
{
    char buf[36];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(fp.hi),
                  static_cast<unsigned long long>(fp.lo));
    return buf;
}

AdgKey
canonicalKey(const Adg &adg)
{
    std::vector<NodeId> nodes = adg.aliveNodes();
    const size_t n = nodes.size();
    // Dense index for live nodes (IDs are sparse after tombstoning).
    std::vector<int32_t> dense(static_cast<size_t>(adg.nodeIdBound()), -1);
    for (size_t i = 0; i < n; ++i)
        dense[static_cast<size_t>(nodes[i])] = static_cast<int32_t>(i);

    // Initial WL colors: kind + parameters only — no IDs, no names, no
    // position hints — so relabelings start (and stay) identical.
    std::vector<uint64_t> label(n), next(n);
    for (size_t i = 0; i < n; ++i)
        label[i] = splitmix64(nodeParamHash(adg.node(nodes[i])));

    // Refinement rounds. log2(n) rounds propagate a node's signature
    // across the graph diameter of typical fabrics; a couple extra
    // rounds cheaply sharpen near-symmetric meshes. The fold over
    // neighbours is order-independent, so edge iteration order (which
    // follows edge IDs) cannot leak into the structural key.
    const int rounds = 2 + log2Ceil(n + 1);
    for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < n; ++i) {
            const NodeId id = nodes[i];
            UnorderedHash in, out;
            for (EdgeId e : adg.inEdges(id)) {
                const AdgEdge &edge = adg.edge(e);
                uint64_t src = label[static_cast<size_t>(
                    dense[static_cast<size_t>(edge.src)])];
                in.add(splitmix64(
                    hashCombine(src, static_cast<uint64_t>(edge.widthBits))));
            }
            for (EdgeId e : adg.outEdges(id)) {
                const AdgEdge &edge = adg.edge(e);
                uint64_t dst = label[static_cast<size_t>(
                    dense[static_cast<size_t>(edge.dst)])];
                out.add(splitmix64(
                    hashCombine(dst, static_cast<uint64_t>(edge.widthBits))));
            }
            uint64_t h = label[i];
            h = hashCombine(h, in.finish(kSaltIn));
            h = hashCombine(h, out.finish(kSaltOut));
            next[i] = h;
        }
        label.swap(next);
    }

    AdgKey key;
    // Structural: order-independent fold of the refined colors plus
    // graph-level scalars. Two salts give 128 independent bits, which
    // drives accidental-collision probability below any realistic
    // exploration length.
    {
        UnorderedHash fold;
        for (size_t i = 0; i < n; ++i)
            fold.add(label[i]);
        uint64_t edges = 0;
        for (EdgeId e : adg.aliveEdges()) {
            (void)e;
            ++edges;
        }
        uint64_t base = hashCombine(hashControl(adg.control()), edges);
        key.structural.lo =
            hashCombine(fold.finish(kSaltFinalLo), splitmix64(base));
        key.structural.hi =
            hashCombine(fold.finish(kSaltFinalHi), splitmix64(~base));
    }

    // Labeling: the live graph verbatim under its concrete IDs, in ID
    // order — exactly what the labeling-sensitive pipeline consumes.
    key.labeling = labelingHash(adg);
    return key;
}

Fp128
structuralFingerprint(const Adg &adg)
{
    return canonicalKey(adg).structural;
}

uint64_t
labelingHash(const Adg &adg)
{
    // One cheap O(V + E) pass — no WL refinement. Callers that only
    // need to pin the concrete labeled graph (per-fabric caches
    // indexed by raw node/edge IDs, e.g. the scheduler's landmark
    // tables) key on this alone instead of paying canonicalKey's
    // refinement rounds per lookup.
    uint64_t h = kSaltLabeling;
    for (NodeId id : adg.aliveNodes()) {
        h = hashCombine(h, static_cast<uint64_t>(id));
        h = hashCombine(h, nodeParamHash(adg.node(id)));
    }
    for (EdgeId e : adg.aliveEdges()) {
        const AdgEdge &edge = adg.edge(e);
        h = hashCombine(h, static_cast<uint64_t>(e));
        h = hashCombine(h, static_cast<uint64_t>(edge.src));
        h = hashCombine(h, static_cast<uint64_t>(edge.dst));
        h = hashCombine(h, static_cast<uint64_t>(edge.widthBits));
    }
    return hashCombine(h, hashControl(adg.control()));
}

} // namespace dsa::adg
