/**
 * @file
 * The Architecture Description Graph (ADG): DSAGEN's hardware
 * representation (§III). An accelerator is a graph of primitive
 * components with flexible, possibly irregular connectivity, plus one
 * control core. The same class is used for normal compilation (fixed
 * instance) and for design-space exploration (iteratively mutated).
 *
 * Node/edge ids are stable and never reused within one Adg, so that the
 * repairing scheduler can diff schedules across DSE mutations.
 */

#ifndef DSA_ADG_ADG_H
#define DSA_ADG_ADG_H

#include <string>
#include <vector>

#include "adg/node.h"
#include "base/logging.h"

namespace dsa::adg {

/** Aggregate counts used by reports and the DSE mutator. */
struct AdgStats
{
    int numPes = 0;
    int numSwitches = 0;
    int numMemories = 0;
    int numSyncs = 0;
    int numDelays = 0;
    int numEdges = 0;
    int numDynamicPes = 0;
    int numSharedPes = 0;
};

/**
 * The architecture description graph.
 *
 * Value-semantic: copying an Adg yields an independent design point
 * (the DSE clones candidate designs freely).
 */
class Adg
{
  public:
    Adg() = default;

    /// @name Construction
    /// @{
    NodeId addPe(const PeProps &props, const std::string &name = "");
    NodeId addSwitch(const SwitchProps &props, const std::string &name = "");
    NodeId addMemory(const MemProps &props, const std::string &name = "");
    NodeId addSync(const SyncProps &props, const std::string &name = "");
    NodeId addDelay(const DelayProps &props, const std::string &name = "");

    /**
     * Connect @p src to @p dst with a wire of @p widthBits bits
     * (0 = the narrower of the two endpoint datapaths).
     */
    EdgeId connect(NodeId src, NodeId dst, int widthBits = 0);

    /** Remove a node and every edge attached to it. */
    void removeNode(NodeId id);
    /** Remove a single edge. */
    void removeEdge(EdgeId id);
    /// @}

    /// @name Access
    /// @{
    // The element accessors are defined inline below the class: the
    // scheduler's routing inner loop and the usage tracker's route
    // hooks call them tens of millions of times per DSE candidate,
    // and the out-of-line definitions they started with showed up as
    // ~15% of scheduler profiles in pure call overhead.
    bool nodeAlive(NodeId id) const;
    bool edgeAlive(EdgeId id) const;
    const AdgNode &node(NodeId id) const;
    AdgNode &node(NodeId id);
    const AdgEdge &edge(EdgeId id) const;
    AdgEdge &edge(EdgeId id);

    /** Ids of all live nodes (ascending). */
    std::vector<NodeId> aliveNodes() const;
    /** Ids of all live nodes of @p kind. */
    std::vector<NodeId> aliveNodes(NodeKind kind) const;
    /** Ids of all live edges. */
    std::vector<EdgeId> aliveEdges() const;

    /** Out-edges (live) of a node. */
    const std::vector<EdgeId> &outEdges(NodeId id) const;
    /** In-edges (live) of a node. */
    const std::vector<EdgeId> &inEdges(NodeId id) const;

    /** First live edge src->dst, or kInvalidEdge. */
    EdgeId findEdge(NodeId src, NodeId dst) const;

    ControlProps &control() { return control_; }
    const ControlProps &control() const { return control_; }

    /** Upper bound over all node ids ever allocated (for dense maps). */
    int nodeIdBound() const { return static_cast<int>(nodes_.size()); }
    int edgeIdBound() const { return static_cast<int>(edges_.size()); }

    AdgStats stats() const;
    /// @}

    /// @name Validation & serialization
    /// @{
    /**
     * Check the composition rules of §III-B that are structural (the
     * dataflow-direction rules are enforced by the scheduler instead).
     * @return human-readable problems; empty means valid.
     */
    std::vector<std::string> validate() const;

    /** Serialize to the textual ADG format. */
    std::string toText() const;
    /** Graphviz rendering (node shapes/colors by kind and protocol). */
    std::string toDot() const;
    /** Parse the textual ADG format; fatal on malformed input. */
    static Adg fromText(const std::string &text);
    /// @}

  private:
    NodeId addNode(NodeKind kind,
                   std::variant<PeProps, SwitchProps, MemProps, SyncProps,
                                DelayProps> props,
                   const std::string &name);

    std::vector<AdgNode> nodes_;
    std::vector<AdgEdge> edges_;
    std::vector<std::vector<EdgeId>> outEdges_;
    std::vector<std::vector<EdgeId>> inEdges_;
    ControlProps control_;
};

inline bool
Adg::nodeAlive(NodeId id) const
{
    return id >= 0 && id < static_cast<NodeId>(nodes_.size()) &&
           nodes_[id].alive;
}

inline bool
Adg::edgeAlive(EdgeId id) const
{
    return id >= 0 && id < static_cast<EdgeId>(edges_.size()) &&
           edges_[id].alive;
}

inline const AdgNode &
Adg::node(NodeId id) const
{
    DSA_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
               "bad node id ", id);
    return nodes_[id];
}

inline AdgNode &
Adg::node(NodeId id)
{
    DSA_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
               "bad node id ", id);
    return nodes_[id];
}

inline const AdgEdge &
Adg::edge(EdgeId id) const
{
    DSA_ASSERT(id >= 0 && id < static_cast<EdgeId>(edges_.size()),
               "bad edge id ", id);
    return edges_[id];
}

inline AdgEdge &
Adg::edge(EdgeId id)
{
    DSA_ASSERT(id >= 0 && id < static_cast<EdgeId>(edges_.size()),
               "bad edge id ", id);
    return edges_[id];
}

inline const std::vector<EdgeId> &
Adg::outEdges(NodeId id) const
{
    DSA_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
               "bad node id ", id);
    return outEdges_[id];
}

inline const std::vector<EdgeId> &
Adg::inEdges(NodeId id) const
{
    DSA_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
               "bad node id ", id);
    return inEdges_[id];
}

} // namespace dsa::adg

#endif // DSA_ADG_ADG_H
