#include "adg/prebuilt.h"

#include "adg/builders.h"

namespace dsa::adg {

namespace {

/** Full integer+FP op set used by the general-purpose fabrics. */
OpSet
fullOps()
{
    return OpSet::all();
}

} // namespace

Adg
buildSoftbrain(int rows, int cols)
{
    MeshConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.pe.sched = Scheduling::Static;
    cfg.pe.sharing = Sharing::Dedicated;
    cfg.pe.delayFifoDepth = 8;
    cfg.sw.sched = Scheduling::Static;
    cfg.numInputSyncs = 3;
    cfg.numOutputSyncs = 2;
    cfg.hasSpad = true;
    cfg.spad.numBanks = 1;      // single non-banked scratchpad
    cfg.spad.linear = true;
    cfg.spad.indirect = false;
    return buildMesh(cfg);
}

Adg
buildMaeri(int leaves)
{
    TreeConfig cfg;
    cfg.leaves = leaves;
    cfg.leafPe.sched = Scheduling::Static;
    cfg.leafPe.sharing = Sharing::Dedicated;
    cfg.reducePe.sched = Scheduling::Static;
    cfg.reducePe.sharing = Sharing::Dedicated;
    return buildTree(cfg);
}

Adg
buildTriggered(int rows, int cols)
{
    MeshConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.pe.sched = Scheduling::Dynamic;
    cfg.pe.sharing = Sharing::Shared;
    cfg.pe.maxInsts = 16;       // triggered-instruction window
    cfg.pe.streamJoin = true;
    cfg.pe.ops = fullOps();
    cfg.sw.sched = Scheduling::Dynamic;
    cfg.numInputSyncs = 3;
    cfg.numOutputSyncs = 2;
    cfg.hasSpad = true;
    cfg.spad.numBanks = 4;      // PE groups share a decoupled scratchpad
    return buildMesh(cfg);
}

Adg
buildSpu(int rows, int cols)
{
    MeshConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.pe.sched = Scheduling::Dynamic;
    cfg.pe.sharing = Sharing::Dedicated;
    cfg.pe.streamJoin = true;   // data-dependence forms need join control
    cfg.pe.decomposable = true;
    cfg.pe.minLaneBits = 8;
    cfg.pe.ops = fullOps();
    cfg.sw.sched = Scheduling::Dynamic;
    cfg.sw.decomposable = true;
    cfg.sw.minLaneBits = 8;
    cfg.numInputSyncs = 4;
    cfg.numOutputSyncs = 2;
    cfg.hasSpad = true;
    cfg.spad.numBanks = 8;      // banked scratchpad
    cfg.spad.indirect = true;
    cfg.spad.atomicUpdate = true;
    return buildMesh(cfg);
}

Adg
buildRevel(int rows, int cols)
{
    MeshConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.pe.sched = Scheduling::Static;
    cfg.pe.sharing = Sharing::Dedicated;
    cfg.pe.ops = fullOps();
    cfg.numInputSyncs = 4;
    cfg.numOutputSyncs = 2;
    cfg.hasSpad = true;
    cfg.spad.linear = true;     // inductive 2D streams (REVEL's generator)
    Adg g = buildMesh(cfg);
    // Make the right half of the mesh dynamic (hybrid systolic-dataflow);
    // switches on that side speak the flow-controlled protocol too.
    for (NodeId id : g.aliveNodes(NodeKind::Pe)) {
        AdgNode &n = g.node(id);
        if (n.col >= cols / 2) {
            n.pe().sched = Scheduling::Dynamic;
            n.pe().streamJoin = true;
        }
    }
    for (NodeId id : g.aliveNodes(NodeKind::Switch)) {
        AdgNode &n = g.node(id);
        if (n.col >= cols / 2)
            n.sw().sched = Scheduling::Dynamic;
    }
    return g;
}

Adg
buildDianNaoLike(int multipliers)
{
    TreeConfig cfg;
    cfg.leaves = multipliers;
    cfg.leafPe.sched = Scheduling::Static;
    cfg.leafPe.sharing = Sharing::Dedicated;
    cfg.leafPe.ops = OpSet{OpCode::Mul, OpCode::FMul, OpCode::Pass};
    cfg.reducePe.sched = Scheduling::Static;
    cfg.reducePe.sharing = Sharing::Dedicated;
    cfg.reducePe.ops = OpSet{OpCode::Add, OpCode::FAdd, OpCode::Acc,
                             OpCode::FAcc, OpCode::Max, OpCode::FMax,
                             OpCode::Sigmoid, OpCode::ReLU, OpCode::Pass};
    cfg.hasSpad = true;
    cfg.spad.capacityBytes = 44 * 1024;  // NBin + NBout + SB
    cfg.spad.widthBytes = 128;
    return buildTree(cfg);
}

Adg
buildDseInitial(int rows, int cols)
{
    MeshConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.pe.ops = fullOps();
    cfg.pe.decomposable = true;
    cfg.pe.minLaneBits = 8;
    // Full capability: flow-controlled switches everywhere so dynamic
    // dataflow (stream-join) can route anywhere; DSE trims later.
    cfg.sw.sched = Scheduling::Dynamic;
    cfg.numInputSyncs = 4;
    cfg.numOutputSyncs = 3;
    cfg.hasSpad = true;
    cfg.spad.numBanks = 8;
    cfg.spad.indirect = true;
    cfg.spad.atomicUpdate = true;
    Adg g = buildMesh(cfg);
    // Mix in dynamic (stream-join capable) and shared PEs so every
    // modular compiler feature has hardware to map to.
    for (NodeId id : g.aliveNodes(NodeKind::Pe)) {
        AdgNode &n = g.node(id);
        if ((n.row + n.col) % 2 == 1) {
            n.pe().sched = Scheduling::Dynamic;
            n.pe().streamJoin = true;
        }
        if (n.row == 0 && n.col % 2 == 0) {
            n.pe().sharing = Sharing::Shared;
            n.pe().maxInsts = 8;
        }
    }
    return g;
}

} // namespace dsa::adg
