/**
 * @file
 * Textual dataflow-graph format, in the spirit of the original
 * framework's `.dfg` files: a human-readable/writable serialization of
 * a Region (computation DFG + stream bindings) so dataflow graphs can
 * be inspected, stored, and hand-authored independently of the
 * compiler.
 *
 * Grammar (one statement per line, `#` comments):
 *
 *   input  <name> [lanes=N] [width=B] [reuse=R]
 *   output <name> = <src>[,<src>...] [every=N] [width=B]
 *   <name> = <op> <operand>[, <operand>...]
 *            [acc init=V reset=N] [ctrl=self|op<K> pop0=M pop1=M emit=M]
 *   stream <kind> port=<name> [key=value...]
 *
 * Operands are `name`, `name.lane`, or `#imm`.
 */

#ifndef DSA_DFG_DFG_TEXT_H
#define DSA_DFG_DFG_TEXT_H

#include <string>

#include "dfg/program.h"

namespace dsa::dfg {

/** Serialize a region (DFG + streams) to the textual format. */
std::string regionToText(const Region &region);

/** Parse the textual format; fatal on malformed input. */
Region regionFromText(const std::string &text);

} // namespace dsa::dfg

#endif // DSA_DFG_DFG_TEXT_H
