/**
 * @file
 * Coarse-grain memory streams (§III-A "Memories", §IV): the decoupled
 * half of the decoupled dataflow representation. A stream describes a
 * whole memory access pattern that a memory's stream engine executes
 * autonomously, feeding or draining a DFG vector port.
 *
 * Supported patterns mirror the paper's two fixed controllers:
 *  - linear:   inductive 2D affine (REVEL-style; triangular patterns via
 *              a per-outer-iteration inner-length delta), and
 *  - indirect: a[b[i]] gather/scatter plus banked atomic update
 *              (SPU-style),
 * plus non-memory streams: constants, and recurrences that route an
 * output port back to an input port without touching memory.
 */

#ifndef DSA_DFG_STREAM_H
#define DSA_DFG_STREAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace dsa::dfg {

/** Which address space a stream touches. */
enum class MemSpace : uint8_t { Main, Spad };

enum class StreamKind : uint8_t {
    LinearRead,     ///< memory -> input port
    LinearWrite,    ///< output port -> memory
    IndirectRead,   ///< a[b[i]] gather -> input port
    IndirectWrite,  ///< scatter: a[b[i]] = v
    AtomicUpdate,   ///< a[b[i]] op= v, computed at the memory banks
    Const,          ///< immediate value repeated N times -> input port
    Recurrence,     ///< output port -> input port (no memory traffic)
    Iota            ///< affine value sequence -> input port (no memory)
};
// For Iota streams, `pattern` is reused with elemBytes == 1: the byte
// "addresses" it enumerates ARE the data values delivered to the port.

/** Human-readable stream-kind name. */
const char *streamKindName(StreamKind kind);

/**
 * Inductive 2D affine pattern, in elements:
 *   for i in [0, len2): for j in [0, len1 + i*len1Delta):
 *     addr = base + (i*stride2 + start1Delta*i + j*stride1) * elemBytes
 * len1Delta/start1Delta enable triangular patterns (e.g. cholesky/qr).
 */
struct LinearPattern
{
    int64_t baseBytes = 0;  ///< starting byte address
    int elemBytes = 8;
    int64_t stride1 = 1;    ///< inner stride (elements)
    int64_t len1 = 1;       ///< inner trip count at i=0
    int64_t len1Delta = 0;  ///< inner trip-count growth per outer iter
    int64_t stride2 = 0;    ///< outer stride (elements)
    int64_t start1Delta = 0;///< extra inner-start shift per outer iter
    int64_t len2 = 1;       ///< outer trip count

    /** Total elements produced by the pattern. */
    int64_t numElements() const;

    /** Materialize all byte addresses (tests / small patterns only). */
    std::vector<int64_t> expandAddrs() const;

    /** A flat 1D pattern. */
    static LinearPattern contiguous(int64_t base_bytes, int64_t len,
                                    int elem_bytes = 8);
    /** A strided 1D pattern. */
    static LinearPattern strided1d(int64_t base_bytes, int64_t stride,
                                   int64_t len, int elem_bytes = 8);
};

/**
 * One stream command. Reads feed an input port; writes drain an output
 * port. Indirect streams additionally read their indices via a linear
 * pattern (idxPattern) of idxElemBytes integers.
 */
struct Stream
{
    int id = -1;
    StreamKind kind = StreamKind::LinearRead;
    MemSpace space = MemSpace::Main;
    std::string name;

    /** DFG port this stream feeds (reads) or drains (writes). */
    VertexId port = kInvalidVertex;

    /**
     * Modular-compilation fallback (§IV-C): the target hardware lacks
     * the controller for this pattern, so the control core issues it
     * element-by-element. Throughput is then bounded by the core's
     * command rate instead of the stream engine.
     */
    bool scalarFallback = false;

    /**
     * Per-reissue base adjustment: when the region sits under
     * non-folded enclosing loops, the stream's base address shifts by
     * coeff bytes per iteration of each such loop (keyed by loop id).
     * The control core applies these when re-issuing the stream.
     */
    std::map<int, int64_t> reissueCoeffs;
    /** Same, for the index pattern of indirect streams. */
    std::map<int, int64_t> idxReissueCoeffs;
    /**
     * Per-reissue inner-length adjustment (triangular loop nests whose
     * inner trip count depends on an enclosing loop variable).
     */
    std::map<int, int64_t> reissueLenCoeffs;
    /**
     * Draining streams (writes, recurrences): skip this many elements
     * produced by the port before starting to consume. Used to split
     * one output port between a recurrence (first N·(M-1) elements)
     * and the final memory write (last N) in the repetitive-update
     * optimization (Fig. 7(b)).
     */
    int64_t skipFirst = 0;

    /**
     * Write streams only: the element count is an upper bound and the
     * stream simply drains whatever the port produces (data-dependent
     * compaction writes, e.g. re-sparsification).
     */
    bool openEnded = false;

    /** Data access pattern (Linear*), or gather base for Indirect*. */
    LinearPattern pattern;

    /// @name Indirect-only fields
    /// @{
    /** Pattern for reading the index array b[]. */
    LinearPattern idxPattern;
    MemSpace idxSpace = MemSpace::Main;
    int idxElemBytes = 8;
    /** Atomic update operation (AtomicUpdate only). */
    OpCode updateOp = OpCode::Add;
    /** For IndirectWrite/AtomicUpdate: output port supplying values. */
    VertexId valuePort = kInvalidVertex;
    /// @}

    /// @name Const-only fields
    /// @{
    Value constValue = 0;
    int64_t constCount = 0;
    /// @}

    /// @name Recurrence-only fields
    /// @{
    /** Output port whose values are re-injected. */
    VertexId srcPort = kInvalidVertex;
    /** Elements to forward before the recurrence completes. */
    int64_t recurrenceCount = 0;
    /// @}

    /** True for kinds that feed an input port. */
    bool feedsInput() const;
    /** True for kinds that consume memory bandwidth. */
    bool touchesMemory() const;
    /** Requires an indirect-capable memory controller. */
    bool needsIndirect() const;
    /** Requires banked atomic-update support. */
    bool needsAtomic() const;

    /** Number of data elements transferred. */
    int64_t numElements() const;
    /** Bytes of memory traffic (data + indices). */
    int64_t trafficBytes() const;
};

} // namespace dsa::dfg

#endif // DSA_DFG_STREAM_H
