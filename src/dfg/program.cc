#include "dfg/program.h"

#include "base/logging.h"

namespace dsa::dfg {

int
Region::addStream(Stream s)
{
    s.id = static_cast<int>(streams.size());
    if (s.feedsInput()) {
        DSA_ASSERT(dfg.vertex(s.port).kind == VertexKind::InputPort,
                   "stream '", s.name, "' must feed an input port");
    } else {
        VertexId drained =
            s.kind == StreamKind::LinearWrite ? s.port : s.valuePort;
        DSA_ASSERT(dfg.vertex(drained).kind == VertexKind::OutputPort,
                   "stream '", s.name, "' must drain an output port");
    }
    if (s.kind == StreamKind::Recurrence) {
        DSA_ASSERT(dfg.vertex(s.srcPort).kind == VertexKind::OutputPort,
                   "recurrence '", s.name, "' source must be output port");
    }
    streams.push_back(std::move(s));
    return streams.back().id;
}

int64_t
Region::reissues() const
{
    int64_t n = 1;
    for (const auto &[id, extent] : outerLoops)
        n *= std::max<int64_t>(1, extent);
    return n;
}

int64_t
Region::instancesEstimate() const
{
    // A dedicated fabric fires once per vector of inputs; estimate as
    // the max elements fed to any input port divided by its lanes.
    int64_t instances = 1;
    for (const auto &s : streams) {
        VertexId portV = s.port;
        if (!s.feedsInput() && (s.kind == StreamKind::IndirectWrite ||
                                s.kind == StreamKind::AtomicUpdate))
            portV = s.valuePort;
        const Vertex &port = dfg.vertex(portV);
        int64_t fires = (s.numElements() + port.lanes - 1) /
                        std::max(1, port.lanes);
        instances = std::max(instances, fires);
    }
    return instances;
}

std::vector<std::string>
Region::validate(const std::vector<VertexId> &externallyFed) const
{
    std::vector<std::string> problems = dfg.validate();
    auto complain = [&](auto &&...args) {
        problems.push_back(detail::fold(args...));
    };

    // Each input port needs exactly one primary feed; a recurrence may
    // additionally feed a port that a primary stream initializes (the
    // repetitive in-place-update idiom of Fig. 7(b)).
    std::vector<int> primaryFeeds(dfg.numVertices(), 0);
    std::vector<int> recurrenceFeeds(dfg.numVertices(), 0);
    for (VertexId p : externallyFed)
        if (p >= 0 && p < dfg.numVertices())
            ++primaryFeeds[p];
    for (const auto &s : streams) {
        if (s.port < 0 || s.port >= dfg.numVertices()) {
            complain("stream '", s.name, "' has bad port");
            continue;
        }
        if (s.feedsInput()) {
            if (s.kind == StreamKind::Recurrence)
                ++recurrenceFeeds[s.port];
            else
                ++primaryFeeds[s.port];
        }
        if (s.kind == StreamKind::Const && s.constCount <= 0)
            complain("const stream '", s.name, "' has no elements");
    }
    for (VertexId p : dfg.inputPorts()) {
        if (primaryFeeds[p] + recurrenceFeeds[p] == 0)
            complain("input port '", dfg.vertex(p).name,
                     "' is fed by no stream");
        if (primaryFeeds[p] > 1 || recurrenceFeeds[p] > 1)
            complain("input port '", dfg.vertex(p).name,
                     "' is fed by conflicting streams");
    }
    return problems;
}

int
DecoupledProgram::numInstructions() const
{
    int n = 0;
    for (const auto &r : regions)
        n += r.dfg.numInstructions();
    return n;
}

std::vector<std::string>
DecoupledProgram::validate() const
{
    std::vector<std::string> problems;
    std::vector<std::vector<VertexId>> fed(regions.size());
    for (const auto &f : forwards)
        if (f.dstRegion >= 0 && f.dstRegion < static_cast<int>(regions.size()))
            fed[f.dstRegion].push_back(f.dstPort);
    for (size_t i = 0; i < regions.size(); ++i) {
        for (auto &p : regions[i].validate(fed[i]))
            problems.push_back(regions[i].name + ": " + p);
    }
    for (const auto &f : forwards) {
        bool ok = f.srcRegion >= 0 &&
                  f.srcRegion < static_cast<int>(regions.size()) &&
                  f.dstRegion >= 0 &&
                  f.dstRegion < static_cast<int>(regions.size());
        if (!ok) {
            problems.push_back("forward references bad region");
            continue;
        }
        const auto &src = regions[f.srcRegion].dfg;
        const auto &dst = regions[f.dstRegion].dfg;
        if (f.srcPort < 0 || f.srcPort >= src.numVertices() ||
            src.vertex(f.srcPort).kind != VertexKind::OutputPort)
            problems.push_back("forward source must be an output port");
        if (f.dstPort < 0 || f.dstPort >= dst.numVertices() ||
            dst.vertex(f.dstPort).kind != VertexKind::InputPort)
            problems.push_back("forward target must be an input port");
    }
    return problems;
}

} // namespace dsa::dfg
