#include "dfg/dfg.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "base/bits.h"
#include "base/logging.h"

namespace dsa::dfg {

VertexId
Dfg::addInputPort(const std::string &name, int lanes, int widthBits)
{
    DSA_ASSERT(lanes >= 1, "port needs >= 1 lane");
    DSA_ASSERT(isPow2(widthBits) && widthBits <= 64, "bad port width");
    Vertex v;
    v.id = static_cast<VertexId>(vertices_.size());
    v.kind = VertexKind::InputPort;
    v.name = name;
    v.lanes = lanes;
    v.widthBits = widthBits;
    vertices_.push_back(std::move(v));
    usesDirty_ = true;
    return vertices_.back().id;
}

VertexId
Dfg::addOutputPort(const std::string &name, std::vector<Operand> srcs,
                   int64_t outputEvery, int widthBits)
{
    DSA_ASSERT(!srcs.empty(), "output port needs at least one source");
    for (const auto &s : srcs)
        DSA_ASSERT(!s.isImm(), "output port must drain values");
    Vertex v;
    v.id = static_cast<VertexId>(vertices_.size());
    v.kind = VertexKind::OutputPort;
    v.name = name;
    v.lanes = static_cast<int>(srcs.size());
    v.outputEvery = outputEvery;
    v.widthBits = widthBits;
    v.operands = std::move(srcs);
    vertices_.push_back(std::move(v));
    usesDirty_ = true;
    return vertices_.back().id;
}

VertexId
Dfg::addInstruction(OpCode op, std::vector<Operand> operands,
                    const std::string &name, int widthBits)
{
    DSA_ASSERT(static_cast<int>(operands.size()) <= kMaxOperands,
               "too many operands");
    DSA_ASSERT(static_cast<int>(operands.size()) == opInfo(op).numOperands,
               "op ", opName(op), " wants ", opInfo(op).numOperands,
               " operands, got ", operands.size());
    Vertex v;
    v.id = static_cast<VertexId>(vertices_.size());
    v.kind = VertexKind::Instruction;
    v.op = op;
    v.operands = std::move(operands);
    v.name = name.empty()
        ? std::string(opName(op)) + "_" + std::to_string(v.id) : name;
    v.widthBits = widthBits;
    vertices_.push_back(std::move(v));
    usesDirty_ = true;
    return vertices_.back().id;
}

VertexId
Dfg::addPredicatedInstruction(OpCode op, std::vector<Operand> operands,
                              const CtrlSpec &ctrl, const std::string &name,
                              int widthBits)
{
    DSA_ASSERT(static_cast<int>(operands.size()) <= kMaxOperands,
               "too many operands");
    int arity = opInfo(op).numOperands;
    int extra = ctrl.source == CtrlSpec::Source::Operand ? 1 : 0;
    DSA_ASSERT(static_cast<int>(operands.size()) == arity + extra,
               "op ", opName(op), " with ctrl wants ", arity + extra,
               " operands, got ", operands.size());
    Vertex v;
    v.id = static_cast<VertexId>(vertices_.size());
    v.kind = VertexKind::Instruction;
    v.op = op;
    v.operands = std::move(operands);
    v.ctrl = ctrl;
    v.name = name.empty()
        ? std::string(opName(op)) + "_j" + std::to_string(v.id) : name;
    v.widthBits = widthBits;
    vertices_.push_back(std::move(v));
    usesDirty_ = true;
    return vertices_.back().id;
}

VertexId
Dfg::addAccumulator(OpCode op, Operand value, Value accInit,
                    int64_t resetEvery, const std::string &name,
                    int widthBits)
{
    DSA_ASSERT(opInfo(op).numOperands == 2,
               "accumulator needs a binary op, got ", opName(op));
    Vertex v;
    v.id = static_cast<VertexId>(vertices_.size());
    v.kind = VertexKind::Instruction;
    v.op = op;
    v.operands = {value};
    v.selfAcc = true;
    v.accInit = accInit;
    v.accResetEvery = resetEvery;
    v.name = name.empty()
        ? std::string("acc_") + opName(op) + "_" + std::to_string(v.id)
        : name;
    v.widthBits = widthBits;
    vertices_.push_back(std::move(v));
    usesDirty_ = true;
    return vertices_.back().id;
}

void
Dfg::setCtrl(VertexId v, const CtrlSpec &ctrl)
{
    Vertex &vx = vertex(v);
    DSA_ASSERT(vx.kind == VertexKind::Instruction,
               "ctrl only applies to instructions");
    if (ctrl.source == CtrlSpec::Source::Operand) {
        DSA_ASSERT(ctrl.ctrlOperand >= 0 &&
                   ctrl.ctrlOperand < static_cast<int>(vx.operands.size()),
                   "bad ctrl operand index");
    }
    vx.ctrl = ctrl;
}

const Vertex &
Dfg::vertex(VertexId v) const
{
    DSA_ASSERT(v >= 0 && v < numVertices(), "bad vertex id ", v);
    return vertices_[v];
}

Vertex &
Dfg::vertex(VertexId v)
{
    DSA_ASSERT(v >= 0 && v < numVertices(), "bad vertex id ", v);
    return vertices_[v];
}

std::vector<VertexId>
Dfg::inputPorts() const
{
    std::vector<VertexId> out;
    for (const auto &v : vertices_)
        if (v.kind == VertexKind::InputPort)
            out.push_back(v.id);
    return out;
}

std::vector<VertexId>
Dfg::outputPorts() const
{
    std::vector<VertexId> out;
    for (const auto &v : vertices_)
        if (v.kind == VertexKind::OutputPort)
            out.push_back(v.id);
    return out;
}

std::vector<VertexId>
Dfg::instructions() const
{
    std::vector<VertexId> out;
    for (const auto &v : vertices_)
        if (v.kind == VertexKind::Instruction)
            out.push_back(v.id);
    return out;
}

const std::vector<Dfg::Use> &
Dfg::uses(VertexId v) const
{
    if (usesDirty_)
        rebuildUses();
    DSA_ASSERT(v >= 0 && v < numVertices(), "bad vertex id ", v);
    return uses_[v];
}

void
Dfg::rebuildUses() const
{
    uses_.assign(vertices_.size(), {});
    for (const auto &vx : vertices_) {
        for (size_t i = 0; i < vx.operands.size(); ++i) {
            const Operand &o = vx.operands[i];
            if (!o.isImm())
                uses_[o.src].push_back({vx.id, static_cast<int>(i)});
        }
    }
    usesDirty_ = false;
}

int
Dfg::numInstructions() const
{
    int n = 0;
    for (const auto &v : vertices_)
        if (v.kind == VertexKind::Instruction)
            ++n;
    return n;
}

std::vector<VertexId>
Dfg::topoOrder() const
{
    // Kahn's algorithm; accumulate self-dependences are implicit (the
    // Acc register), so the graph seen here is a DAG if valid.
    std::vector<int> indeg(vertices_.size(), 0);
    for (const auto &v : vertices_) {
        for (const auto &o : v.operands)
            if (!o.isImm())
                ++indeg[v.id];
    }
    std::vector<VertexId> order;
    std::vector<VertexId> ready;
    for (const auto &v : vertices_)
        if (indeg[v.id] == 0)
            ready.push_back(v.id);
    if (usesDirty_)
        rebuildUses();
    while (!ready.empty()) {
        VertexId v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const auto &u : uses_[v])
            if (--indeg[u.user] == 0)
                ready.push_back(u.user);
    }
    return order;
}

int
Dfg::longestRecurrence() const
{
    // The DFG itself is a DAG; recurrences appear as accumulate
    // instructions (register self-loop) whose loop length is the
    // latency of the accumulate op itself, and as recurrence streams
    // (handled at the Region level). Report the max accumulate latency.
    int longest = 0;
    for (const auto &v : vertices_)
        if (v.isAccumulate())
            longest = std::max(longest, opInfo(v.op).latency);
    return longest;
}

std::vector<std::string>
Dfg::validate() const
{
    std::vector<std::string> problems;
    auto complain = [&](auto &&...args) {
        problems.push_back(detail::fold(args...));
    };

    for (const auto &v : vertices_) {
        for (const auto &o : v.operands) {
            if (o.isImm())
                continue;
            if (o.src < 0 || o.src >= numVertices()) {
                complain("vertex '", v.name, "' references bad vertex ",
                         o.src);
                continue;
            }
            const Vertex &src = vertices_[o.src];
            if (src.kind == VertexKind::OutputPort)
                complain("vertex '", v.name, "' reads from output port '",
                         src.name, "'");
        }
        if (v.kind == VertexKind::InputPort && !v.operands.empty())
            complain("input port '", v.name, "' has operands");
        if (v.kind == VertexKind::OutputPort &&
            static_cast<int>(v.operands.size()) != v.lanes)
            complain("output port '", v.name, "' needs one source per lane");
        for (const auto &o : v.operands) {
            if (o.isImm() || o.src < 0 || o.src >= numVertices())
                continue;
            const Vertex &src = vertices_[o.src];
            int src_lanes = src.kind == VertexKind::InputPort ? src.lanes : 1;
            if (o.srcLane < 0 || o.srcLane >= src_lanes)
                complain("vertex '", v.name, "' reads lane ", o.srcLane,
                         " of '", src.name, "' which has ", src_lanes,
                         " lane(s)");
        }
        if (v.kind == VertexKind::Instruction && v.ctrl.active() &&
            v.ctrl.source == CtrlSpec::Source::Operand &&
            (v.ctrl.ctrlOperand < 0 ||
             v.ctrl.ctrlOperand >= static_cast<int>(v.operands.size()))) {
            complain("instruction '", v.name, "' has bad ctrl operand");
        }
    }
    if (topoOrder().size() != vertices_.size())
        complain("dataflow graph has a combinational cycle");
    return problems;
}

std::string
Dfg::toDot() const
{
    std::ostringstream os;
    os << "digraph \"" << name_ << "\" {\n";
    for (const auto &v : vertices_) {
        const char *shape = v.kind == VertexKind::Instruction
            ? "ellipse" : (v.kind == VertexKind::InputPort ? "invhouse"
                                                           : "house");
        os << "  v" << v.id << " [label=\"" << v.name << "\", shape="
           << shape << "];\n";
    }
    for (const auto &v : vertices_) {
        for (size_t i = 0; i < v.operands.size(); ++i) {
            const auto &o = v.operands[i];
            if (!o.isImm())
                os << "  v" << o.src << " -> v" << v.id << " [label=\""
                   << i << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace dsa::dfg
