/**
 * @file
 * The decoupled program: the unit handed from the compiler to the
 * scheduler, performance model, and simulator. One program corresponds
 * to one `#pragma dsa config` scope and holds the concurrent offloaded
 * regions within it, each a DFG plus its stream commands, plus any
 * producer-consumer forwards the generic optimizations created (§IV-D).
 */

#ifndef DSA_DFG_PROGRAM_H
#define DSA_DFG_PROGRAM_H

#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "dfg/stream.h"

namespace dsa::dfg {

/** One offloaded region: computation DFG + decoupled memory streams. */
struct Region
{
    std::string name;
    Dfg dfg;
    std::vector<Stream> streams;
    /**
     * Relative execution frequency of the region (the LLVM
     * BlockFrequencyInfo analogue of §V-B), used by the performance
     * model to weigh concurrent regions.
     */
    double execFreq = 1.0;
    /**
     * How many vectorized lanes this region was unrolled by; the
     * compiler explores several values (§IV-E "Resource Allocation").
     */
    int unrollFactor = 1;
    /**
     * Set when a data-dependent idiom (e.g. a merge loop) could not be
     * mapped spatially and executes with per-iteration serialization:
     * each DFG instance depends on the previous one through the length
     * of serialDependenceLatency (in instructions/cycles).
     */
    bool serialized = false;
    int serialDependenceLatency = 0;
    /**
     * Enclosing (non-folded) loops, outermost first: the control core
     * re-issues the region's streams once per iteration combination,
     * shifting bases by each stream's reissueCoeffs. Patterns fold at
     * most two loop dimensions; deeper nests re-issue.
     */
    std::vector<std::pair<int, int64_t>> outerLoops;
    /**
     * Memory-ordering fences between re-issues (an in-place update
     * that did not fit the recurrence optimization): the fabric drains
     * completely between consecutive re-issues.
     */
    bool drainBetweenReissues = false;

    /** Product of outer-loop extents (1 if none). */
    int64_t reissues() const;

    /**
     * Regions (indices) whose complete execution must precede this
     * region's start: cross-region array dependences between disjoint
     * loop nests (e.g. the two matrix products of 2mm). Enforced with
     * a memory fence by the control core.
     */
    std::vector<int> dependsOn;
    /**
     * Configuration group: regions sharing a group coexist in one
     * fabric bitstream; moving to a different group reconfigures the
     * fabric (e.g. the stages of fft). Assigned by the compiler from
     * the fabric's capacity.
     */
    int configGroup = 0;

    /** Add a stream; assigns its id and validates the port binding. */
    int addStream(Stream s);

    /** Expected firings of the region's DFG (drives the perf model). */
    int64_t instancesEstimate() const;

    /**
     * Structural checks over dfg + streams. Ports in @p externallyFed
     * (targets of cross-region forwards) are exempt from the
     * every-input-port-needs-a-stream rule.
     */
    std::vector<std::string>
    validate(const std::vector<VertexId> &externallyFed = {}) const;
};

/**
 * A producer-consumer forward (§IV-D): values leaving srcRegion's
 * output port are routed directly to dstRegion's input port, avoiding
 * a memory round-trip and a phase barrier.
 */
struct Forward
{
    int srcRegion = -1;
    VertexId srcPort = kInvalidVertex;
    int dstRegion = -1;
    VertexId dstPort = kInvalidVertex;
    /**
     * Fallback when forwarding is disabled: the value round-trips
     * through memory with a phase barrier (slower, modeled by the
     * performance estimator and simulator).
     */
    bool viaMemory = false;
};

/**
 * One issue of one region within a sequentially-phased program: the
 * region index plus the values of its outer-loop induction variables.
 */
struct PhaseIssue
{
    int region = -1;
    std::vector<std::pair<int, int64_t>> ivs;  ///< (loopId, value)
};

/** A full decoupled program (one config scope). */
struct DecoupledProgram
{
    std::string name;
    std::vector<Region> regions;
    std::vector<Forward> forwards;

    /**
     * Sequentially-phased execution: regions carry cross-region array
     * dependences under shared enclosing loops (qr/chol/fft-style), so
     * the control core issues them strictly in program order, one
     * issue at a time, following phaseScript. When false, regions run
     * concurrently (subject to dependsOn / via-memory forwards).
     */
    bool sequential = false;
    std::vector<PhaseIssue> phaseScript;

    /** Total instruction count across regions. */
    int numInstructions() const;

    /** Structural checks over all regions and forwards. */
    std::vector<std::string> validate() const;
};

} // namespace dsa::dfg

#endif // DSA_DFG_PROGRAM_H
