/**
 * @file
 * The decoupled dataflow graph (DFG): DSAGEN's program representation
 * for offloaded regions (§II, Fig. 2(b)). Memory accesses are expressed
 * as coarse-grain streams (stream.h) entering/leaving through vector
 * ports; the computation itself is a graph of instructions.
 *
 * Vertices are instructions, input ports, or output ports; each vertex
 * produces exactly one value per firing. Dynamic (stream-join capable)
 * instructions carry a control specification that conditionally reuses
 * operands or abstains from emitting (§III-A, §IV-E).
 */

#ifndef DSA_DFG_DFG_H
#define DSA_DFG_DFG_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.h"

namespace dsa::dfg {

/** Vertex identifier within one Dfg. */
using VertexId = int32_t;
constexpr VertexId kInvalidVertex = -1;

/** Maximum instruction input arity. */
constexpr int kMaxOperands = 3;

enum class VertexKind : uint8_t { InputPort, Instruction, OutputPort };

/**
 * An instruction operand: another vertex's value or an immediate.
 * When the producer is a multi-lane input port, @c srcLane selects
 * which lane of each popped vector this operand reads (unrolled DFGs,
 * Fig. 2(b)).
 */
struct Operand
{
    VertexId src = kInvalidVertex;  ///< producing vertex, or kInvalid
    Value imm = 0;                  ///< immediate when src == kInvalid
    int srcLane = 0;                ///< lane of a vector producer

    bool isImm() const { return src == kInvalidVertex; }

    static Operand value(VertexId v, int lane = 0)
    {
        return Operand{v, 0, lane};
    }
    static Operand immediate(Value imm)
    {
        return Operand{kInvalidVertex, imm, 0};
    }
};

/**
 * Stream-join control (§IV-E / SPU [20]): decides, per firing, which
 * operands are popped and whether a result is emitted, keyed by a
 * small control value in 0..7.
 *
 * The control value comes either from the instruction's own result
 * (Self — e.g. a Cmp3 join unit) or from a designated operand
 * (Operand — e.g. a multiply predicated by a routed compare result).
 */
struct CtrlSpec
{
    enum class Source : uint8_t { None, Self, Operand };

    Source source = Source::None;
    /** Operand index carrying the control value when source==Operand. */
    int ctrlOperand = -1;
    /** popMask[i] bit v set => pop operand i when control value is v. */
    uint8_t popMask[kMaxOperands] = {0xFF, 0xFF, 0xFF};
    /** Bit v set => emit the result when control value is v. */
    uint8_t emitMask = 0xFF;

    bool active() const { return source != Source::None; }

    bool pops(int operand, int ctrlValue) const
    {
        return popMask[operand] & (1u << (ctrlValue & 7));
    }
    bool emits(int ctrlValue) const
    {
        return emitMask & (1u << (ctrlValue & 7));
    }
};

/** One DFG vertex. */
struct Vertex
{
    VertexId id = kInvalidVertex;
    VertexKind kind = VertexKind::Instruction;
    std::string name;

    /// @name Instruction fields
    /// @{
    OpCode op = OpCode::Pass;
    std::vector<Operand> operands;
    CtrlSpec ctrl;
    /** Result bitwidth (power of two <= 64). */
    int widthBits = 64;
    /// @}

    /// @name Port fields
    /// @{
    /** Vector lanes released together (ports only). */
    int lanes = 1;
    /**
     * Output ports only: keep one element out of every @c outputEvery
     * produced (the last of each group). Used to drain reductions:
     * an accumulator feeding an output with outputEvery == N yields
     * one result per N inputs. -1 = emit only the final value.
     */
    int64_t outputEvery = 1;
    /**
     * Input ports only: each popped element is delivered to @c reuse
     * consecutive fires before advancing (broadcast of slowly-varying
     * values, e.g. a producer-consumer forwarded scalar).
     */
    int64_t reuse = 1;
    /// @}

    /// @name Accumulator fields
    /// @{
    /**
     * Self-accumulating instruction: the first (implicit) operand is a
     * PE register; result = op(reg, explicit operand); reg = result.
     * Generalizes Acc to any binary reduction op (max-pool, min, fadd).
     */
    bool selfAcc = false;
    /** Reset the accumulator register after this many fires (0=never). */
    int64_t accResetEvery = 0;
    /** Initial / reset value of the accumulator register. */
    Value accInit = 0;
    /// @}

    /** True for instructions using a PE accumulator register. */
    bool isAccumulate() const
    {
        return kind == VertexKind::Instruction &&
               (selfAcc || op == OpCode::Acc || op == OpCode::FAcc);
    }

    /**
     * Instructions that may only run on dynamic-scheduled PEs:
     * anything with active stream-join control.
     */
    bool needsDynamicPe() const { return ctrl.active(); }
};

/**
 * A dataflow graph for one offloaded region.
 *
 * Construction API returns VertexIds; operands reference producers.
 * Use validate() after construction; the compiler, scheduler, and
 * simulator all assume a validated DFG.
 */
class Dfg
{
  public:
    Dfg() = default;
    explicit Dfg(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /// @name Construction
    /// @{
    /** Add a vector input port with @p lanes lanes of @p widthBits. */
    VertexId addInputPort(const std::string &name, int lanes = 1,
                          int widthBits = 64);
    /**
     * Add an output port draining one value per lane per fire.
     * @param srcs      one source operand per lane
     * @param outputEvery see Vertex::outputEvery
     */
    VertexId addOutputPort(const std::string &name,
                           std::vector<Operand> srcs,
                           int64_t outputEvery = 1, int widthBits = 64);
    /** Add an instruction. */
    VertexId addInstruction(OpCode op, std::vector<Operand> operands,
                            const std::string &name = "",
                            int widthBits = 64);
    /**
     * Add a self-accumulating reduction: result = op(reg, value).
     * @param op        a binary opcode (Add, FAdd, Max, FMin, ...)
     * @param value     the explicit operand
     * @param accInit   initial/reset register value
     * @param resetEvery reset period in fires (0 = never)
     */
    VertexId addAccumulator(OpCode op, Operand value, Value accInit = 0,
                            int64_t resetEvery = 0,
                            const std::string &name = "",
                            int widthBits = 64);
    /**
     * Add an instruction with stream-join/predication control. The
     * control operand (ctrl.ctrlOperand) may be one extra operand
     * beyond the opcode's natural arity.
     */
    VertexId addPredicatedInstruction(OpCode op,
                                      std::vector<Operand> operands,
                                      const CtrlSpec &ctrl,
                                      const std::string &name = "",
                                      int widthBits = 64);
    /** Attach stream-join control to an instruction. */
    void setCtrl(VertexId v, const CtrlSpec &ctrl);
    /// @}

    /// @name Access
    /// @{
    int numVertices() const { return static_cast<int>(vertices_.size()); }
    const Vertex &vertex(VertexId v) const;
    Vertex &vertex(VertexId v);
    const std::vector<Vertex> &vertices() const { return vertices_; }

    std::vector<VertexId> inputPorts() const;
    std::vector<VertexId> outputPorts() const;
    std::vector<VertexId> instructions() const;

    /** Vertices consuming @p v's value (with operand index). */
    struct Use { VertexId user; int operandIdx; };
    const std::vector<Use> &uses(VertexId v) const;

    /** Count of non-port instructions. */
    int numInstructions() const;

    /**
     * Length (in instructions, weighted by op latency) of the longest
     * cycle through @p v, or 0 if v is not on a cycle. Cycles arise
     * from accumulate self-loops and recurrence streams and determine
     * the dependence activity ratio of the performance model.
     */
    int longestRecurrence() const;

    /** Topological order ignoring back-edges to accumulators. */
    std::vector<VertexId> topoOrder() const;
    /// @}

    /** Structural checks; returns problems (empty = valid). */
    std::vector<std::string> validate() const;

    /** Graphviz dump for debugging. */
    std::string toDot() const;

  private:
    std::string name_;
    std::vector<Vertex> vertices_;
    mutable std::vector<std::vector<Use>> uses_;
    mutable bool usesDirty_ = true;

    void rebuildUses() const;
};

} // namespace dsa::dfg

#endif // DSA_DFG_DFG_H
