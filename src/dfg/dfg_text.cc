#include "dfg/dfg_text.h"

#include <map>
#include <sstream>

#include "base/logging.h"
#include "base/strings.h"

namespace dsa::dfg {

namespace {

std::string
operandToText(const Dfg &d, const Operand &o)
{
    if (o.isImm())
        return "#" + std::to_string(o.imm);
    std::string s = d.vertex(o.src).name;
    if (o.srcLane != 0 ||
        (d.vertex(o.src).kind == VertexKind::InputPort &&
         d.vertex(o.src).lanes > 1))
        s += "." + std::to_string(o.srcLane);
    return s;
}

std::string
maskToText(uint8_t m)
{
    std::ostringstream os;
    os << "0x" << std::hex << static_cast<int>(m);
    return os.str();
}

} // namespace

std::string
regionToText(const Region &region)
{
    const Dfg &d = region.dfg;
    std::ostringstream os;
    os << "# region " << region.name << "\n";
    for (VertexId v : d.inputPorts()) {
        const Vertex &vx = d.vertex(v);
        os << "input " << vx.name << " lanes=" << vx.lanes
           << " width=" << vx.widthBits;
        if (vx.reuse != 1)
            os << " reuse=" << vx.reuse;
        os << "\n";
    }
    for (VertexId v : d.topoOrder()) {
        const Vertex &vx = d.vertex(v);
        if (vx.kind != VertexKind::Instruction)
            continue;
        os << vx.name << " = " << opName(vx.op);
        for (size_t i = 0; i < vx.operands.size(); ++i)
            os << (i ? ", " : " ") << operandToText(d, vx.operands[i]);
        if (vx.selfAcc)
            os << " acc init=" << vx.accInit
               << " reset=" << vx.accResetEvery;
        if (vx.ctrl.active()) {
            os << " ctrl="
               << (vx.ctrl.source == CtrlSpec::Source::Self
                       ? std::string("self")
                       : "op" + std::to_string(vx.ctrl.ctrlOperand));
            for (size_t i = 0; i < vx.operands.size() && i < 3; ++i)
                os << " pop" << i << "="
                   << maskToText(vx.ctrl.popMask[i]);
            os << " emit=" << maskToText(vx.ctrl.emitMask);
        }
        if (vx.widthBits != 64)
            os << " width=" << vx.widthBits;
        os << "\n";
    }
    for (VertexId v : d.outputPorts()) {
        const Vertex &vx = d.vertex(v);
        os << "output " << vx.name << " =";
        for (size_t i = 0; i < vx.operands.size(); ++i)
            os << (i ? "," : " ") << operandToText(d, vx.operands[i]);
        if (vx.outputEvery != 1)
            os << " every=" << vx.outputEvery;
        if (vx.widthBits != 64)
            os << " width=" << vx.widthBits;
        os << "\n";
    }
    for (const Stream &st : region.streams) {
        os << "stream " << streamKindName(st.kind) << " port="
           << d.vertex(st.kind == StreamKind::IndirectWrite ||
                               st.kind == StreamKind::AtomicUpdate
                           ? st.valuePort
                           : st.port)
                  .name
           << " space=" << (st.space == MemSpace::Main ? "main" : "spad")
           << " base=" << st.pattern.baseBytes
           << " elem=" << st.pattern.elemBytes
           << " stride=" << st.pattern.stride1
           << " len=" << st.pattern.len1;
        if (st.pattern.len2 != 1)
            os << " stride2=" << st.pattern.stride2
               << " len2=" << st.pattern.len2;
        if (st.kind == StreamKind::Const)
            os << " value=" << st.constValue << " count=" << st.constCount;
        if (st.kind == StreamKind::Recurrence)
            os << " src=" << d.vertex(st.srcPort).name
               << " count=" << st.recurrenceCount;
        if (st.needsIndirect())
            os << " idxbase=" << st.idxPattern.baseBytes
               << " idxstride=" << st.idxPattern.stride1
               << " idxlen=" << st.idxPattern.len1
               << " idxelem=" << st.idxElemBytes;
        if (st.kind == StreamKind::AtomicUpdate)
            os << " op=" << opName(st.updateOp);
        if (st.scalarFallback)
            os << " fallback=1";
        os << "\n";
    }
    return os.str();
}

namespace {

struct Parser
{
    Region region;
    std::map<std::string, VertexId> names;

    Operand
    operand(const std::string &tok) const
    {
        if (tok.empty())
            DSA_FATAL("empty operand");
        if (tok[0] == '#')
            return Operand::immediate(
                static_cast<Value>(std::stoll(tok.substr(1))));
        auto dot = tok.find('.');
        std::string name = tok.substr(0, dot);
        int lane = dot == std::string::npos
            ? 0 : std::stoi(tok.substr(dot + 1));
        auto it = names.find(name);
        if (it == names.end())
            DSA_FATAL("unknown value '", name, "'");
        return Operand::value(it->second, lane);
    }

    static std::map<std::string, std::string>
    keyVals(const std::vector<std::string> &toks, size_t from)
    {
        std::map<std::string, std::string> kv;
        for (size_t i = from; i < toks.size(); ++i) {
            if (toks[i].empty())
                continue;
            auto eq = toks[i].find('=');
            if (eq != std::string::npos)
                kv[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
        }
        return kv;
    }
};

uint8_t
maskFromText(const std::string &s)
{
    return static_cast<uint8_t>(std::stoul(s, nullptr, 0));
}

} // namespace

Region
regionFromText(const std::string &text)
{
    Parser p;
    for (const std::string &raw : split(text, '\n')) {
        std::string line = trim(raw);
        if (startsWith(line, "# region ")) {
            p.region.name = trim(line.substr(9));
            p.region.dfg.setName(p.region.name);
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        auto toks = split(line, ' ');
        // Strip commas glued to operand tokens.
        for (auto &t : toks)
            if (!t.empty() && t.back() == ',')
                t.pop_back();

        if (toks[0] == "input") {
            auto kv = Parser::keyVals(toks, 2);
            int lanes = std::stoi(kv.count("lanes") ? kv["lanes"] : "1");
            int width = std::stoi(kv.count("width") ? kv["width"] : "64");
            VertexId v = p.region.dfg.addInputPort(toks[1], lanes, width);
            if (kv.count("reuse"))
                p.region.dfg.vertex(v).reuse = std::stoll(kv["reuse"]);
            p.names[toks[1]] = v;
        } else if (toks[0] == "output") {
            DSA_ASSERT(toks.size() >= 4 && toks[2] == "=",
                       "malformed output line '", line, "'");
            std::vector<Operand> srcs;
            size_t i = 3;
            for (; i < toks.size(); ++i) {
                if (toks[i].find('=') != std::string::npos &&
                    toks[i][0] != '#')
                    break;
                for (const auto &piece : split(toks[i], ','))
                    if (!piece.empty())
                        srcs.push_back(p.operand(piece));
            }
            auto kv = Parser::keyVals(toks, i);
            int64_t every =
                kv.count("every") ? std::stoll(kv["every"]) : 1;
            int width = kv.count("width") ? std::stoi(kv["width"]) : 64;
            VertexId v = p.region.dfg.addOutputPort(toks[1], srcs, every,
                                                    width);
            p.names[toks[1]] = v;
        } else if (toks[0] == "stream") {
            DSA_ASSERT(toks.size() >= 3, "malformed stream line");
            Stream st;
            std::string kindName = toks[1];
            for (int k = 0;; ++k) {
                DSA_ASSERT(k <= static_cast<int>(StreamKind::Iota),
                           "unknown stream kind '", kindName, "'");
                if (streamKindName(static_cast<StreamKind>(k)) ==
                    kindName) {
                    st.kind = static_cast<StreamKind>(k);
                    break;
                }
            }
            auto kv = Parser::keyVals(toks, 2);
            DSA_ASSERT(kv.count("port"), "stream needs port=");
            VertexId port = p.names.at(kv["port"]);
            if (st.kind == StreamKind::IndirectWrite ||
                st.kind == StreamKind::AtomicUpdate) {
                st.valuePort = port;
                st.port = port;
            } else {
                st.port = port;
            }
            st.name = kindName + "_" + kv["port"];
            if (kv.count("space"))
                st.space = kv["space"] == "main" ? MemSpace::Main
                                                 : MemSpace::Spad;
            auto geti = [&](const char *key, int64_t dflt) {
                return kv.count(key) ? std::stoll(kv[key]) : dflt;
            };
            st.pattern.baseBytes = geti("base", 0);
            st.pattern.elemBytes =
                static_cast<int>(geti("elem", 8));
            st.pattern.stride1 = geti("stride", 1);
            st.pattern.len1 = geti("len", 1);
            st.pattern.stride2 = geti("stride2", 0);
            st.pattern.len2 = geti("len2", 1);
            st.constValue = static_cast<Value>(geti("value", 0));
            st.constCount = geti("count", 0);
            st.recurrenceCount = geti("count", 0);
            if (kv.count("src"))
                st.srcPort = p.names.at(kv["src"]);
            st.idxPattern.baseBytes = geti("idxbase", 0);
            st.idxPattern.stride1 = geti("idxstride", 1);
            st.idxPattern.len1 = geti("idxlen", 0);
            st.idxElemBytes = static_cast<int>(geti("idxelem", 8));
            st.idxPattern.elemBytes = st.idxElemBytes;
            if (kv.count("op"))
                st.updateOp = opFromName(kv["op"]);
            st.scalarFallback = geti("fallback", 0) != 0;
            p.region.addStream(st);
        } else {
            // Instruction: <name> = <op> operands... [attrs]
            DSA_ASSERT(toks.size() >= 3 && toks[1] == "=",
                       "malformed instruction line '", line, "'");
            OpCode op = opFromName(toks[2]);
            std::vector<Operand> operands;
            size_t i = 3;
            bool selfAcc = false;
            Value accInit = 0;
            int64_t accReset = 0;
            CtrlSpec ctrl;
            int width = 64;
            for (; i < toks.size(); ++i) {
                const std::string &t = toks[i];
                if (t == "acc") {
                    selfAcc = true;
                    continue;
                }
                auto eq = t.find('=');
                if (eq != std::string::npos && t[0] != '#') {
                    std::string key = t.substr(0, eq);
                    std::string val = t.substr(eq + 1);
                    if (key == "init")
                        accInit = static_cast<Value>(std::stoll(val));
                    else if (key == "reset")
                        accReset = std::stoll(val);
                    else if (key == "width")
                        width = std::stoi(val);
                    else if (key == "ctrl")
                        ctrl.source = val == "self"
                            ? CtrlSpec::Source::Self
                            : (ctrl.ctrlOperand =
                                   std::stoi(val.substr(2)),
                               CtrlSpec::Source::Operand);
                    else if (key == "pop0")
                        ctrl.popMask[0] = maskFromText(val);
                    else if (key == "pop1")
                        ctrl.popMask[1] = maskFromText(val);
                    else if (key == "pop2")
                        ctrl.popMask[2] = maskFromText(val);
                    else if (key == "emit")
                        ctrl.emitMask = maskFromText(val);
                    continue;
                }
                if (!t.empty())
                    operands.push_back(p.operand(t));
            }
            VertexId v;
            if (selfAcc) {
                DSA_ASSERT(operands.size() == 1,
                           "accumulator takes one operand");
                v = p.region.dfg.addAccumulator(op, operands[0], accInit,
                                                accReset, toks[0], width);
            } else if (ctrl.active()) {
                v = p.region.dfg.addPredicatedInstruction(
                    op, operands, ctrl, toks[0], width);
            } else {
                v = p.region.dfg.addInstruction(op, operands, toks[0],
                                                width);
            }
            p.names[toks[0]] = v;
        }
    }
    return p.region;
}

} // namespace dsa::dfg
