#include "dfg/stream.h"

#include "base/logging.h"

namespace dsa::dfg {

const char *
streamKindName(StreamKind kind)
{
    switch (kind) {
      case StreamKind::LinearRead: return "linear_read";
      case StreamKind::LinearWrite: return "linear_write";
      case StreamKind::IndirectRead: return "indirect_read";
      case StreamKind::IndirectWrite: return "indirect_write";
      case StreamKind::AtomicUpdate: return "atomic_update";
      case StreamKind::Const: return "const";
      case StreamKind::Recurrence: return "recurrence";
      case StreamKind::Iota: return "iota";
    }
    DSA_PANIC("bad stream kind");
}

int64_t
LinearPattern::numElements() const
{
    int64_t total = 0;
    for (int64_t i = 0; i < len2; ++i)
        total += std::max<int64_t>(0, len1 + i * len1Delta);
    return total;
}

std::vector<int64_t>
LinearPattern::expandAddrs() const
{
    // Hot in simulation setup (every issue re-expands its streams):
    // sized write-through instead of per-element push_back, with the
    // per-element multiply strength-reduced to an add.
    std::vector<int64_t> out(static_cast<size_t>(numElements()));
    const int64_t step = stride1 * elemBytes;
    size_t k = 0;
    for (int64_t i = 0; i < len2; ++i) {
        int64_t inner_len = len1 + i * len1Delta;
        int64_t a = baseBytes + (i * stride2 + i * start1Delta) * elemBytes;
        for (int64_t j = 0; j < inner_len; ++j, a += step)
            out[k++] = a;
    }
    return out;
}

LinearPattern
LinearPattern::contiguous(int64_t base_bytes, int64_t len, int elem_bytes)
{
    LinearPattern p;
    p.baseBytes = base_bytes;
    p.elemBytes = elem_bytes;
    p.stride1 = 1;
    p.len1 = len;
    return p;
}

LinearPattern
LinearPattern::strided1d(int64_t base_bytes, int64_t stride, int64_t len,
                         int elem_bytes)
{
    LinearPattern p;
    p.baseBytes = base_bytes;
    p.elemBytes = elem_bytes;
    p.stride1 = stride;
    p.len1 = len;
    return p;
}

bool
Stream::feedsInput() const
{
    switch (kind) {
      case StreamKind::LinearRead:
      case StreamKind::IndirectRead:
      case StreamKind::Const:
      case StreamKind::Recurrence:
      case StreamKind::Iota:
        return true;
      default:
        return false;
    }
}

bool
Stream::touchesMemory() const
{
    return kind != StreamKind::Const && kind != StreamKind::Recurrence &&
           kind != StreamKind::Iota;
}

bool
Stream::needsIndirect() const
{
    return kind == StreamKind::IndirectRead ||
           kind == StreamKind::IndirectWrite ||
           kind == StreamKind::AtomicUpdate;
}

bool
Stream::needsAtomic() const
{
    return kind == StreamKind::AtomicUpdate;
}

int64_t
Stream::numElements() const
{
    switch (kind) {
      case StreamKind::Const:
        return constCount;
      case StreamKind::Recurrence:
        return recurrenceCount;
      case StreamKind::Iota:
        return pattern.numElements();
      case StreamKind::IndirectRead:
      case StreamKind::IndirectWrite:
      case StreamKind::AtomicUpdate:
        return idxPattern.numElements();
      default:
        return pattern.numElements();
    }
}

int64_t
Stream::trafficBytes() const
{
    if (!touchesMemory())
        return 0;
    int64_t data = numElements() * pattern.elemBytes;
    if (needsIndirect())
        data += idxPattern.numElements() * idxElemBytes;
    if (kind == StreamKind::AtomicUpdate)
        data *= 2;  // read-modify-write at the banks
    return data;
}

} // namespace dsa::dfg
