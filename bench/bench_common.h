/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: building
 * named target accelerators, running the full compile/schedule/
 * simulate pipeline, and the "manually tuned" oracle of Fig. 10.
 */

#ifndef DSA_BENCH_BENCH_COMMON_H
#define DSA_BENCH_BENCH_COMMON_H

#include <cmath>
#include <string>

#include "adg/prebuilt.h"
#include "compiler/compile.h"
#include "mapper/scheduler.h"
#include "model/host_model.h"
#include "model/perf_model.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dsa::bench {

/** Build a Fig. 10 target accelerator by name (large-enough sizing). */
inline adg::Adg
buildTarget(const std::string &name)
{
    if (name == "softbrain")
        return adg::buildSoftbrain(5, 5);
    if (name == "maeri")
        return adg::buildMaeri(16);
    if (name == "triggered")
        return adg::buildTriggered(4, 4);
    if (name == "spu")
        return adg::buildSpu(5, 5);
    if (name == "revel")
        return adg::buildRevel(4, 4);
    return adg::buildDseInitial();
}

/** Outcome of one compile+schedule+simulate pipeline run. */
struct PipelineResult
{
    bool ok = false;
    std::string error;
    int64_t simCycles = 0;
    double estCycles = 0;
    double hostCycles = 0;
    int unroll = 1;
};

/**
 * Run the full flow for @p w on @p hw, trying every unroll version and
 * keeping the best *simulated* one (as the paper's compiler selects by
 * estimated performance, then reports simulation).
 */
inline PipelineResult
runPipeline(const workloads::Workload &w, const adg::Adg &hw,
            int schedIters, const compiler::CompileOptions &copts = {},
            const mapper::SchedOptions &schedBase = {},
            const sim::SimOptions &simOpts = {})
{
    PipelineResult best;
    auto golden = workloads::runGolden(w);
    best.hostCycles = model::estimateHostCycles(golden.stats);
    auto features = compiler::HwFeatures::fromAdg(hw);
    auto placement = compiler::Placement::autoLayout(w.kernel, features);

    for (int u : copts.unrollFactors) {
        auto lowered =
            compiler::lowerKernel(w.kernel, placement, features, copts, u);
        if (!lowered.ok) {
            if (best.error.empty())
                best.error = lowered.error;
            continue;
        }
        mapper::SchedOptions so = schedBase;
        so.maxIters = schedIters;
        auto sched =
            mapper::scheduleProgram(lowered.version.program, hw, so);
        if (!sched.cost.legal())
            continue;
        auto est = model::estimatePerformance(lowered.version.program,
                                              sched, hw);
        auto img =
            sim::MemImage::build(w.kernel, golden.initial, placement);
        auto res =
            sim::simulate(lowered.version.program, sched, hw, img,
                          simOpts);
        if (!res.ok)
            continue;
        ir::ArrayStore out = golden.initial;
        img.extract(w.kernel, placement, out);
        if (!workloads::checkOutputs(w, golden.final, out).empty())
            continue;
        if (!best.ok || res.cycles < best.simCycles) {
            best.ok = true;
            best.simCycles = res.cycles;
            best.estCycles = est.cycles;
            best.unroll = u;
        }
    }
    return best;
}

/**
 * The "manually tuned" oracle (see DESIGN.md §1): the same target
 * hardware driven as an expert would — a much larger scheduling
 * budget, hand-scheduled command code (lower per-command overhead),
 * and tighter scalar fallback loops.
 */
inline PipelineResult
runManualOracle(const workloads::Workload &w, adg::Adg hw, int schedIters)
{
    hw.control().cmdLatency = 1;
    hw.control().cmdIssueIpc = 4.0;
    sim::SimOptions simOpts;
    simOpts.scalarElementInterval = 2;
    mapper::SchedOptions so;
    so.seed = 101;
    return runPipeline(w, hw, std::min(6000, schedIters * 4), {}, so,
                       simOpts);
}

/**
 * Scheduling budget per workload: kernels that pack the fabric tightly
 * (or straddle the static/dynamic protocol boundary) need a longer
 * stochastic search, mirroring the paper's observation that spatial
 * scheduling is the slow step.
 */
inline int
schedBudgetFor(const std::string &workload)
{
    if (workload == "fft")
        return 4000;
    if (workload == "md" || workload == "stencil-2d" ||
        workload == "conv")
        return 2500;
    if (workload == "qr" || workload == "chol" ||
        workload == "sparse-cnn" || workload == "stencil-3d")
        return 1500;
    return 1000;
}

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double s = 0;
    for (double x : xs)
        s += std::log(std::max(1e-12, x));
    return std::exp(s / static_cast<double>(xs.size()));
}

} // namespace dsa::bench

#endif // DSA_BENCH_BENCH_COMMON_H
