/**
 * @file
 * Micro-benchmarks (google-benchmark): spatial-scheduler throughput —
 * from-scratch mapping vs repair after an incremental hardware change
 * (the mechanism that makes each DSE step cheap, §V-A).
 *
 * The `...Reference` variants run with `SchedOptions::incremental`
 * off, i.e. global usage/occupancy state recomputed from the schedule
 * at every use point — the historical hot-loop behavior — so the
 * speedup of the incremental bookkeeping is measurable in one binary.
 *
 * Emits machine-readable results via the standard google-benchmark
 * flags; `scripts/bench_sched.sh` stores them as BENCH_scheduler.json.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

using namespace dsa;

namespace {

struct Fixture
{
    adg::Adg hw = adg::buildDseInitial();
    dfg::DecoupledProgram prog;
    mapper::Schedule seed;

    explicit Fixture(const std::string &workload)
    {
        auto features = compiler::HwFeatures::fromAdg(hw);
        const auto &w = workloads::workload(workload);
        auto placement =
            compiler::Placement::autoLayout(w.kernel, features);
        auto r = compiler::lowerKernel(w.kernel, placement, features, {},
                                       1);
        prog = r.version.program;
        seed = mapper::scheduleProgram(prog, hw,
                                       {.maxIters = 600, .seed = 3});
    }
};

void
BM_ScheduleFromScratch(benchmark::State &state,
                       const std::string &workload, bool incremental)
{
    Fixture f(workload);
    uint64_t seed = 1;
    for (auto _ : state) {
        auto s = mapper::scheduleProgram(f.prog, f.hw,
                                         {.maxIters = 100,
                                          .seed = seed++,
                                          .incremental = incremental});
        benchmark::DoNotOptimize(s.cost.scalar());
    }
}

void
BM_ScheduleRepair(benchmark::State &state, const std::string &workload,
                  bool incremental)
{
    Fixture f(workload);
    // Remove one PE so the repair has real (but small) work to do.
    adg::Adg mutated = f.hw;
    adg::NodeId victim = adg::kInvalidNode;
    for (const auto &vx : f.prog.regions[0].dfg.vertices())
        if (vx.kind == dfg::VertexKind::Instruction)
            victim = f.seed.regions[0].vertexMap[vx.id];
    if (victim != adg::kInvalidNode)
        mutated.removeNode(victim);
    for (auto _ : state) {
        mapper::SpatialScheduler sch(f.prog, mutated,
                                     {.maxIters = 100,
                                      .seed = 5,
                                      .incremental = incremental});
        auto s = sch.run(&f.seed);
        benchmark::DoNotOptimize(s.cost.scalar());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_ScheduleFromScratch, crs, std::string("crs"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleFromScratch, mm, std::string("mm"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleFromScratch, conv, std::string("conv"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleRepair, crs, std::string("crs"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleRepair, mm, std::string("mm"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleRepair, conv, std::string("conv"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleFromScratch, crs_reference,
                  std::string("crs"), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleFromScratch, conv_reference,
                  std::string("conv"), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScheduleRepair, conv_reference, std::string("conv"),
                  false)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
