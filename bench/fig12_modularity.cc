/**
 * @file
 * Fig. 12: impact of modular compilation features on performance.
 * Baseline: a 4x4 mesh of dedicated static PEs with a 64-bit network
 * and a 512-bit-wide scratchpad. Three features toggle independently:
 *   shared   - four PEs become shared (temporal) PEs;
 *   dynamic  - half the PEs (and the network) become dynamic with
 *              stream-join control;
 *   indirect - the scratchpad gains banked indirect/atomic controllers.
 * Each combination is compiled with the matching feature gates; the
 * table reports geomean performance per suite relative to the 0/0/0
 * baseline. Paper: PolyBench flat, DSP needs shared, Sparse needs
 * dynamic+indirect; all-on is best overall.
 */

#include <cstdio>

#include "adg/builders.h"
#include "base/table.h"
#include "bench/bench_common.h"

using namespace dsa;
using namespace dsa::bench;

namespace {

adg::Adg
buildVariant(bool shared, bool dynamic, bool indirect)
{
    adg::MeshConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.pe.ops = OpSet::all();
    if (dynamic)
        cfg.sw.sched = adg::Scheduling::Dynamic;
    adg::Adg g = adg::buildMesh(cfg);
    for (adg::NodeId id : g.aliveNodes(adg::NodeKind::Pe)) {
        auto &n = g.node(id);
        if (dynamic && (n.row + n.col) % 2 == 1) {
            n.pe().sched = adg::Scheduling::Dynamic;
            n.pe().streamJoin = true;
        }
        if (shared && n.row == 0) {
            n.pe().sharing = adg::Sharing::Shared;
            n.pe().maxInsts = 8;
        }
    }
    if (indirect) {
        for (adg::NodeId id : g.aliveNodes(adg::NodeKind::Memory)) {
            auto &mem = g.node(id).mem();
            if (mem.kind == adg::MemKind::Scratchpad) {
                mem.indirect = true;
                mem.atomicUpdate = true;
                mem.numBanks = 8;
            }
        }
    }
    return g;
}

/** Estimated performance (1/cycles) of the best legal version; a
 *  kernel that cannot map falls back to host execution. */
double
estPerf(const workloads::Workload &w, const adg::Adg &hw, bool shared,
        bool dynamic, bool indirect)
{
    compiler::CompileOptions copts;
    copts.enableStreamJoin = dynamic;
    copts.enableIndirect = indirect;
    copts.enableShared = shared;
    copts.unrollFactors = {1, 4};
    auto features = compiler::HwFeatures::fromAdg(hw);
    auto placement = compiler::Placement::autoLayout(w.kernel, features);
    double best = 0;
    for (int u : copts.unrollFactors) {
        auto r = compiler::lowerKernel(w.kernel, placement, features,
                                       copts, u);
        if (!r.ok)
            continue;
        mapper::SchedOptions so;
        so.maxIters = bench::schedBudgetFor(w.name);
        so.seed = 31;
        so.allowShared = shared;
        auto sched = mapper::scheduleProgram(r.version.program, hw, so);
        if (!sched.cost.legal())
            continue;
        auto est = model::estimatePerformance(r.version.program, sched,
                                              hw);
        best = std::max(best, 1.0 / est.cycles);
    }
    if (best == 0) {
        auto golden = workloads::runGolden(w);
        best = 1.0 / model::estimateHostCycles(golden.stats);
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("== Fig. 12: Modular Compilation Impact "
                "(shared/dynamic/indirect) ==\n\n");
    const char *suites[] = {"MachSuite", "Sparse", "Dsp", "PolyBench"};
    // Per-suite per-combo geomean performance.
    double perf[8][4];
    for (int combo = 0; combo < 8; ++combo) {
        bool shared = combo & 1, dynamic = combo & 2, indirect = combo & 4;
        adg::Adg hw = buildVariant(shared, dynamic, indirect);
        for (int si = 0; si < 4; ++si) {
            std::vector<double> vals;
            for (const auto *w : workloads::suiteWorkloads(suites[si])) {
                double p = estPerf(*w, hw, shared, dynamic, indirect);
                vals.push_back(std::max(p, 1e-12));
            }
            perf[combo][si] = geomean(vals);
        }
    }
    Table t({"shared", "dynamic", "indirect", "MachSuite", "Sparse",
             "Dsp", "PolyBench"});
    for (int combo = 0; combo < 8; ++combo) {
        std::vector<std::string> row = {
            std::to_string(combo & 1 ? 1 : 0),
            std::to_string(combo & 2 ? 1 : 0),
            std::to_string(combo & 4 ? 1 : 0)};
        for (int si = 0; si < 4; ++si)
            row.push_back(Table::fmt(
                perf[combo][si] / std::max(1e-12, perf[0][si]), 2));
        t.addRow(row);
    }
    t.print();
    std::printf("\n(values are geomean performance relative to the "
                "all-features-off baseline)\n");
    return 0;
}
