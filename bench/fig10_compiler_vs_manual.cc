/**
 * @file
 * Fig. 10: compiler versus manually-tuned performance. Each workload
 * runs on the accelerator it targets (Softbrain / MAERI / Triggered /
 * SPU / REVEL); the compiled version is produced by the modular
 * compiler with default budgets, the "manual" version by the expert
 * oracle (larger schedule budget + hand-tuned command code; see
 * DESIGN.md §1). The paper reports the compiler at 80-89% of manual
 * with fft as the ~2x outlier.
 */

#include <cstdio>

#include "base/table.h"
#include "bench/bench_common.h"

using namespace dsa;
using namespace dsa::bench;

int
main()
{
    std::printf("== Fig. 10: Compiler vs Manually-Tuned Performance ==\n\n");
    Table t({"workload", "target", "compiler cycles", "manual cycles",
             "compiler/manual perf", "speedup vs host (compiler)"});
    std::vector<double> ratios;
    for (const auto &w : workloads::allWorkloads()) {
        if (w.suite == "Extra" || w.suite == "DenseNN" ||
            w.suite == "SparseCNN")
            continue;  // Fig. 10 covers the Table-I kernels
        adg::Adg hw = buildTarget(w.fig10Target);
        int iters = schedBudgetFor(w.name);
        auto compiled = runPipeline(w, hw, iters);
        auto manual = runManualOracle(w, hw, iters);
        if (!compiled.ok || !manual.ok) {
            t.addRow({w.name, w.fig10Target,
                      compiled.ok ? std::to_string(compiled.simCycles)
                                  : "fail: " + compiled.error,
                      manual.ok ? std::to_string(manual.simCycles)
                                : "fail",
                      "-", "-"});
            continue;
        }
        double relPerf = static_cast<double>(manual.simCycles) /
                         static_cast<double>(compiled.simCycles);
        ratios.push_back(relPerf);
        t.addRow({w.name, w.fig10Target,
                  std::to_string(compiled.simCycles),
                  std::to_string(manual.simCycles),
                  Table::fmt(relPerf, 2),
                  Table::fmt(compiled.hostCycles /
                                 static_cast<double>(compiled.simCycles),
                             2)});
    }
    t.print();
    std::printf("\ngeomean compiler/manual performance: %.2f "
                "(paper: ~0.80-0.89)\n",
                geomean(ratios));
    return 0;
}
