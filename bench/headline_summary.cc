/**
 * @file
 * Headline results (§VIII bullets): the compiler's fraction of
 * manually-tuned performance, the DSE's area savings, and the
 * perf^2/mm^2 of generated designs versus the prior programmable
 * accelerators each workload set targets. Paper: ~80-89% of manual,
 * 42% area/power saved, mean ~1.3x perf^2/mm^2.
 */

#include <cstdio>

#include "base/table.h"
#include "bench/bench_common.h"
#include "dse/explorer.h"
#include "model/regression.h"

using namespace dsa;
using namespace dsa::bench;

namespace {

/** Geomean estimated speedup of a workload set on given hardware. */
double
setPerf(const std::vector<const workloads::Workload *> &set,
        const adg::Adg &hw, int schedIters)
{
    std::vector<double> speedups;
    for (const auto *w : set) {
        auto r = runPipeline(*w, hw, schedIters);
        speedups.push_back(
            r.ok ? r.hostCycles / static_cast<double>(r.simCycles)
                 : 0.01);
    }
    return geomean(speedups);
}

} // namespace

int
main()
{
    std::printf("== Headline Results ==\n\n");

    // 1. Compiler vs manual (quick subset).
    std::vector<double> ratios;
    for (const char *name : {"crs", "mm", "histogram", "join",
                             "classifier", "chol"}) {
        const auto &w = workloads::workload(name);
        adg::Adg hw = buildTarget(w.fig10Target);
        auto compiled = runPipeline(w, hw, 900);
        auto manual = runManualOracle(w, hw, 900);
        if (compiled.ok && manual.ok)
            ratios.push_back(static_cast<double>(manual.simCycles) /
                             compiled.simCycles);
    }
    std::printf("1. compiler reaches %.0f%% of manually-tuned "
                "performance (paper: ~80-89%%)\n",
                100 * geomean(ratios));

    // 2+3. DSE savings and perf^2/mm^2 vs prior accelerators.
    const auto &m = model::AreaPowerModel::instance();
    struct SetCfg
    {
        const char *suite;
        const char *rival;  // prior programmable accelerator
    };
    double saveSum = 0, objRatioSum = 0;
    int n = 0;
    Table t({"workload set", "DSAGEN area", "rival", "rival area",
             "DSAGEN perf^2/mm^2", "rival perf^2/mm^2", "ratio"});
    for (SetCfg cfg : {SetCfg{"MachSuite", "softbrain"},
                       SetCfg{"DenseNN", "softbrain"},
                       SetCfg{"SparseCNN", "spu"}}) {
        auto set = workloads::suiteWorkloads(cfg.suite);
        dse::DseOptions opts;
        opts.maxIters = 260;
        opts.noImproveExit = 140;
        opts.schedIters = 40;
        opts.unrollFactors = {1, 4};
        opts.seed = 77;
        dse::Explorer ex(set, opts);
        auto res = ex.run(adg::buildDseInitial());
        saveSum += 1.0 - res.bestCost.areaMm2 / res.initialCost.areaMm2;

        adg::Adg rival = buildTarget(cfg.rival);
        double rivalPerf = setPerf(set, rival, 900);
        double rivalArea = m.fabric(rival).areaMm2;
        double dsagenPerf = setPerf(set, res.best, 1500);
        double dsagenArea = res.bestCost.areaMm2;
        double dsagenObj = dsagenPerf * dsagenPerf / dsagenArea;
        double rivalObj = rivalPerf * rivalPerf / rivalArea;
        double ratio = dsagenObj / std::max(1e-9, rivalObj);
        objRatioSum += ratio;
        ++n;
        t.addRow({cfg.suite, Table::fmt(dsagenArea, 3), cfg.rival,
                  Table::fmt(rivalArea, 3), Table::fmt(dsagenObj, 2),
                  Table::fmt(rivalObj, 2), Table::fmt(ratio, 2) + "x"});
    }
    std::printf("2. DSE saves mean %.0f%% area over the initial "
                "hardware (paper: 42%%)\n",
                100 * saveSum / n);
    std::printf("3. generated hardware perf^2/mm^2 vs prior "
                "programmable accelerators (paper: mean ~1.3x):\n\n");
    t.print();
    std::printf("\nmean perf^2/mm^2 ratio: %.2fx\n", objRatioSum / n);
    return 0;
}
