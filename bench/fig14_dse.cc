/**
 * @file
 * Fig. 14: automated design-space exploration. Three DSE runs start
 * from the same full-capability 5x4 mesh: MachSuite, DenseNN (conv /
 * pool / classifier), and SparseCNN. For each run the harness prints
 * the area/power/objective trajectory and the final summary. The paper
 * reports mean 42% area saved and ~12x objective improvement over the
 * initial hardware.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/table.h"
#include "base/thread_pool.h"
#include "bench/bench_common.h"
#include "dse/explorer.h"

using namespace dsa;

int
main(int argc, char **argv)
{
    // fig14_dse [threads] [batch]: evaluation parallelism. The
    // explored designs and the whole accepted-design trace are
    // identical for any thread count (per-task hashed seeds +
    // fixed-order reductions); only wall-clock changes.
    int threads = argc > 1 ? std::atoi(argv[1]) : 1;
    int batch = argc > 2 ? std::atoi(argv[2]) : 1;
    if (threads <= 0)
        threads = ThreadPool::hardwareThreads();

    std::printf("== Fig. 14: Automated Design Space Exploration "
                "(%d threads, batch %d) ==\n",
                threads, batch);
    struct Run
    {
        const char *label;
        const char *suite;
    };
    Run runs[] = {{"DSAGEN_MachSuite", "MachSuite"},
                  {"DSAGEN_DenseNN", "DenseNN"},
                  {"DSAGEN_SparseCNN", "SparseCNN"}};

    double areaSaveSum = 0, objGainSum = 0, secondsTotal = 0;
    for (const auto &run : runs) {
        dse::DseOptions opts;
        opts.maxIters = 400;
        opts.noImproveExit = 200;
        opts.schedIters = 40;
        opts.unrollFactors = {1, 4};
        opts.seed = 97;
        opts.threads = threads;
        opts.candidateBatch = batch;
        dse::Explorer ex(workloads::suiteWorkloads(run.suite), opts);
        auto t0 = std::chrono::steady_clock::now();
        auto res = ex.run(adg::buildDseInitial());
        double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        secondsTotal += seconds;

        std::printf("\n-- %s (%s workloads) --\n", run.label, run.suite);
        Table t({"iteration", "area (mm^2)", "power (mW)", "perf",
                 "objective", "accepted"});
        int step = std::max<size_t>(1, res.history.size() / 16);
        for (size_t i = 0; i < res.history.size(); i += step) {
            const auto &h = res.history[i];
            t.addRow({std::to_string(h.iter), Table::fmt(h.areaMm2, 3),
                      Table::fmt(h.powerMw, 1), Table::fmt(h.perf, 2),
                      Table::fmt(h.objective, 3),
                      h.accepted ? "yes" : "no"});
        }
        t.print();

        double areaSave =
            1.0 - res.bestCost.areaMm2 / res.initialCost.areaMm2;
        double objGain =
            res.bestObjective / std::max(1e-9, res.initialObjective);
        areaSaveSum += areaSave;
        objGainSum += objGain;
        std::printf("%s: area %.3f -> %.3f mm^2 (%.0f%% saved), "
                    "power %.1f -> %.1f mW, objective %.3f -> %.3f "
                    "(%.1fx), %.1f s wall\n",
                    run.label, res.initialCost.areaMm2,
                    res.bestCost.areaMm2, 100 * areaSave,
                    res.initialCost.powerMw, res.bestCost.powerMw,
                    res.initialObjective, res.bestObjective, objGain,
                    seconds);

        // Persist the explored design for the Fig. 15 comparison.
        std::string path =
            std::string("dse_") + run.suite + ".adg";
        FILE *f = std::fopen(path.c_str(), "w");
        if (f) {
            std::string text = res.best.toText();
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::printf("(design written to %s)\n", path.c_str());
        }
    }
    std::printf("\nmean area saved: %.0f%% (paper: 42%%), "
                "mean objective gain: %.1fx (paper: ~12x), "
                "total DSE wall-clock %.1f s\n",
                100 * areaSaveSum / 3, objGainSum / 3, secondsTotal);
    return 0;
}
