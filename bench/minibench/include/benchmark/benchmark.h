/**
 * @file
 * Minimal vendored replacement for the google-benchmark API surface
 * the bench/ binaries use — registration (BENCHMARK_CAPTURE), the
 * State range-for protocol, SkipWithError, user counters (incl. rate
 * counters), time units, repetitions with mean/median/stddev/cv
 * aggregates, console output, and google-benchmark-format JSON via
 * --benchmark_out.
 *
 * Why vendored: committed BENCH_*.json files must come from optimized
 * code, but the *system* libbenchmark is prebuilt (often without
 * NDEBUG) and reports `library_build_type` for itself, not for the
 * measurement loop that actually matters. This header compiles into
 * the benchmark binary with the binary's own flags, so the recorded
 * `library_build_type` is the truth about the timing harness: it says
 * "release" exactly when the benchmark translation unit was built
 * with NDEBUG. scripts/bench_*.sh refuse to commit a recording whose
 * `library_build_type` is not "release".
 *
 * Flags honored (others are accepted and ignored):
 *   --benchmark_filter=<substring-or-regex>
 *   --benchmark_repetitions=<n>
 *   --benchmark_report_aggregates_only={true,false}
 *   --benchmark_min_time=<seconds>s
 *   --benchmark_context=key=value            (repeatable)
 *   --benchmark_out=<path>
 *   --benchmark_out_format=json
 */

#ifndef DSA_BENCH_MINIBENCH_BENCHMARK_H
#define DSA_BENCH_MINIBENCH_BENCHMARK_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

inline const char *
timeUnitString(TimeUnit u)
{
    switch (u) {
      case kNanosecond: return "ns";
      case kMicrosecond: return "us";
      case kMillisecond: return "ms";
      case kSecond: return "s";
    }
    return "ns";
}

inline double
timeUnitScale(TimeUnit u) // nanoseconds per unit
{
    switch (u) {
      case kNanosecond: return 1.0;
      case kMicrosecond: return 1e3;
      case kMillisecond: return 1e6;
      case kSecond: return 1e9;
    }
    return 1.0;
}

class Counter
{
  public:
    enum Flags : uint32_t {
        kDefaults = 0,
        /** Normalize by the repetition's wall seconds when reported. */
        kIsRate = 1u << 0,
    };
    double value = 0.0;
    Flags flags = kDefaults;

    Counter() = default;
    Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}
    operator double() const { return value; }
};

using UserCounters = std::map<std::string, Counter>;

template <class T>
inline void
DoNotOptimize(T const &v)
{
    asm volatile("" : : "r,m"(v) : "memory");
}

template <class T>
inline void
DoNotOptimize(T &v)
{
    asm volatile("" : "+r,m"(v) : : "memory");
}

inline void
ClobberMemory()
{
    asm volatile("" : : : "memory");
}

/** One measurement pass over a benchmark function. */
class State
{
  public:
    explicit State(int64_t maxIters) : maxIters_(maxIters) {}

    class iterator
    {
      public:
        struct Value
        {
            // Non-trivial destructor so `for (auto _ : state)` doesn't
            // warn about the unused binding under
            // -Wunused-but-set-variable (gcc only suppresses the
            // warning for types with non-trivial destruction).
            ~Value() {}
        };
        iterator() = default;
        explicit iterator(State *s)
            : s_(s), remaining_(s ? s->maxIters_ : 0)
        {
        }
        Value operator*() const { return Value{}; }
        iterator &
        operator++()
        {
            --remaining_;
            return *this;
        }
        bool
        operator!=(const iterator &) const
        {
            if (remaining_ > 0 && !s_->skipped_)
                return true;
            s_->finishTiming();
            return false;
        }

      private:
        State *s_ = nullptr;
        int64_t remaining_ = 0;
    };

    iterator
    begin()
    {
        startTiming();
        return iterator(this);
    }
    iterator end() { return iterator(); }

    void
    SkipWithError(const char *msg)
    {
        skipped_ = true;
        error_ = msg ? msg : "skipped";
    }
    bool skipped() const { return skipped_; }
    const std::string &errorMessage() const { return error_; }

    int64_t iterations() const { return maxIters_; }
    int64_t max_iterations() const { return maxIters_; }

    /** Wall nanoseconds spent inside the timed loop. */
    double elapsedNs() const { return elapsedNs_; }
    /** Process-CPU nanoseconds spent inside the timed loop. */
    double cpuNs() const { return cpuNs_; }

    UserCounters counters;

  private:
    static double
    cpuNowNs()
    {
        timespec ts;
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) * 1e9 +
               static_cast<double>(ts.tv_nsec);
    }

    void
    startTiming()
    {
        wallStart_ = std::chrono::steady_clock::now();
        cpuStart_ = cpuNowNs();
        timing_ = true;
    }
    void
    finishTiming()
    {
        if (!timing_)
            return;
        timing_ = false;
        elapsedNs_ = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - wallStart_)
                         .count();
        cpuNs_ = cpuNowNs() - cpuStart_;
    }

    int64_t maxIters_ = 1;
    bool skipped_ = false;
    bool timing_ = false;
    std::string error_;
    std::chrono::steady_clock::time_point wallStart_{};
    double cpuStart_ = 0;
    double elapsedNs_ = 0;
    double cpuNs_ = 0;
};

/** One registered benchmark (name + function + reporting unit). */
class Benchmark
{
  public:
    Benchmark(std::string name, std::function<void(State &)> fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {
    }
    Benchmark *
    Unit(TimeUnit u)
    {
        unit_ = u;
        return this;
    }
    /** Accepted for API compatibility; iteration count is auto-tuned. */
    Benchmark *
    Iterations(int64_t n)
    {
        fixedIters_ = n;
        return this;
    }
    Benchmark *
    Repetitions(int n)
    {
        repetitions_ = n;
        return this;
    }

    const std::string &name() const { return name_; }
    TimeUnit unit() const { return unit_; }
    int64_t fixedIters() const { return fixedIters_; }
    int repetitionOverride() const { return repetitions_; }
    void run(State &st) const { fn_(st); }

  private:
    std::string name_;
    std::function<void(State &)> fn_;
    TimeUnit unit_ = kNanosecond;
    int64_t fixedIters_ = 0; ///< 0 = auto
    int repetitions_ = 0;    ///< 0 = use the global flag
};

namespace internal {

inline std::vector<std::unique_ptr<Benchmark>> &
registry()
{
    static std::vector<std::unique_ptr<Benchmark>> r;
    return r;
}

struct Flags
{
    std::string filter;
    int repetitions = 1;
    bool aggregatesOnly = false;
    double minTimeS = 0.5;
    std::vector<std::pair<std::string, std::string>> context;
    std::string outPath;
    std::string outFormat = "json";
};

inline Flags &
flags()
{
    static Flags f;
    return f;
}

inline std::string &
executableName()
{
    static std::string n = "benchmark";
    return n;
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    // Integral values print as integers (matches google-benchmark).
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** One reported row (an iteration run or an aggregate of them). */
struct Row
{
    std::string name;
    std::string runName;
    std::string runType;       ///< "iteration" | "aggregate"
    std::string aggregateName; ///< "" unless aggregate
    std::string aggregateUnit; ///< "time" | "percentage"
    int familyIndex = 0;
    int repetitions = 1;
    int repetitionIndex = 0;
    int64_t iterations = 0;
    double realTime = 0; ///< per-iteration, in `unit`
    double cpuTime = 0;  ///< per-iteration, in `unit`
    TimeUnit unit = kNanosecond;
    bool error = false;
    std::string errorMessage;
    std::vector<std::pair<std::string, double>> counters;
};

/** Result of one measured repetition. */
struct RepResult
{
    double realNs = 0; ///< per-iteration
    double cpuNs = 0;  ///< per-iteration
    int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
};

inline RepResult
runOnce(const Benchmark &b, int64_t iters, bool *skipped,
        std::string *error)
{
    State st(iters);
    b.run(st);
    RepResult r;
    r.iterations = iters;
    if (st.skipped()) {
        *skipped = true;
        *error = st.errorMessage();
        return r;
    }
    r.realNs = st.elapsedNs() / static_cast<double>(iters);
    r.cpuNs = st.cpuNs() / static_cast<double>(iters);
    double wallS = st.elapsedNs() / 1e9;
    for (const auto &[k, c] : st.counters) {
        double v = c.value;
        if ((c.flags & Counter::kIsRate) && wallS > 0)
            v /= wallS;
        r.counters.emplace_back(k, v);
    }
    return r;
}

inline double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0 : s / static_cast<double>(v.size());
}

inline double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0;
    double m = mean(v), s = 0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

inline void
emitAggregates(const Benchmark &b, int familyIdx,
               const std::vector<RepResult> &reps, int repetitions,
               std::vector<Row> &rows)
{
    std::vector<double> real, cpu;
    std::map<std::string, std::vector<double>> ctr;
    for (const RepResult &r : reps) {
        real.push_back(r.realNs);
        cpu.push_back(r.cpuNs);
        for (const auto &[k, v] : r.counters)
            ctr[k].push_back(v);
    }
    struct Agg
    {
        const char *name;
        const char *unit;
        std::function<double(const std::vector<double> &)> f;
    };
    const Agg aggs[] = {
        {"mean", "time", [](const std::vector<double> &v) { return mean(v); }},
        {"median", "time", [](const std::vector<double> &v) { return median(v); }},
        {"stddev", "time", [](const std::vector<double> &v) { return stddev(v); }},
        {"cv", "percentage",
         [](const std::vector<double> &v) {
             double m = mean(v);
             return m != 0 ? stddev(v) / m : 0.0;
         }},
    };
    for (const Agg &a : aggs) {
        Row row;
        row.runName = b.name();
        row.name = b.name() + "_" + a.name;
        row.runType = "aggregate";
        row.aggregateName = a.name;
        row.aggregateUnit = a.unit;
        row.familyIndex = familyIdx;
        row.repetitions = repetitions;
        row.iterations = static_cast<int64_t>(reps.size());
        row.unit = b.unit();
        double scale = std::strcmp(a.name, "cv") == 0
                           ? 1.0
                           : 1.0 / timeUnitScale(b.unit());
        row.realTime = a.f(real) * scale;
        row.cpuTime = a.f(cpu) * scale;
        for (auto &[k, vs] : ctr)
            row.counters.emplace_back(k, a.f(vs));
        rows.push_back(std::move(row));
    }
}

inline void
printConsole(const std::vector<Row> &rows)
{
    size_t w = 40;
    for (const Row &r : rows)
        w = std::max(w, r.name.size() + 2);
    std::printf("%-*s %15s %15s %12s\n", static_cast<int>(w),
                "Benchmark", "Time", "CPU", "Iterations");
    std::printf("%s\n", std::string(w + 46, '-').c_str());
    for (const Row &r : rows) {
        if (r.error) {
            std::printf("%-*s ERROR: %s\n", static_cast<int>(w),
                        r.name.c_str(), r.errorMessage.c_str());
            continue;
        }
        const char *u = timeUnitString(r.unit);
        std::printf("%-*s %12.3g %s %12.3g %s %12lld", static_cast<int>(w),
                    r.name.c_str(), r.realTime, u, r.cpuTime, u,
                    static_cast<long long>(r.iterations));
        for (const auto &[k, v] : r.counters)
            std::printf(" %s=%.4g", k.c_str(), v);
        std::printf("\n");
    }
    std::fflush(stdout);
}

inline void
writeJson(const std::vector<Row> &rows)
{
    const Flags &f = flags();
    if (f.outPath.empty())
        return;
    std::FILE *out = std::fopen(f.outPath.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "minibench: cannot open %s\n",
                     f.outPath.c_str());
        return;
    }
    char host[256] = "unknown";
    gethostname(host, sizeof host - 1);
    char date[64];
    std::time_t now = std::time(nullptr);
    std::tm tmv{};
    localtime_r(&now, &tmv);
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z", &tmv);

    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", date);
    std::fprintf(out, "    \"host_name\": \"%s\",\n",
                 jsonEscape(host).c_str());
    std::fprintf(out, "    \"executable\": \"%s\",\n",
                 jsonEscape(executableName()).c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"mhz_per_cpu\": 0,\n");
    std::fprintf(out, "    \"cpu_scaling_enabled\": false,\n");
    std::fprintf(out, "    \"caches\": [\n    ],\n");
    std::fprintf(out, "    \"load_avg\": [],\n");
    for (const auto &[k, v] : f.context)
        std::fprintf(out, "    \"%s\": \"%s\",\n",
                     jsonEscape(k).c_str(), jsonEscape(v).c_str());
    // The honest bit: this header was compiled into the benchmark
    // binary itself, so NDEBUG here describes the timing harness.
#ifdef NDEBUG
    std::fprintf(out, "    \"library_build_type\": \"release\"\n");
#else
    std::fprintf(out, "    \"library_build_type\": \"debug\"\n");
#endif
    std::fprintf(out, "  },\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(out, "    {\n");
        std::fprintf(out, "      \"name\": \"%s\",\n",
                     jsonEscape(r.name).c_str());
        std::fprintf(out, "      \"family_index\": %d,\n",
                     r.familyIndex);
        std::fprintf(out, "      \"per_family_instance_index\": 0,\n");
        std::fprintf(out, "      \"run_name\": \"%s\",\n",
                     jsonEscape(r.runName).c_str());
        std::fprintf(out, "      \"run_type\": \"%s\",\n",
                     r.runType.c_str());
        std::fprintf(out, "      \"repetitions\": %d,\n", r.repetitions);
        if (r.runType == "iteration")
            std::fprintf(out, "      \"repetition_index\": %d,\n",
                         r.repetitionIndex);
        std::fprintf(out, "      \"threads\": 1,\n");
        if (!r.aggregateName.empty()) {
            std::fprintf(out, "      \"aggregate_name\": \"%s\",\n",
                         r.aggregateName.c_str());
            std::fprintf(out, "      \"aggregate_unit\": \"%s\",\n",
                         r.aggregateUnit.c_str());
        }
        if (r.error) {
            std::fprintf(out, "      \"error_occurred\": true,\n");
            std::fprintf(out, "      \"error_message\": \"%s\",\n",
                         jsonEscape(r.errorMessage).c_str());
        }
        std::fprintf(out, "      \"iterations\": %lld,\n",
                     static_cast<long long>(r.iterations));
        std::fprintf(out, "      \"real_time\": %s,\n",
                     jsonNumber(r.realTime).c_str());
        std::fprintf(out, "      \"cpu_time\": %s,\n",
                     jsonNumber(r.cpuTime).c_str());
        for (const auto &[k, v] : r.counters)
            std::fprintf(out, "      \"%s\": %s,\n",
                         jsonEscape(k).c_str(), jsonNumber(v).c_str());
        std::fprintf(out, "      \"time_unit\": \"%s\"\n",
                     timeUnitString(r.unit));
        std::fprintf(out, "    }%s\n",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

} // namespace internal

inline Benchmark *
RegisterBenchmark(const std::string &name,
                  std::function<void(State &)> fn)
{
    internal::registry().push_back(
        std::make_unique<Benchmark>(name, std::move(fn)));
    return internal::registry().back().get();
}

inline void
Initialize(int *argc, char **argv)
{
    internal::Flags &f = internal::flags();
    if (*argc > 0)
        internal::executableName() = argv[0];
    int keep = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n
                                                : nullptr;
        };
        if (const char *v = val("--benchmark_filter=")) {
            f.filter = v;
        } else if (const char *v = val("--benchmark_repetitions=")) {
            f.repetitions = std::max(1, std::atoi(v));
        } else if (const char *v =
                       val("--benchmark_report_aggregates_only=")) {
            f.aggregatesOnly = std::strcmp(v, "true") == 0 ||
                               std::strcmp(v, "1") == 0;
        } else if (const char *v = val("--benchmark_min_time=")) {
            f.minTimeS = std::max(0.0, std::atof(v));
        } else if (const char *v = val("--benchmark_context=")) {
            std::string kv = v;
            size_t eq = kv.find('=');
            if (eq != std::string::npos)
                f.context.emplace_back(kv.substr(0, eq),
                                       kv.substr(eq + 1));
        } else if (const char *v = val("--benchmark_out_format=")) {
            f.outFormat = v;
        } else if (const char *v = val("--benchmark_out=")) {
            f.outPath = v;
        } else if (a.rfind("--benchmark", 0) == 0) {
            // Unknown benchmark flag: accept and ignore.
        } else {
            argv[keep++] = argv[i];
            continue;
        }
    }
    *argc = keep;
}

inline bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        std::fprintf(stderr, "minibench: unrecognized argument '%s'\n",
                     argv[i]);
    return argc > 1;
}

inline void
RunSpecifiedBenchmarks()
{
    const internal::Flags &f = internal::flags();
    std::vector<internal::Row> rows;
    int familyIdx = -1;
    for (const auto &bp : internal::registry()) {
        const Benchmark &b = *bp;
        ++familyIdx;
        if (!f.filter.empty()) {
            bool match = false;
            try {
                match = std::regex_search(b.name(),
                                          std::regex(f.filter));
            } catch (const std::regex_error &) {
                match = b.name().find(f.filter) != std::string::npos;
            }
            if (!match)
                continue;
        }
        int reps = b.repetitionOverride() > 0 ? b.repetitionOverride()
                                              : f.repetitions;
        bool skipped = false;
        std::string error;

        // Auto-tune the iteration count until one run spans minTime
        // (google-benchmark's scheme, simplified).
        int64_t iters = b.fixedIters() > 0 ? b.fixedIters() : 1;
        internal::RepResult probe =
            internal::runOnce(b, iters, &skipped, &error);
        if (b.fixedIters() == 0) {
            while (!skipped) {
                double total = probe.realNs * static_cast<double>(iters);
                if (total >= f.minTimeS * 1e9 || iters >= (1 << 28))
                    break;
                double perIter = std::max(1.0, probe.realNs);
                int64_t want = static_cast<int64_t>(
                    f.minTimeS * 1e9 / perIter * 1.4);
                iters = std::min<int64_t>(
                    std::max<int64_t>(want, iters + 1), 1 << 28);
                probe = internal::runOnce(b, iters, &skipped, &error);
            }
        }
        if (skipped) {
            internal::Row row;
            row.name = b.name();
            row.runName = b.name();
            row.runType = "iteration";
            row.familyIndex = familyIdx;
            row.repetitions = reps;
            row.unit = b.unit();
            row.error = true;
            row.errorMessage = error;
            rows.push_back(std::move(row));
            continue;
        }

        std::vector<internal::RepResult> results;
        results.push_back(probe); // the tuned run counts as rep 0
        for (int r = 1; r < reps && !skipped; ++r)
            results.push_back(
                internal::runOnce(b, iters, &skipped, &error));

        if (reps == 1 || !f.aggregatesOnly) {
            for (size_t r = 0; r < results.size(); ++r) {
                const internal::RepResult &rr = results[r];
                internal::Row row;
                row.name = b.name();
                row.runName = b.name();
                row.runType = "iteration";
                row.familyIndex = familyIdx;
                row.repetitions = reps;
                row.repetitionIndex = static_cast<int>(r);
                row.iterations = rr.iterations;
                row.unit = b.unit();
                row.realTime = rr.realNs / timeUnitScale(b.unit());
                row.cpuTime = rr.cpuNs / timeUnitScale(b.unit());
                row.counters = rr.counters;
                rows.push_back(std::move(row));
            }
        }
        if (reps > 1)
            internal::emitAggregates(b, familyIdx, results, reps, rows);
    }
    internal::printConsole(rows);
    internal::writeJson(rows);
}

inline void
Shutdown()
{
}

} // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(func)                                                  \
    static ::benchmark::Benchmark *MINIBENCH_CONCAT(                     \
        minibench_reg_, __COUNTER__) =                                   \
        ::benchmark::RegisterBenchmark(                                  \
            #func, [](::benchmark::State &st) { func(st); })

#define BENCHMARK_CAPTURE(func, test_case_name, ...)                     \
    static ::benchmark::Benchmark *MINIBENCH_CONCAT(                     \
        minibench_reg_, __COUNTER__) =                                   \
        ::benchmark::RegisterBenchmark(                                  \
            #func "/" #test_case_name,                                   \
            [](::benchmark::State &st) { func(st, __VA_ARGS__); })

#define BENCHMARK_MAIN()                                                 \
    int main(int argc, char **argv)                                      \
    {                                                                    \
        ::benchmark::Initialize(&argc, argv);                            \
        ::benchmark::ReportUnrecognizedArguments(argc, argv);            \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        ::benchmark::Shutdown();                                         \
        return 0;                                                        \
    }

#endif // DSA_BENCH_MINIBENCH_BENCHMARK_H
