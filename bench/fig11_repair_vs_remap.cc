/**
 * @file
 * Fig. 11: schedule repair versus full re-mapping during DSE. Both
 * strategies run the same exploration on the MachSuite set with the
 * same per-step scheduling budget; the repairing scheduler keeps prior
 * mappings alive as the hardware tightens, so its objective stays
 * ahead (the paper reports ~1.3x better final objective).
 */

#include <cstdio>

#include "base/table.h"
#include "bench/bench_common.h"
#include "dse/explorer.h"

using namespace dsa;

int
main()
{
    std::printf("== Fig. 11: Repair vs Re-Mapping during DSE ==\n\n");
    dse::DseOptions base;
    base.maxIters = 260;
    base.noImproveExit = 240;
    base.schedIters = 30;
    base.unrollFactors = {1, 4};
    base.seed = 21;

    auto workloadSet = workloads::suiteWorkloads("MachSuite");
    std::vector<dse::DseResult> results;
    for (bool repair : {true, false}) {
        dse::DseOptions opts = base;
        opts.useRepair = repair;
        dse::Explorer ex(workloadSet, opts);
        results.push_back(ex.run(adg::buildDseInitial()));
    }
    const auto &rep = results[0];
    const auto &rem = results[1];

    // Objective trajectory (best-so-far), sampled every 20 iterations.
    Table t({"iteration", "repair objective", "re-map objective"});
    auto bestAt = [](const dse::DseResult &r, int iter) {
        double best = 0;
        for (const auto &h : r.history)
            if (h.iter <= iter && h.accepted)
                best = std::max(best, h.objective);
        return best;
    };
    for (int it = 0; it < base.maxIters; it += 20)
        t.addRow({std::to_string(it), Table::fmt(bestAt(rep, it), 3),
                  Table::fmt(bestAt(rem, it), 3)});
    t.print();

    std::printf("\nfinal objective:  repair=%.3f  re-map=%.3f  "
                "ratio=%.2fx (paper: ~1.3x)\n",
                rep.bestObjective, rem.bestObjective,
                rep.bestObjective / std::max(1e-9, rem.bestObjective));
    return 0;
}
