/**
 * @file
 * DSE evaluation-memoization micro-benchmark: runs the same
 * exploration three times per suite —
 *   1. "uncached": every cache disabled (always-recompute baseline);
 *   2. "cached": eval cache + compile cache + cost memo + batch dedup
 *      enabled, cold (measures forward-run caching and shows there is
 *      no cache-cold regression);
 *   3. "replay": the identical exploration again, warm-started from
 *      the eval cache the cold cached run persisted through its
 *      checkpoint — every evaluation hits, so the replay skips all
 *      compile + schedule work (the "resume does not re-pay" path).
 * All three must produce bit-identical results; the harness aborts on
 * any divergence. Reports candidates/second plus per-cache hit rates
 * as JSON (written by scripts/bench_dse.sh into BENCH_dse.json).
 *
 * A fourth and fifth run per suite exercise the multi-objective mode:
 * the same exploration with --pareto semantics at 1 thread and at N
 * threads. The two fronts must be bit-identical (the harness aborts on
 * a nondeterministic front); the JSON records the front size, final
 * hypervolume, the hypervolume-vs-candidates curve, and whether some
 * front point dominates (or matches) the scalar run's best design.
 *
 * Finally, a multi-process sweep re-runs the exploration with
 * --workers N for N in {1, 2, 4}, all sharing one on-disk eval-cache
 * store: N=1 runs cold and populates the store, N=2 and N=4 warm-start
 * from it. The harness aborts on any divergence from the in-process
 * run and records candidates/second, the warm shared-cache hit rate,
 * and store load/append counts per N. (This binary doubles as the
 * worker subprocess via the `__dse-worker` argv marker.)
 *
 * Usage: micro_dse [out.json] [iters] [batch] [threads] [schedIters]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "adg/prebuilt.h"
#include "base/thread_pool.h"
#include "dse/checkpoint.h"
#include "dse/explorer.h"
#include "dse/worker_pool.h"
#include "workloads/workload.h"

using namespace dsa;

namespace {

struct Timed
{
    dse::DseResult res;
    double seconds = 0;
    double candidatesPerSec = 0;
};

Timed
timedRun(const char *suite, const dse::DseOptions &opts,
         std::shared_ptr<dse::EvalCache> warm = nullptr)
{
    dse::Explorer ex(workloads::suiteWorkloads(suite), opts);
    auto t0 = std::chrono::steady_clock::now();
    Timed t;
    t.res = ex.run(adg::buildDseInitial(), std::move(warm));
    t.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    // Every history record is one candidate evaluation outcome (the
    // two seed evaluations included) — the unit of work the caches
    // accelerate.
    t.candidatesPerSec =
        static_cast<double>(t.res.history.size()) / t.seconds;
    return t;
}

double
rate(uint64_t hits, uint64_t misses)
{
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
}

/** Remove a flat directory (the per-suite cache-store scratch dirs). */
void
rmTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (dirent *e = ::readdir(d)) {
            std::string n = e->d_name;
            if (n != "." && n != "..")
                std::remove((dir + "/" + n).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // The worker pool re-execs this binary as its evaluation worker.
    if (argc > 1 && std::string(argv[1]) == "__dse-worker")
        return dse::workerMain();

    std::string outPath = argc > 1 ? argv[1] : "BENCH_dse.json";
    int iters = argc > 2 ? std::atoi(argv[2]) : 60;
    int batch = argc > 3 ? std::atoi(argv[3]) : 6;
    int threads = argc > 4 ? std::atoi(argv[4]) : 0;
    int schedIters = argc > 5 ? std::atoi(argv[5]) : 40;
    if (threads <= 0)
        threads = ThreadPool::hardwareThreads();

    const char *suites[] = {"PolyBench", "Dsp"};

    // Recorded so a committed BENCH_dse.json names the build it was
    // measured from (scripts/bench_dse.sh exports this and refuses to
    // record non-Release builds untagged).
    const char *buildType = std::getenv("DSA_BENCH_BUILD_TYPE");
    std::string json = "{\n  \"build_type\": \"" +
                       std::string(buildType ? buildType : "unknown") +
                       "\",\n  \"benchmarks\": [\n";
    bool first = true;
    for (const char *suite : suites) {
        dse::DseOptions base;
        base.maxIters = iters;
        base.noImproveExit = iters;
        base.schedIters = schedIters;
        base.unrollFactors = {1, 4};
        base.seed = 7;
        base.threads = threads;
        base.candidateBatch = batch;

        dse::DseOptions cold = base;
        cold.evalCache = false;
        cold.compileCache = false;
        cold.costMemo = false;
        cold.dedupBatch = false;

        // The cold cached run checkpoints so its eval cache persists;
        // the replay run warm-starts from what the checkpoint holds.
        std::string ckPath =
            std::string("bench_dse_") + suite + ".ckpt.json";
        dse::DseOptions cachedOpts = base;
        cachedOpts.checkpointPath = ckPath;
        cachedOpts.checkpointEvery = 1000000;  // final write only

        std::printf("== %s: %d iters, batch %d, %d threads ==\n", suite,
                    iters, batch, threads);
        Timed uncached = timedRun(suite, cold);
        std::printf("  uncached: %.1fs, %.2f candidates/s\n",
                    uncached.seconds, uncached.candidatesPerSec);
        Timed cached = timedRun(suite, cachedOpts);
        const dse::DseCacheStats &cs = cached.res.cacheStats;
        std::printf("  cached:   %.1fs, %.2f candidates/s (%.2fx)\n",
                    cached.seconds, cached.candidatesPerSec,
                    cached.candidatesPerSec / uncached.candidatesPerSec);
        std::printf("  eval %.0f%% hit, placement %.0f%%, lowering "
                    "%.0f%%, cost %.0f%%, dedup-collapsed %llu\n",
                    100 * rate(cs.evalHits, cs.evalMisses),
                    100 * rate(cs.placementHits, cs.placementMisses),
                    100 * rate(cs.lowerHits, cs.lowerMisses),
                    100 * rate(cs.costHits, cs.costMisses),
                    static_cast<unsigned long long>(cs.dedupCollapsed));

        auto loaded = dse::loadCheckpoint(ckPath);
        if (!loaded.ok() || !loaded.value().state.evalCache) {
            std::fprintf(stderr, "FATAL: no persisted eval cache in %s\n",
                         ckPath.c_str());
            return 1;
        }
        Timed replay =
            timedRun(suite, base, loaded.value().state.evalCache);
        const dse::DseCacheStats &rs = replay.res.cacheStats;
        std::printf("  replay:   %.1fs, %.2f candidates/s (%.2fx), "
                    "eval %.0f%% hit\n",
                    replay.seconds, replay.candidatesPerSec,
                    replay.candidatesPerSec / uncached.candidatesPerSec,
                    100 * rate(rs.evalHits, rs.evalMisses));
        std::remove(ckPath.c_str());

        // The caches must not change a single bit of the outcome;
        // a mismatch invalidates the whole benchmark.
        bool identical =
            cached.res.best.toText() == uncached.res.best.toText() &&
            cached.res.bestObjective == uncached.res.bestObjective &&
            cached.res.history.size() == uncached.res.history.size() &&
            replay.res.best.toText() == uncached.res.best.toText() &&
            replay.res.bestObjective == uncached.res.bestObjective &&
            replay.res.history.size() == uncached.res.history.size();
        if (!identical) {
            std::fprintf(stderr,
                         "FATAL: cached/replay and uncached runs "
                         "diverged on %s\n",
                         suite);
            return 1;
        }

        // Multi-objective mode: serial and parallel runs must grow the
        // exact same front (hypervolume acceptance updates the archive
        // strictly serially, so thread count may change nothing).
        dse::DseOptions ps = base;
        ps.pareto = true;
        ps.paretoFrontSize = 16;
        ps.threads = 1;
        Timed pSerial = timedRun(suite, ps);
        ps.threads = threads;
        Timed pPar = timedRun(suite, ps);
        bool sameFront =
            pSerial.res.front.size() == pPar.res.front.size() &&
            pSerial.res.frontHypervolume == pPar.res.frontHypervolume;
        for (size_t i = 0; sameFront && i < pSerial.res.front.size();
             ++i) {
            const dse::ParetoRecord &a = pSerial.res.front[i];
            const dse::ParetoRecord &b = pPar.res.front[i];
            sameFront = a.perf == b.perf && a.areaMm2 == b.areaMm2 &&
                        a.powerMw == b.powerMw &&
                        a.objective == b.objective && a.iter == b.iter;
        }
        if (!sameFront) {
            std::fprintf(stderr,
                         "FATAL: pareto front nondeterministic across "
                         "thread counts on %s\n",
                         suite);
            return 1;
        }
        std::printf("  pareto:   %.1fs serial / %.1fs parallel, "
                    "%zu-point front, hypervolume %.3f\n",
                    pSerial.seconds, pPar.seconds,
                    pPar.res.front.size(), pPar.res.frontHypervolume);

        // Hypervolume-vs-candidates: one [evaluated-candidates, hv]
        // sample per hypervolume change (the curve is a step function,
        // so only the steps carry information).
        std::string curve;
        double lastHv = -1;
        size_t nCands = 0;
        for (const auto &h : pPar.res.history) {
            ++nCands;
            if (h.hypervolume == lastHv)
                continue;
            char pb[96];
            std::snprintf(pb, sizeof pb, "%s[%zu, %.6f]",
                          curve.empty() ? "" : ", ", nCands,
                          h.hypervolume);
            curve += pb;
            lastHv = h.hypervolume;
        }
        bool dominatesScalar = false;
        for (const auto &p : pPar.res.front)
            dominatesScalar |= p.perf >= cached.res.bestPerf &&
                               p.areaMm2 <= cached.res.bestCost.areaMm2 &&
                               p.powerMw <= cached.res.bestCost.powerMw;

        // Multi-process sweep: crash-isolated worker subprocesses
        // sharing one on-disk eval-cache store. N=1 runs cold and
        // populates the store; N=2 and N=4 warm-start from it. The
        // transport must not change a single bit of the outcome.
        std::string storeDir = std::string("bench_dse_") + suite + ".store";
        rmTree(storeDir);
        std::string workersJson;
        for (int nw : {1, 2, 4}) {
            dse::DseOptions wo = base;
            wo.workers = nw;
            wo.cacheStoreDir = storeDir;
            Timed wt = timedRun(suite, wo);
            if (wt.res.best.toText() != uncached.res.best.toText() ||
                wt.res.bestObjective != uncached.res.bestObjective ||
                wt.res.history.size() != uncached.res.history.size()) {
                std::fprintf(stderr,
                             "FATAL: --workers %d diverged from the "
                             "in-process run on %s\n",
                             nw, suite);
                return 1;
            }
            const dse::DseCacheStats &wcs = wt.res.cacheStats;
            const dse::DseWorkerStats &wws = wt.res.workerStats;
            std::printf("  workers=%d: %.1fs, %.2f candidates/s, "
                        "eval %.0f%% hit, store %llu loaded / %llu "
                        "appended\n",
                        nw, wt.seconds, wt.candidatesPerSec,
                        100 * rate(wcs.evalHits, wcs.evalMisses),
                        static_cast<unsigned long long>(wcs.storeLoaded),
                        static_cast<unsigned long long>(wcs.storeAppends));
            char wb[320];
            std::snprintf(
                wb, sizeof wb,
                "%s{\"workers\": %d, \"seconds\": %.3f, "
                "\"candidates_per_sec\": %.3f, \"eval_hit_rate\": %.4f, "
                "\"store_loaded\": %llu, \"store_appends\": %llu, "
                "\"degraded\": %llu}",
                workersJson.empty() ? "" : ", ", nw, wt.seconds,
                wt.candidatesPerSec, rate(wcs.evalHits, wcs.evalMisses),
                static_cast<unsigned long long>(wcs.storeLoaded),
                static_cast<unsigned long long>(wcs.storeAppends),
                static_cast<unsigned long long>(wws.degraded));
            workersJson += wb;
        }
        rmTree(storeDir);

        char buf[8192];  // roomy: the hv curve rides along as a %s
        std::snprintf(
            buf, sizeof buf,
            "%s    {\n"
            "      \"suite\": \"%s\",\n"
            "      \"iters\": %d,\n"
            "      \"batch\": %d,\n"
            "      \"threads\": %d,\n"
            "      \"candidates\": %zu,\n"
            "      \"identical_results\": true,\n"
            "      \"uncached\": {\"seconds\": %.3f, "
            "\"candidates_per_sec\": %.3f},\n"
            "      \"cached\": {\"seconds\": %.3f, "
            "\"candidates_per_sec\": %.3f,\n"
            "        \"eval_hit_rate\": %.4f, \"placement_hit_rate\": "
            "%.4f,\n"
            "        \"lower_hit_rate\": %.4f, \"cost_hit_rate\": %.4f,\n"
            "        \"eval_entries\": %llu, \"dedup_collapsed\": %llu},\n"
            "      \"replay\": {\"seconds\": %.3f, "
            "\"candidates_per_sec\": %.3f,\n"
            "        \"eval_hit_rate\": %.4f},\n"
            "      \"cached_speedup\": %.3f,\n"
            "      \"replay_speedup\": %.3f,\n"
            "      \"pareto\": {\"serial_seconds\": %.3f, "
            "\"parallel_seconds\": %.3f,\n"
            "        \"front_size\": %zu, \"hypervolume\": %.6f,\n"
            "        \"identical_across_threads\": true,\n"
            "        \"dominates_scalar\": %s,\n"
            "        \"hv_vs_candidates\": [%s]},\n"
            "      \"workers_shared_store\": [%s]\n"
            "    }",
            first ? "" : ",\n", suite, iters, batch, threads,
            cached.res.history.size(), uncached.seconds,
            uncached.candidatesPerSec, cached.seconds,
            cached.candidatesPerSec, rate(cs.evalHits, cs.evalMisses),
            rate(cs.placementHits, cs.placementMisses),
            rate(cs.lowerHits, cs.lowerMisses),
            rate(cs.costHits, cs.costMisses),
            static_cast<unsigned long long>(cs.evalEntries),
            static_cast<unsigned long long>(cs.dedupCollapsed),
            replay.seconds, replay.candidatesPerSec,
            rate(rs.evalHits, rs.evalMisses),
            cached.candidatesPerSec / uncached.candidatesPerSec,
            replay.candidatesPerSec / uncached.candidatesPerSec,
            pSerial.seconds, pPar.seconds, pPar.res.front.size(),
            pPar.res.frontHypervolume, dominatesScalar ? "true" : "false",
            curve.c_str(), workersJson.c_str());
        json += buf;
        first = false;
    }
    json += "\n  ]\n}\n";

    std::ofstream out(outPath);
    out << json;
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
