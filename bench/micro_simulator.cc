/**
 * @file
 * Micro-benchmarks (google-benchmark): cycle-level simulator
 * throughput (simulated cycles per wall second) on representative
 * kernels, plus interpreter (golden-model) throughput.
 *
 * Every simulator benchmark is registered four times — `*_jit`
 * (runtime code generation: the armed period program lowered to C++,
 * compiled to a cached shared object, replay chunks run natively),
 * `*_compiled` (event-driven + per-region compute plans + interpreted
 * period replay, the PR 8 tier), `*_sparse` (event-driven with the
 * interpreted region tick), and `*_dense` (the original
 * cycle-by-cycle oracle loop) — so BENCH_simulator.json carries its
 * own tier-by-tier comparison, mirroring the `*_reference` convention
 * in micro_scheduler.cc. All modes produce bit-identical results
 * (enforced by tests/test_sim_sparse.cc, tests/test_sim_compiled.cc,
 * and tests/test_sim_jit.cc); only wall-clock differs. The jit
 * fixtures prewarm synchronously (DSA_SIM_JIT_SYNC) so the timed
 * iterations measure native replay, not compiler latency; the one
 * compile per kernel shape is amortized through the on-disk object
 * cache in real runs.
 *
 * The `cmdheavy_*` fixtures model a slow control core (high command
 * latency, fractional issue IPC), stretching the WaitCmd quiet spells
 * between stream issues that idle-cycle skipping elides. `fallback_*`
 * runs data-dependent kernels whose gather/scatter streams take the
 * throttled scalar-fallback path on targets without indirect stream
 * controllers — long fixed-interval gaps between element pops.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench/bench_common.h"

using namespace dsa;

namespace {

/** Control-core tweak applied to the fixture hardware before
 *  compilation (nullptr = leave the target as built). */
using HwTweak = void (*)(adg::Adg &);

void
slowControlCore(adg::Adg &hw)
{
    // A 2000-cycle command pipeline issuing one command every four
    // cycles: every region spends most of its life in WaitCmd, which
    // the sparse loop skips in one jump per stream issue.
    hw.control().cmdLatency = 2000;
    hw.control().cmdIssueIpc = 0.25;
}

adg::Adg
buildHw(const std::string &target, HwTweak tweak)
{
    adg::Adg hw = bench::buildTarget(target);
    if (tweak)
        tweak(hw);
    return hw;
}

struct SimFixture
{
    adg::Adg hw;
    const workloads::Workload &w;
    workloads::GoldenRun golden;
    compiler::Placement placement;
    dfg::DecoupledProgram prog;
    mapper::Schedule sched;
    bool ready = false;

    SimFixture(const std::string &name, const std::string &target,
               HwTweak tweak)
        : hw(buildHw(target, tweak)), w(workloads::workload(name)),
          golden(workloads::runGolden(w)),
          placement(compiler::Placement::autoLayout(
              w.kernel, compiler::HwFeatures::fromAdg(hw)))
    {
        auto features = compiler::HwFeatures::fromAdg(hw);
        auto r = compiler::lowerKernel(w.kernel, placement, features, {},
                                       1);
        if (!r.ok)
            return;
        prog = r.version.program;
        sched = mapper::scheduleProgram(prog, hw,
                                        {.maxIters = 800, .seed = 3});
        ready = sched.cost.legal();
    }
};

/** Which simulation tier the fixture exercises. */
enum class Engine { Dense, Sparse, Compiled, Jit };

/** The jit fixtures block acquire() until the kernel is terminal
 *  (ready or failed): the prewarm run below then guarantees the timed
 *  iterations execute native replay, never a compile. Set before any
 *  simulation runs (the runtime reads it once, lazily). */
const bool kJitSyncArmed = [] {
    setenv("DSA_SIM_JIT_SYNC", "1", 0);
    return true;
}();

void
BM_Simulate(benchmark::State &state, const std::string &name,
            const std::string &target, HwTweak tweak, Engine engine)
{
    SimFixture f(name, target, tweak);
    if (!f.ready) {
        state.SkipWithError("schedule illegal");
        return;
    }
    sim::SimOptions opts;
    opts.sparse = engine != Engine::Dense;
    opts.compiled = engine == Engine::Compiled || engine == Engine::Jit;
    opts.jit = engine == Engine::Jit;
    if (engine == Engine::Jit) {
        // Compile eagerly, and pay for it (plus the dlopen) once in an
        // untimed prewarm run; the timed loop below is then all
        // mem-hit native replay — the steady-state cost a long run or
        // a warm-cache rerun actually sees.
        opts.jitHotCycles = 0;
        auto img = sim::MemImage::build(f.w.kernel, f.golden.initial,
                                        f.placement);
        sim::simulate(f.prog, f.sched, f.hw, img, opts);
    }
    int64_t cycles = 0;
    sim::SimResult last;
    for (auto _ : state) {
        auto img = sim::MemImage::build(f.w.kernel, f.golden.initial,
                                        f.placement);
        last = sim::simulate(f.prog, f.sched, f.hw, img, opts);
        cycles += last.cycles;
        benchmark::DoNotOptimize(last.cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    if ((engine == Engine::Compiled || engine == Engine::Jit) &&
        last.cycles > 0) {
        // Engine mix of one run: how much of the wall-cycle count the
        // compiled tier (and its period-replay fast path) absorbed.
        double n = static_cast<double>(last.cycles);
        state.counters["compiled%"] =
            100.0 * static_cast<double>(last.cyclesCompiled) / n;
        state.counters["replayed%"] =
            100.0 * static_cast<double>(last.cyclesReplayed) / n;
    }
    if (engine == Engine::Jit && last.cycles > 0)
        state.counters["jit%"] =
            100.0 * static_cast<double>(last.cyclesJit) /
            static_cast<double>(last.cycles);
}

void
BM_Interpret(benchmark::State &state, const std::string &name)
{
    const auto &w = workloads::workload(name);
    auto golden = workloads::runGolden(w);
    for (auto _ : state) {
        ir::ArrayStore st = golden.initial;
        auto stats = ir::interpret(w.kernel, st);
        benchmark::DoNotOptimize(stats.arithOps);
    }
}

} // namespace

// Register a jit/compiled/sparse/dense benchmark quadruple under one
// fixture name: the four simulation tiers on identical inputs
// (bit-identical results, enforced by tests/test_sim_sparse.cc,
// tests/test_sim_compiled.cc, and tests/test_sim_jit.cc; only
// wall-clock differs).
#define SIM_PAIR(label, workload, target, tweak)                        \
    BENCHMARK_CAPTURE(BM_Simulate, label##_jit,                         \
                      std::string(workload), std::string(target),       \
                      tweak, Engine::Jit)                               \
        ->Unit(benchmark::kMillisecond);                                \
    BENCHMARK_CAPTURE(BM_Simulate, label##_compiled,                    \
                      std::string(workload), std::string(target),       \
                      tweak, Engine::Compiled)                          \
        ->Unit(benchmark::kMillisecond);                                \
    BENCHMARK_CAPTURE(BM_Simulate, label##_sparse,                      \
                      std::string(workload), std::string(target),       \
                      tweak, Engine::Sparse)                            \
        ->Unit(benchmark::kMillisecond);                                \
    BENCHMARK_CAPTURE(BM_Simulate, label##_dense,                       \
                      std::string(workload), std::string(target),       \
                      tweak, Engine::Dense)                             \
        ->Unit(benchmark::kMillisecond)

// Steady-state kernels on the DSE starting fabric: mostly-busy
// pipelines, so these guard the "no regression on dense-activity
// workloads" side of the sparse loop.
SIM_PAIR(crs, "crs", "dse", nullptr);
SIM_PAIR(histogram, "histogram", "dse", nullptr);
SIM_PAIR(classifier, "classifier", "dse", nullptr);
SIM_PAIR(mm, "mm", "dse", nullptr);
SIM_PAIR(fir, "fir", "dse", nullptr);

// Quiet-spell-heavy: slow control core stretches WaitCmd gaps between
// stream issues. The phase-script kernels (qr, chol, solver) issue
// hundreds of small sequential phases, so with a slow control core
// nearly all simulated cycles are command-pipeline idle spells.
SIM_PAIR(cmdheavy_qr, "qr", "dse", slowControlCore);
SIM_PAIR(cmdheavy_chol, "chol", "dse", slowControlCore);
SIM_PAIR(cmdheavy_solver, "solver", "dse", slowControlCore);
SIM_PAIR(cmdheavy_fft, "fft", "dse", slowControlCore);

// Data-dependent access on softbrain falls back to the throttled
// scalar path (fixed minimum pop interval per element). The gaps are
// short (scalarElementInterval cycles), so these mostly guard the
// throttled-port event source and the no-regression bound rather than
// demonstrate large skips.
SIM_PAIR(fallback_crs, "crs", "softbrain", nullptr);
SIM_PAIR(fallback_histogram, "histogram", "softbrain", nullptr);

BENCHMARK_CAPTURE(BM_Interpret, mm, std::string("mm"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Interpret, fft, std::string("fft"))
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
