/**
 * @file
 * Micro-benchmarks (google-benchmark): cycle-level simulator
 * throughput (simulated cycles per wall second) on representative
 * kernels, plus interpreter (golden-model) throughput.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

using namespace dsa;

namespace {

struct SimFixture
{
    adg::Adg hw = adg::buildDseInitial();
    const workloads::Workload &w;
    workloads::GoldenRun golden;
    compiler::Placement placement;
    dfg::DecoupledProgram prog;
    mapper::Schedule sched;
    bool ready = false;

    explicit SimFixture(const std::string &name)
        : w(workloads::workload(name)), golden(workloads::runGolden(w)),
          placement(compiler::Placement::autoLayout(
              w.kernel, compiler::HwFeatures::fromAdg(hw)))
    {
        auto features = compiler::HwFeatures::fromAdg(hw);
        auto r = compiler::lowerKernel(w.kernel, placement, features, {},
                                       1);
        if (!r.ok)
            return;
        prog = r.version.program;
        sched = mapper::scheduleProgram(prog, hw,
                                        {.maxIters = 800, .seed = 3});
        ready = sched.cost.legal();
    }
};

void
BM_Simulate(benchmark::State &state, const std::string &name)
{
    SimFixture f(name);
    if (!f.ready) {
        state.SkipWithError("schedule illegal");
        return;
    }
    int64_t cycles = 0;
    for (auto _ : state) {
        auto img = sim::MemImage::build(f.w.kernel, f.golden.initial,
                                        f.placement);
        auto res = sim::simulate(f.prog, f.sched, f.hw, img);
        cycles += res.cycles;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_Interpret(benchmark::State &state, const std::string &name)
{
    const auto &w = workloads::workload(name);
    auto golden = workloads::runGolden(w);
    for (auto _ : state) {
        ir::ArrayStore st = golden.initial;
        auto stats = ir::interpret(w.kernel, st);
        benchmark::DoNotOptimize(stats.arithOps);
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Simulate, crs, std::string("crs"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Simulate, histogram, std::string("histogram"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Simulate, classifier, std::string("classifier"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Interpret, mm, std::string("mm"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Interpret, fft, std::string("fft"))
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
