/**
 * @file
 * Ablation studies for the framework's design choices (beyond the
 * paper's figures, called out in DESIGN.md):
 *
 *  1. delay-FIFO depth: static dedicated fabrics lose throughput when
 *     operand skew exceeds the FIFOs (the [64] effect behind §III-B);
 *  2. scratchpad banking: banked atomic throughput for histogram;
 *  3. repetitive-update buffering (Fig. 7(b)) on/off;
 *  4. producer-consumer forwarding (Fig. 7(a)) on/off;
 *  5. sync-element lane width: how far vectorization can scale;
 *  6. DSE evaluation parallelism: wall-clock vs threads/batch with
 *     the accepted-design trace held bit-identical.
 */

#include <chrono>
#include <cstdio>

#include "adg/builders.h"
#include "adg/prebuilt.h"
#include "base/table.h"
#include "bench/bench_common.h"
#include "dse/explorer.h"

using namespace dsa;
using namespace dsa::bench;

namespace {

int64_t
simCycles(const workloads::Workload &w, const adg::Adg &hw,
          const compiler::CompileOptions &copts = {}, int iters = 800)
{
    auto r = runPipeline(w, hw, iters, copts);
    return r.ok ? r.simCycles : -1;
}

} // namespace

int
main()
{
    std::printf("== Ablation 1: delay-FIFO depth on a static fabric "
                "(stencil-2d schedule quality) ==\n\n");
    {
        Table t({"delay fifo depth", "schedule II", "est cycles"});
        for (int depth : {1, 2, 4, 8, 16}) {
            adg::MeshConfig cfg;
            cfg.rows = 5;
            cfg.cols = 5;
            cfg.pe.ops = OpSet::all();
            cfg.pe.delayFifoDepth = depth;
            adg::Adg hw = adg::buildMesh(cfg);
            auto features = compiler::HwFeatures::fromAdg(hw);
            const auto &w = workloads::workload("stencil-2d");
            auto placement =
                compiler::Placement::autoLayout(w.kernel, features);
            auto r = compiler::lowerKernel(w.kernel, placement, features,
                                           {}, 1);
            auto sched = mapper::scheduleProgram(
                r.version.program, hw, {.maxIters = 1500, .seed = 3});
            auto est = model::estimatePerformance(r.version.program,
                                                  sched, hw);
            t.addRow({std::to_string(depth),
                      std::to_string(sched.cost.maxIi),
                      sched.cost.legal() ? Table::fmt(est.cycles, 0)
                                         : "illegal"});
        }
        t.print();
        std::printf("(shallow FIFOs cannot absorb operand skew; the "
                    "initiation interval grows)\n");
    }

    std::printf("\n== Ablation 2: scratchpad banking for histogram "
                "(atomic-update throughput) ==\n\n");
    {
        Table t({"banks", "sim cycles", "elems/cycle"});
        const auto &w = workloads::workload("histogram");
        for (int banks : {1, 2, 4, 8, 16}) {
            adg::Adg hw = adg::buildSpu(5, 5);
            for (adg::NodeId id :
                 hw.aliveNodes(adg::NodeKind::Memory)) {
                auto &mem = hw.node(id).mem();
                if (mem.kind == adg::MemKind::Scratchpad) {
                    mem.numBanks = banks;
                    // Wide port so banks (not wires) are the limiter.
                    mem.widthBytes = 512;
                }
            }
            int64_t cycles = simCycles(w, hw);
            t.addRow({std::to_string(banks),
                      cycles > 0 ? std::to_string(cycles) : "fail",
                      cycles > 0
                          ? Table::fmt(65536.0 / cycles, 2)
                          : "-"});
        }
        t.print();
    }

    std::printf("\n== Ablation 3: repetitive-update buffering "
                "(Fig. 7(b)) ==\n\n");
    {
        const auto &w = workloads::workload("repupdate");
        adg::Adg hw = adg::buildSoftbrain();
        compiler::CompileOptions on, off;
        off.enableRepetitiveUpdate = false;
        int64_t with = simCycles(w, hw, on);
        int64_t without = simCycles(w, hw, off);
        std::printf("on-fabric recurrence: %lld cycles, fenced memory "
                    "round-trips: %lld cycles (%.2fx slower)\n",
                    static_cast<long long>(with),
                    static_cast<long long>(without),
                    static_cast<double>(without) / with);
    }

    std::printf("\n== Ablation 4: producer-consumer forwarding "
                "(Fig. 7(a)) ==\n\n");
    {
        const auto &w = workloads::workload("prodcons");
        adg::Adg hw = adg::buildSoftbrain();
        compiler::CompileOptions on, off;
        off.enableProducerConsumer = false;
        int64_t with = simCycles(w, hw, on);
        int64_t without = simCycles(w, hw, off);
        std::printf("on-fabric forward: %lld cycles, via-memory with "
                    "barrier: %lld cycles (%.2fx slower)\n",
                    static_cast<long long>(with),
                    static_cast<long long>(without),
                    static_cast<double>(without) / with);
    }

    std::printf("\n== Ablation 5: sync-element lanes vs achievable "
                "vectorization (classifier) ==\n\n");
    {
        Table t({"sync lanes", "best legal unroll", "sim cycles"});
        const auto &w = workloads::workload("classifier");
        for (int lanes : {1, 2, 4, 8}) {
            adg::MeshConfig cfg;
            cfg.rows = 5;
            cfg.cols = 5;
            cfg.pe.ops = OpSet::all();
            cfg.syncIn.lanes = lanes;
            adg::Adg hw = adg::buildMesh(cfg);
            compiler::CompileOptions copts;
            copts.unrollFactors = {1, 2, 4, 8};
            auto r = runPipeline(w, hw, 800, copts);
            t.addRow({std::to_string(lanes),
                      r.ok ? std::to_string(r.unroll) : "-",
                      r.ok ? std::to_string(r.simCycles) : "fail"});
        }
        t.print();
        std::printf("(wider ports admit wider versions; the compiler's "
                    "degree exploration adapts automatically)\n");
    }

    std::printf("\n== Ablation 6: DSE evaluation parallelism "
                "(PolyBench, deterministic across thread counts) "
                "==\n\n");
    {
        Table t({"threads", "batch", "wall s", "speedup",
                 "best objective", "trace == serial"});
        double serialSeconds = 0;
        double serialObjective = 0;
        std::vector<dse::DseIterRecord> serialHistory;
        struct Cfg
        {
            int threads;
            int batch;
        };
        for (Cfg cfg : {Cfg{1, 1}, Cfg{2, 1}, Cfg{4, 1}, Cfg{4, 4}}) {
            dse::DseOptions opts;
            opts.maxIters = 40;
            opts.noImproveExit = 40;
            opts.schedIters = 30;
            opts.initSchedIters = 600;
            opts.unrollFactors = {1, 4};
            opts.seed = 11;
            opts.threads = cfg.threads;
            opts.candidateBatch = cfg.batch;
            dse::Explorer ex(workloads::suiteWorkloads("PolyBench"),
                             opts);
            auto t0 = std::chrono::steady_clock::now();
            auto res = ex.run(adg::buildDseInitial());
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            bool sameTrace = true;
            if (cfg.threads == 1 && cfg.batch == 1) {
                serialSeconds = seconds;
                serialObjective = res.bestObjective;
                serialHistory = res.history;
            } else if (cfg.batch == 1) {
                sameTrace =
                    res.history.size() == serialHistory.size();
                for (size_t i = 0; sameTrace && i < res.history.size();
                     ++i)
                    sameTrace =
                        res.history[i].iter == serialHistory[i].iter &&
                        res.history[i].objective ==
                            serialHistory[i].objective &&
                        res.history[i].accepted ==
                            serialHistory[i].accepted;
                sameTrace =
                    sameTrace && res.bestObjective == serialObjective;
            } else {
                sameTrace = false;  // batching reorders acceptance
            }
            t.addRow({std::to_string(cfg.threads),
                      std::to_string(cfg.batch), Table::fmt(seconds, 1),
                      Table::fmt(serialSeconds / seconds, 2),
                      Table::fmt(res.bestObjective, 3),
                      cfg.batch > 1 ? "n/a (batched)"
                                    : (sameTrace ? "yes" : "NO")});
        }
        t.print();
        std::printf("(per-task seeds are hashed from (seed, kernel, "
                    "unroll), so the thread count never changes the "
                    "result — only the wall-clock)\n");
    }
    return 0;
}
