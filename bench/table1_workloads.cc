/**
 * @file
 * Table I: workload specification. Prints each kernel's suite, data
 * size, and measured dynamic characteristics from the golden run,
 * plus the lowered-program shape (regions, streams, instructions).
 */

#include <cstdio>

#include "base/table.h"
#include "bench/bench_common.h"

using namespace dsa;

int
main()
{
    std::printf("== Table I: Workload Specification ==\n\n");
    Table t({"workload", "suite", "arrays (elems)", "dyn ops", "loads",
             "stores", "regions", "streams", "insts", "fig10 target"});
    adg::Adg hw = adg::buildDseInitial();
    auto features = compiler::HwFeatures::fromAdg(hw);
    for (const auto &w : workloads::allWorkloads()) {
        auto golden = workloads::runGolden(w);
        int64_t elems = 0;
        for (const auto &a : w.kernel.arrays)
            elems += a.length;
        auto placement =
            compiler::Placement::autoLayout(w.kernel, features);
        auto r = compiler::lowerKernel(w.kernel, placement, features, {},
                                       1);
        int streams = 0, insts = 0;
        size_t regions = 0;
        if (r.ok) {
            regions = r.version.program.regions.size();
            for (const auto &reg : r.version.program.regions) {
                streams += static_cast<int>(reg.streams.size());
                insts += reg.dfg.numInstructions();
            }
        }
        t.addRow({w.name, w.suite, std::to_string(elems),
                  std::to_string(golden.stats.arithOps),
                  std::to_string(golden.stats.loads),
                  std::to_string(golden.stats.stores),
                  std::to_string(regions), std::to_string(streams),
                  std::to_string(insts), w.fig10Target});
    }
    t.print();
    return 0;
}
