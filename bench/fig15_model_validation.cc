/**
 * @file
 * Fig. 15: (a) power/area model validation — regression estimate vs
 * (oracle) synthesis for DSE-generated designs and prior programmable
 * accelerators, plus technology-scaled literature points; (b)
 * performance-model validation — analytical estimate vs simulation per
 * workload; (c) generated-hardware quality vs prior accelerators.
 * Paper: estimates 4-7% under synthesis; perf model 7% mean / 30% max
 * error; DSAGEN designs save area vs Softbrain/SPU but trail scaled
 * DianNao/SCNN by 1.3-2.6x (reconfigurability cost).
 */

#include <cmath>
#include <cstdio>

#include "base/table.h"
#include "bench/bench_common.h"
#include "dse/explorer.h"
#include "model/reference_points.h"
#include "model/regression.h"
#include "model/synth_oracle.h"

using namespace dsa;
using namespace dsa::bench;

namespace {

/** Quick DSE to obtain a generated design for one workload set. */
adg::Adg
generateDesign(const char *suite, uint64_t seed)
{
    dse::DseOptions opts;
    opts.maxIters = 200;
    opts.noImproveExit = 120;
    opts.schedIters = 40;
    opts.unrollFactors = {1, 4};
    opts.seed = seed;
    dse::Explorer ex(workloads::suiteWorkloads(suite), opts);
    return ex.run(adg::buildDseInitial()).best;
}

} // namespace

int
main()
{
    const auto &m = model::AreaPowerModel::instance();

    std::printf("== Fig. 15 (a): Area/Power Model Validation ==\n\n");
    Table t({"hardware", "est. area", "synth area", "gap", "est. power",
             "synth power", "scaled area", "scaled power"});
    struct Hw
    {
        std::string name;
        adg::Adg adg;
        const char *ref;  // literature reference point, if any
    };
    std::vector<Hw> designs;
    designs.push_back({"DSAGEN_MachSuite",
                       generateDesign("MachSuite", 41), nullptr});
    designs.push_back({"DSAGEN_DenseNN", generateDesign("DenseNN", 42),
                       nullptr});
    designs.push_back({"DSAGEN_SparseCNN",
                       generateDesign("SparseCNN", 43), nullptr});
    designs.push_back({"Softbrain", adg::buildSoftbrain(5, 5),
                       "Softbrain"});
    designs.push_back({"SPU", adg::buildSpu(5, 5), "SPU"});
    designs.push_back({"Triggered", adg::buildTriggered(4, 4),
                       "Triggered"});

    for (const auto &d : designs) {
        auto est = m.fabric(d.adg);
        auto synth = model::synthFabric(d.adg);
        double gap = (synth.areaMm2 - est.areaMm2) / synth.areaMm2;
        std::string sa = "-", sp = "-";
        if (d.ref) {
            const auto &r = model::referencePoint(d.ref);
            sa = Table::fmt(r.cost.areaMm2, 2);
            sp = Table::fmt(r.cost.powerMw, 1);
        }
        t.addRow({d.name, Table::fmt(est.areaMm2, 3),
                  Table::fmt(synth.areaMm2, 3),
                  Table::fmt(100 * gap, 1) + "%",
                  Table::fmt(est.powerMw, 1),
                  Table::fmt(synth.powerMw, 1), sa, sp});
    }
    t.print();
    std::printf("(paper: estimates 4-7%% below synthesis for generated "
                "hardware)\n");

    std::printf("\n== Fig. 15 (b): Performance Model Validation ==\n\n");
    Table pv({"workload", "est. cycles", "sim cycles", "error"});
    double errSum = 0, errMax = 0;
    const char *errMaxName = "";
    int errCnt = 0;
    adg::Adg hw = adg::buildDseInitial();
    for (const char *name :
         {"crs", "ellpack", "mm", "histogram", "join", "classifier",
          "pool", "stencil-3d", "p-mm", "repupdate", "prodcons"}) {
        const auto &w = workloads::workload(name);
        auto r = runPipeline(w, hw, 900);
        if (!r.ok) {
            pv.addRow({name, "-", "-", "fail: " + r.error});
            continue;
        }
        double err = std::fabs(r.estCycles - r.simCycles) /
                     static_cast<double>(r.simCycles);
        errSum += err;
        ++errCnt;
        if (err > errMax) {
            errMax = err;
            errMaxName = name;
        }
        pv.addRow({name, Table::fmt(r.estCycles, 0),
                   std::to_string(r.simCycles),
                   Table::fmt(100 * err, 1) + "%"});
    }
    pv.print();
    std::printf("mean error: %.1f%%, max error: %.1f%% (%s) "
                "(paper: 7%% mean, 30%% max)\n",
                100 * errSum / std::max(1, errCnt), 100 * errMax,
                errMaxName);

    std::printf("\n== Fig. 15 (c): Generated Hardware vs Prior "
                "Accelerators ==\n\n");
    // Area comparison against the programmable accelerators each set
    // competes with, and the domain-specific references.
    auto areaOf = [&](const adg::Adg &g) { return m.fabric(g).areaMm2; };
    double softbrainArea = areaOf(designs[3].adg);
    double spuArea = areaOf(designs[4].adg);
    Table q({"design", "area (mm^2)", "vs Softbrain", "vs SPU",
             "vs scaled DSA"});
    const double diannao =
        model::referencePoint("DianNao").cost.areaMm2;
    const double scnn = model::referencePoint("SCNN").cost.areaMm2;
    struct Row
    {
        const char *name;
        int idx;
        double dsaRef;
    };
    for (const Row &row : {Row{"DSAGEN_MachSuite", 0, 0.0},
                           Row{"DSAGEN_DenseNN", 1, diannao},
                           Row{"DSAGEN_SparseCNN", 2, scnn}}) {
        double a = areaOf(designs[row.idx].adg);
        q.addRow({row.name, Table::fmt(a, 3),
                  Table::fmt(a / softbrainArea, 2) + "x",
                  Table::fmt(a / spuArea, 2) + "x",
                  row.dsaRef > 0 ? Table::fmt(a / row.dsaRef, 2) + "x"
                                 : "-"});
    }
    q.print();
    std::printf("(paper: DSAGEN saves area vs the less-specialized "
                "programmable designs; scaled DianNao/SCNN stay 1.3-2.6x "
                "ahead due to reconfigurability overhead)\n");
    return 0;
}
