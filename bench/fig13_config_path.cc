/**
 * @file
 * Fig. 13: configuration-path length versus the ideal. Mesh fabrics
 * from 2x2 to 5x5 PEs under 3, 6, and 9 configuration paths; the ideal
 * longest path is ceil(n/p) for n nodes. The paper's generator comes
 * within a mean 1.4x of ideal.
 */

#include <cstdio>

#include "adg/builders.h"
#include "base/table.h"
#include "hwgen/config_path.h"

using namespace dsa;

int
main()
{
    std::printf("== Fig. 13: Configuration Path Length "
                "(gray: ideal, black: generated) ==\n\n");
    Table t({"mesh", "nodes", "paths", "ideal", "generated", "ratio"});
    double ratioSum = 0;
    int count = 0;
    for (int dim = 2; dim <= 5; ++dim) {
        adg::MeshConfig cfg;
        cfg.rows = dim;
        cfg.cols = dim;
        adg::Adg g = buildMesh(cfg);
        int n = static_cast<int>(g.aliveNodes().size());
        for (int p : {3, 6, 9}) {
            auto set = hwgen::generateConfigPaths(g, p, 400, 17);
            std::string problem = hwgen::validateConfigPaths(g, set);
            if (!problem.empty()) {
                t.addRow({std::to_string(dim) + "x" + std::to_string(dim),
                          std::to_string(n), std::to_string(p), "-",
                          "INVALID: " + problem, "-"});
                continue;
            }
            int ideal = (n + p - 1) / p;
            double ratio =
                static_cast<double>(set.maxLength()) / ideal;
            ratioSum += ratio;
            ++count;
            t.addRow({std::to_string(dim) + "x" + std::to_string(dim),
                      std::to_string(n), std::to_string(p),
                      std::to_string(ideal),
                      std::to_string(set.maxLength()),
                      Table::fmt(ratio, 2)});
        }
    }
    t.print();
    std::printf("\nmean generated/ideal: %.2fx (paper: ~1.4x)\n",
                ratioSum / std::max(1, count));
    return 0;
}
