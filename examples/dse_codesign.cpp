/**
 * @file
 * Hardware/software co-design walkthrough: run the design-space
 * explorer on a workload set of your choice (default: the DenseNN
 * kernels), watch the objective evolve, and inspect what hardware the
 * explorer settled on — which features survived pruning, what the
 * fabric looks like, and how much area/power the specialization saved.
 *
 * Usage: dse_codesign [suite] [iterations] [threads]
 *   suite: MachSuite | Sparse | Dsp | PolyBench | DenseNN | SparseCNN
 *   threads: parallel candidate evaluation (0 = all cores); the
 *   explored design is identical for any thread count.
 */

#include <cstdio>
#include <cstdlib>

#include "adg/prebuilt.h"
#include "base/table.h"
#include "base/thread_pool.h"
#include "dse/explorer.h"
#include "model/regression.h"

using namespace dsa;

int
main(int argc, char **argv)
{
    std::string suite = argc > 1 ? argv[1] : "DenseNN";
    int iters = argc > 2 ? std::atoi(argv[2]) : 250;
    int threads = argc > 3 ? std::atoi(argv[3]) : 1;
    if (threads <= 0)
        threads = ThreadPool::hardwareThreads();

    auto set = workloads::suiteWorkloads(suite);
    if (set.empty()) {
        std::fprintf(stderr, "unknown suite '%s'\n", suite.c_str());
        return 1;
    }
    std::printf("co-designing an accelerator for the %s set (%zu "
                "kernels, %d DSE iterations)\n\n",
                suite.c_str(), set.size(), iters);

    dse::DseOptions opts;
    opts.maxIters = iters;
    opts.noImproveExit = iters;
    opts.schedIters = 40;
    opts.unrollFactors = {1, 4};
    opts.seed = 7;
    opts.threads = threads;
    dse::Explorer explorer(set, opts);
    auto res = explorer.run(adg::buildDseInitial());

    Table trace({"iteration", "area mm^2", "power mW", "perf",
                 "objective"});
    int step = std::max<size_t>(1, res.history.size() / 12);
    for (size_t i = 0; i < res.history.size(); i += step) {
        const auto &h = res.history[i];
        if (!h.accepted)
            continue;
        trace.addRow({std::to_string(h.iter), Table::fmt(h.areaMm2, 3),
                      Table::fmt(h.powerMw, 1), Table::fmt(h.perf, 2),
                      Table::fmt(h.objective, 3)});
    }
    trace.print();

    auto st = res.best.stats();
    std::printf("\nfinal design: %d PEs (%d dynamic, %d shared), %d "
                "switches, %d syncs, %d edges\n",
                st.numPes, st.numDynamicPes, st.numSharedPes,
                st.numSwitches, st.numSyncs, st.numEdges);
    bool indirect = false, atomic = false;
    for (adg::NodeId id : res.best.aliveNodes(adg::NodeKind::Memory)) {
        indirect |= res.best.node(id).mem().indirect;
        atomic |= res.best.node(id).mem().atomicUpdate;
    }
    std::printf("memory features kept: indirect=%s atomic=%s\n",
                indirect ? "yes" : "no", atomic ? "yes" : "no");
    std::printf("area %.3f -> %.3f mm^2, power %.1f -> %.1f mW, "
                "objective %.3f -> %.3f (%.1fx)\n",
                res.initialCost.areaMm2, res.bestCost.areaMm2,
                res.initialCost.powerMw, res.bestCost.powerMw,
                res.initialObjective, res.bestObjective,
                res.bestObjective /
                    std::max(1e-9, res.initialObjective));

    std::string path = "dse_" + suite + "_design.adg";
    FILE *f = std::fopen(path.c_str(), "w");
    if (f) {
        std::string text = res.best.toText();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("\ndesign saved to %s (feed it to hw_generate to "
                    "emit Verilog)\n",
                    path.c_str());
    }
    return 0;
}
