/**
 * @file
 * Hardware generation walkthrough (§VI): take an ADG — a prebuilt one
 * or a design saved by dse_codesign — generate configuration paths,
 * count bitstream state, encode a real program's configuration, and
 * emit structural Verilog.
 *
 * Usage: hw_generate [adg-file | prebuilt-name] [out.v]
 *   prebuilt names: softbrain maeri triggered spu revel dse_initial
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "adg/prebuilt.h"
#include "base/table.h"
#include "compiler/compile.h"
#include "hwgen/bitstream.h"
#include "hwgen/config_path.h"
#include "hwgen/verilog.h"
#include "mapper/scheduler.h"
#include "workloads/workload.h"

using namespace dsa;

int
main(int argc, char **argv)
{
    std::string source = argc > 1 ? argv[1] : "softbrain";
    std::string outPath = argc > 2 ? argv[2] : "generated.v";

    adg::Adg hw;
    std::ifstream file(source);
    if (file.good()) {
        std::stringstream ss;
        ss << file.rdbuf();
        hw = adg::Adg::fromText(ss.str());
        std::printf("loaded ADG from %s\n", source.c_str());
    } else if (source == "maeri") {
        hw = adg::buildMaeri();
    } else if (source == "triggered") {
        hw = adg::buildTriggered();
    } else if (source == "spu") {
        hw = adg::buildSpu();
    } else if (source == "revel") {
        hw = adg::buildRevel();
    } else if (source == "dse_initial") {
        hw = adg::buildDseInitial();
    } else {
        hw = adg::buildSoftbrain();
    }

    auto st = hw.stats();
    std::printf("fabric: %d PEs, %d switches, %d syncs, %d memories, "
                "%d edges\n",
                st.numPes, st.numSwitches, st.numSyncs, st.numMemories,
                st.numEdges);
    std::printf("total configuration state: %lld bits\n",
                static_cast<long long>(hwgen::totalConfigBits(hw)));

    // Configuration paths: trade path count vs configuration latency.
    Table t({"paths", "longest", "ideal", "config cycles @64b/cyc"});
    hwgen::ConfigPathSet chosen;
    for (int p : {1, 2, 4, 8}) {
        auto set = hwgen::generateConfigPaths(hw, p, 300, 3);
        std::string problem = hwgen::validateConfigPaths(hw, set);
        if (!problem.empty()) {
            std::printf("path generation problem: %s\n", problem.c_str());
            return 1;
        }
        int n = static_cast<int>(hw.aliveNodes().size());
        int64_t cfgCycles = hwgen::totalConfigBits(hw) /
                            (64 * std::max(1, p));
        t.addRow({std::to_string(p), std::to_string(set.maxLength()),
                  std::to_string((n + p - 1) / p),
                  std::to_string(cfgCycles)});
        if (p == 4)
            chosen = set;
    }
    t.print();

    // Encode a real program's bitstream on this fabric.
    auto features = compiler::HwFeatures::fromAdg(hw);
    const auto &w = workloads::workload("crs");
    auto placement = compiler::Placement::autoLayout(w.kernel, features);
    auto lowered = compiler::lowerKernel(w.kernel, placement, features,
                                         {}, 1);
    if (lowered.ok) {
        auto sched = mapper::scheduleProgram(lowered.version.program, hw,
                                             {.maxIters = 600, .seed = 3});
        if (sched.cost.legal()) {
            auto bs = hwgen::encodeConfig(hw, lowered.version.program,
                                          sched);
            std::printf("\nencoded '%s' configuration: %zu words, %lld "
                        "bits (with addressing)\n",
                        w.name.c_str(), bs.words.size(),
                        static_cast<long long>(bs.totalBits(hw)));
        }
    }

    // Structural Verilog with the 4-path scan chains.
    std::string verilog = hwgen::emitVerilog(hw, "dsagen_fabric", chosen);
    std::ofstream out(outPath);
    out << verilog;
    std::printf("\nwrote %zu bytes of structural Verilog to %s\n",
                verilog.size(), outPath.c_str());
    return 0;
}
