/**
 * @file
 * Sparse inner join (the paper's Fig. 8 example): a two-pointer merge
 * over sorted key/value tables, compiled with the stream-join
 * transformation onto SPU-style hardware (dynamic PEs with join
 * control), and contrasted with the serialized control-core fallback
 * the compiler emits for hardware without the feature (Softbrain).
 */

#include <cstdio>
#include <set>

#include "adg/prebuilt.h"
#include "base/table.h"
#include "compiler/compile.h"
#include "ir/interp.h"
#include "mapper/scheduler.h"
#include "sim/simulator.h"

using namespace dsa;

namespace {

/** Build the sparse inner-product kernel of Fig. 8(a). */
ir::KernelSource
joinKernel(int64_t n)
{
    using namespace ir;
    KernelSource k;
    k.name = "sparse_join";
    k.params["n"] = n;
    k.arrays = {
        {"ka", n, 8, false, false}, {"va", n, 8, true, false},
        {"kb", n, 8, false, false}, {"vb", n, 8, true, false},
        {"acc_out", 1, 8, true, false},
    };
    MergeLoopInfo m;
    m.keysA = "ka";
    m.keysB = "kb";
    m.lenA = param("n");
    m.lenB = param("n");
    m.ivA = 1;
    m.ivB = 2;
    k.body = {
        makeLet("acc", floatConst(0.0)),
        makeMergeLoop(m, {makeReduce("acc", OpCode::FAdd,
                                     binary(OpCode::FMul,
                                            load("va", iterVar(1)),
                                            load("vb", iterVar(2))))}),
        makeStore("acc_out", intConst(0), scalarRef("acc")),
    };
    return k;
}

} // namespace

int
main()
{
    constexpr int64_t n = 512;
    auto kernel = joinKernel(n);

    // Sorted keys with partial overlap.
    ir::ArrayStore inputs(kernel);
    Rng rng(2024);
    auto fill = [&](const char *keys, const char *vals) {
        std::set<int64_t> s;
        while (static_cast<int64_t>(s.size()) < n)
            s.insert(rng.uniformInt(0, n * 3));
        int64_t i = 0;
        for (int64_t key : s)
            inputs.data(keys)[i++] = static_cast<Value>(key);
        for (int64_t j = 0; j < n; ++j)
            inputs.data(vals)[j] = valueFromF64(rng.uniformReal(0.0, 1.0));
    };
    fill("ka", "va");
    fill("kb", "vb");

    ir::ArrayStore golden = inputs;
    ir::interpret(kernel, golden);
    double expect = valueAsF64(golden.data("acc_out")[0]);
    std::printf("sparse join, n=%lld per table, expected dot of matched "
                "values = %.6f\n\n",
                static_cast<long long>(n), expect);

    Table t({"hardware", "stream-join?", "cycles", "result", "ok"});
    struct Target
    {
        const char *name;
        adg::Adg hw;
    };
    for (Target target : {Target{"SPU (dynamic PEs)", adg::buildSpu(5, 5)},
                          Target{"Softbrain (static)",
                                 adg::buildSoftbrain()}}) {
        auto features = compiler::HwFeatures::fromAdg(target.hw);
        auto placement =
            compiler::Placement::autoLayout(kernel, features);
        auto lowered =
            compiler::lowerKernel(kernel, placement, features, {}, 1);
        if (!lowered.ok) {
            std::printf("%s: lowering failed: %s\n", target.name,
                        lowered.error.c_str());
            continue;
        }
        bool joined = !lowered.version.program.regions[0].serialized;
        auto sched = mapper::scheduleProgram(
            lowered.version.program, target.hw,
            {.maxIters = 600, .seed = 9});
        if (!sched.cost.legal()) {
            std::printf("%s: schedule illegal\n", target.name);
            continue;
        }
        auto img = sim::MemImage::build(kernel, inputs, placement);
        auto res =
            sim::simulate(lowered.version.program, sched, target.hw, img);
        if (!res.ok) {
            std::printf("%s: simulation failed: %s\n", target.name,
                        res.error.c_str());
            continue;
        }
        ir::ArrayStore out = inputs;
        img.extract(kernel, placement, out);
        double got = valueAsF64(out.data("acc_out")[0]);
        t.addRow({target.name, joined ? "yes" : "no (serialized)",
                  std::to_string(res.cycles), Table::fmt(got, 6),
                  std::abs(got - expect) < 1e-9 ? "yes" : "NO"});
    }
    t.print();
    std::printf("\nThe stream-join hardware consumes both key streams "
                "data-dependently on the fabric;\nwithout it the "
                "compiler falls back to a serialized control-core "
                "loop.\n");
    return 0;
}
