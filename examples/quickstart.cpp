/**
 * @file
 * Quickstart: the full DSAGEN flow on a vector dot product (the
 * paper's running example, Fig. 2).
 *
 *  1. Write a kernel in the loop-nest IR (the C-with-pragmas stand-in).
 *  2. Compile it modularly: several unroll-factor versions.
 *  3. Spatially schedule each version onto Softbrain's ADG.
 *  4. Estimate performance with the analytical model; pick the best.
 *  5. Simulate cycle-by-cycle and validate against the interpreter.
 */

#include <cstdio>

#include "adg/prebuilt.h"
#include "base/table.h"
#include "compiler/compile.h"
#include "ir/interp.h"
#include "mapper/scheduler.h"
#include "model/host_model.h"
#include "model/perf_model.h"
#include "sim/simulator.h"

using namespace dsa;

int
main()
{
    // ---- 1. The kernel: c[0] = sum_j a[j] * b[j], n = 256 -----------
    constexpr int64_t n = 256;
    ir::KernelSource k;
    k.name = "dotprod";
    k.params["n"] = n;
    k.arrays = {{"a", n, 8, true, false},
                {"b", n, 8, true, false},
                {"c", 1, 8, true, false}};
    {
        using namespace ir;
        auto body = makeReduce(
            "v", OpCode::FAdd,
            binary(OpCode::FMul, load("a", iterVar(0)),
                   load("b", iterVar(0))));
        k.body = {
            makeLet("v", floatConst(0.0)),
            makeLoop(0, param("n"), {body}, /*offload=*/true),
            makeStore("c", intConst(0), scalarRef("v")),
        };
    }

    // Input data + golden execution.
    ir::ArrayStore golden(k);
    for (int64_t i = 0; i < n; ++i) {
        golden.data("a")[i] = valueFromF64(0.25 * static_cast<double>(i));
        golden.data("b")[i] = valueFromF64(1.0 / (1.0 + i));
    }
    ir::ArrayStore init = golden;  // pre-run copy for the simulator
    ir::InterpStats hostStats = ir::interpret(k, golden);
    double expect = valueAsF64(golden.data("c")[0]);
    double hostCycles = model::estimateHostCycles(hostStats);

    // ---- 2..5. Compile / schedule / model / simulate ----------------
    adg::Adg hw = adg::buildSoftbrain();
    auto features = compiler::HwFeatures::fromAdg(hw);
    auto placement = compiler::Placement::autoLayout(k, features);
    auto versions = compiler::compile(k, placement, features);

    Table table({"version", "unroll", "legal", "est. cycles", "sim cycles",
                 "speedup vs host", "result ok"});
    for (const auto &ver : versions) {
        auto sched = mapper::scheduleProgram(ver.program, hw,
                                             {.maxIters = 150, .seed = 7});
        auto est = model::estimatePerformance(ver.program, sched, hw);
        std::string simCell = "-";
        std::string okCell = "-";
        std::string speedCell = "-";
        if (est.legal) {
            auto img = sim::MemImage::build(k, init, placement);
            auto res = sim::simulate(ver.program, sched, hw, img);
            if (res.ok) {
                ir::ArrayStore out = init;
                img.extract(k, placement, out);
                double got = valueAsF64(out.data("c")[0]);
                bool ok = std::abs(got - expect) <
                          1e-9 * std::max(1.0, std::abs(expect));
                simCell = std::to_string(res.cycles);
                okCell = ok ? "yes" : "NO";
                speedCell = Table::fmt(
                    hostCycles / static_cast<double>(res.cycles), 2);
            } else {
                simCell = "error: " + res.error;
            }
        }
        table.addRow({ver.program.name, std::to_string(ver.unrollFactor),
                      est.legal ? "yes" : "no",
                      est.legal ? Table::fmt(est.cycles, 0) : "-", simCell,
                      speedCell, okCell});
    }
    std::printf("dot product on Softbrain (n=%lld), expect c[0]=%.6f\n",
                static_cast<long long>(n), expect);
    table.print();
    return 0;
}
